//! `future-packet-buffers`: umbrella crate of the reproduction of
//! *"Design and Implementation of High-Performance Memory Systems for Future
//! Packet Buffers"* (García, Corbal, Cerdà, Valero — MICRO 2003).
//!
//! The workspace is organised as one crate per subsystem; this crate simply
//! re-exports them so that the examples and integration tests can use a single
//! dependency:
//!
//! * [`model`] — cells, queues, line rates, configurations.
//! * [`dram`] — banked DRAM simulator and the SDRAM baseline.
//! * [`cacti`] — the 0.13 µm SRAM/CAM area and access-time model.
//! * [`srambuf`] — functional shared-buffer organisations (CAM, linked list).
//! * [`mma`] — lookahead, occupancy counters, ECQF/MDQF, tail MMA, sizing.
//! * [`cfds`] — requests register, DRAM scheduler, latency register, renaming.
//! * [`buffers`] — the assembled `RadsBuffer`, `CfdsBuffer`, `DramOnlyBuffer`.
//! * [`fabric`] — the `N×N` VOQ switch composing per-port buffers with a
//!   crossbar arbiter and rate-limited egress ports.
//! * [`traffic`] — arrival and arbiter-request workload generators.
//! * [`sim`] — slot-level engine, scenarios, the declarative experiment layer
//!   (`sim::spec::ExperimentSpec` + `sim::lab::LabRunner`, the substrate of
//!   the `pktbuf-lab` CLI) and the technology evaluation.
//!
//! See `README.md` for a tour of the workspace, the design notes, and how to
//! run the tests, benches and experiment binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cacti_lite as cacti;
pub use cfds;
pub use dram_sim as dram;
pub use fabric;
pub use mma;
pub use pktbuf as buffers;
pub use pktbuf_model as model;
pub use sim;
pub use sram_buf as srambuf;
pub use traffic;

/// The paper's two evaluation design points, used throughout the examples and
/// the benchmark harness.
pub mod design_points {
    use pktbuf_model::{CfdsConfig, LineRate, RadsConfig};

    /// OC-768 RADS design point: 128 queues, granularity `B = 8`.
    pub fn oc768_rads() -> RadsConfig {
        RadsConfig::for_line_rate(LineRate::Oc768, 128)
    }

    /// OC-3072 RADS design point: 512 queues, granularity `B = 32`.
    pub fn oc3072_rads() -> RadsConfig {
        RadsConfig::for_line_rate(LineRate::Oc3072, 512)
    }

    /// OC-3072 CFDS design point: `Q = 512`, `b = 4`, `B = 32`, `M = 256`.
    pub fn oc3072_cfds() -> CfdsConfig {
        CfdsConfig::builder()
            .line_rate(LineRate::Oc3072)
            .num_queues(512)
            .granularity(4)
            .rads_granularity(32)
            .num_banks(256)
            .build()
            .expect("the paper's design point is valid")
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn design_points_match_the_paper() {
            assert_eq!(oc768_rads().granularity, 8);
            assert_eq!(oc3072_rads().granularity, 32);
            let cfds = oc3072_cfds();
            assert_eq!(cfds.banks_per_group(), 8);
            assert_eq!(cfds.num_groups(), 32);
        }
    }
}
