//! Smoke test: every buffer design builds at the paper's §7 evaluation design
//! points (`future_packet_buffers::design_points`), moves a few thousand cells
//! end to end, and the built-in delivery verification reports zero misses,
//! zero drops and zero order violations.

use future_packet_buffers::buffers::{CfdsBuffer, DramOnlyBuffer, PacketBuffer, RadsBuffer};
use future_packet_buffers::design_points;
use future_packet_buffers::model::LogicalQueueId;
use future_packet_buffers::traffic::{preload_cells, AdversarialRoundRobin, RequestGenerator};

/// Preloads `cells_per_queue` cells into every queue of `buf` via `preload`,
/// drains the buffer with the adversarial round-robin arbiter, and checks the
/// zero-miss / zero-drop / in-order guarantees.
fn drain_and_verify<B: PacketBuffer>(
    buf: &mut B,
    preload: impl Fn(&mut B, LogicalQueueId, Vec<future_packet_buffers::model::Cell>),
    cells_per_queue: u64,
) {
    let q = buf.num_queues();
    for (queue, cells) in preload_cells(q, cells_per_queue) {
        preload(buf, queue, cells);
    }
    let total = q as u64 * cells_per_queue;
    let mut requests = AdversarialRoundRobin::new(q);
    let horizon = total + buf.pipeline_delay_slots() as u64 + 1_024;
    for t in 0..horizon {
        let request = requests.next(t, &|queue: LogicalQueueId| buf.requestable_cells(queue));
        let out = buf.step(None, request);
        assert!(
            out.miss.is_none(),
            "{}: miss at slot {t}",
            buf.design_name()
        );
    }
    let stats = buf.stats();
    assert!(stats.is_loss_free(), "{}: {stats:?}", buf.design_name());
    assert_eq!(
        stats.grants,
        total,
        "{}: drained everything",
        buf.design_name()
    );
    assert_eq!(stats.misses, 0, "{}: zero misses", buf.design_name());
    assert_eq!(stats.drops, 0, "{}: zero drops", buf.design_name());
    assert_eq!(
        stats.order_violations,
        0,
        "{}: FIFO order",
        buf.design_name()
    );
}

#[test]
fn oc768_rads_design_point_delivers_in_order() {
    let cfg = design_points::oc768_rads();
    assert_eq!(cfg.num_queues, 128);
    assert_eq!(cfg.granularity, 8);
    let mut buf = RadsBuffer::new(cfg);
    drain_and_verify(&mut buf, |b, q, cells| b.preload_dram(q, cells), 16);
}

#[test]
fn oc3072_rads_design_point_delivers_in_order() {
    let cfg = design_points::oc3072_rads();
    assert_eq!(cfg.num_queues, 512);
    assert_eq!(cfg.granularity, 32);
    let mut buf = RadsBuffer::new(cfg);
    drain_and_verify(&mut buf, |b, q, cells| b.preload_dram(q, cells), 32);
}

#[test]
fn oc3072_cfds_design_point_delivers_in_order() {
    let cfg = design_points::oc3072_cfds();
    assert_eq!(cfg.num_queues, 512);
    assert_eq!(cfg.granularity, 4);
    assert_eq!(cfg.num_banks, 256);
    let mut buf = CfdsBuffer::new(cfg);
    drain_and_verify(&mut buf, |b, q, cells| b.preload_dram(q, cells), 32);
}

#[test]
fn oc768_dram_only_baseline_keeps_up_when_paced_to_its_worst_case() {
    // The DRAM-only baseline cannot take one request per slot (that is the
    // point of §1), but paced to one request per random access time it must
    // deliver every cell in order.
    let cfg = design_points::oc768_rads();
    let period = cfg.granularity as u64;
    let q = cfg.num_queues;
    let cells_per_queue = 16u64;
    let mut buf = DramOnlyBuffer::new(cfg);
    for (queue, cells) in preload_cells(q, cells_per_queue) {
        buf.preload(queue, cells);
    }
    let total = q as u64 * cells_per_queue;
    let mut issued = 0u64;
    let horizon = total * period + 4 * period;
    for t in 0..horizon {
        let request = if t % period == 0 && issued < total {
            let queue = LogicalQueueId::new((issued % q as u64) as u32);
            issued += 1;
            Some(queue)
        } else {
            None
        };
        let out = buf.step(None, request);
        assert!(out.miss.is_none(), "paced DRAM-only missed at slot {t}");
    }
    let stats = buf.stats();
    assert!(stats.is_loss_free(), "{stats:?}");
    assert_eq!(stats.grants, total);
    assert_eq!(stats.order_violations, 0);
}
