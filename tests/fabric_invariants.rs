//! Property-based and end-to-end invariants of the `fabric` VOQ switch
//! layer: cell conservation across the whole router, determinism, and the
//! zero-loss envelope.

use future_packet_buffers::sim::clos::{
    ClosScenario, DispatchChoice, ObsScenario, TransportMode, TransportScenario,
};
use future_packet_buffers::sim::fabric::{
    ArbiterChoice, FabricDesign, FabricScenario, FabricSpec, FabricWorkload,
};
use future_packet_buffers::sim::lab::LabRunner;
use future_packet_buffers::sim::scenario::DesignKind;
use future_packet_buffers::sim::{FaultEvent, FaultKind, FaultPlan, LinkBoundary, Sweep};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cell conservation holds for arbitrary fabric shapes: per flow
    /// `(i, j)`, departures never exceed arrivals; per ingress port, offered
    /// arrivals split exactly into departures, residents and tail drops; per
    /// egress port, transmissions equal the departures aimed at it; and the
    /// whole fabric balances arrivals = transmitted + resident + dropped.
    /// The same scenario re-run is bit-identical (simulation is a pure
    /// function of its parameters).
    #[test]
    fn fabric_conserves_cells_and_replays_deterministically(
        ports in 2usize..=6,
        design_index in 0usize..4,
        workload_index in 0usize..4,
        arbiter_index in 0usize..2,
        load_percent in 40u64..=80,
        egress_period in 1u64..=3,
        arrival_slots in 300u64..=900,
        seed in 0u64..10_000,
    ) {
        let design = FabricDesign::all()[design_index];
        let workload = FabricWorkload::all()[workload_index];
        let arbiter = ArbiterChoice::all()[arbiter_index];
        let scenario = FabricScenario {
            ports,
            design,
            workload,
            arbiter,
            load_percent,
            egress_period,
            arrival_slots,
            seed,
            granularity: 2,
            rads_granularity: 8,
            num_banks: 16,
            ..FabricScenario::small()
        };
        prop_assert!(scenario.validate().is_ok(), "{scenario:?}");
        let report = scenario.run();
        prop_assert!(report.conservation_holds(), "{scenario:?}: {report:?}");
        prop_assert_eq!(report.slots >= arrival_slots, true);
        prop_assert_eq!(report.arrivals_matrix.len(), ports * ports);
        // Inside the documented zero-loss envelope (worst-case designs,
        // full-rate egress, non-bursty admissible traffic) no cell may be
        // lost. Bursty at small port counts and the DRAM-only baseline are
        // outside it — conservation above still had to hold for them.
        let worst_case_design = design != FabricDesign::Fixed(DesignKind::DramOnly);
        if worst_case_design && workload != FabricWorkload::Bursty && egress_period == 1 {
            prop_assert!(report.zero_loss, "{scenario:?}: {report:?}");
        }
        // Determinism: the identical scenario replays bit-identically.
        let replay = scenario.run();
        prop_assert_eq!(&replay, &report);
    }

    /// Chaos invariant: a random fault plan over a random Clos shape never
    /// loses a cell silently. Either the run is zero-loss, or every missing
    /// cell appears in the fault ledger (refused at a dead ingress port or
    /// dropped on a full link under drop-on-full); stranded cells stay
    /// inside the degraded-mode conservation balance either way. The same
    /// seed replays bit-identically, including across worker counts.
    #[test]
    fn faulted_clos_ledgers_every_missing_cell_and_replays(
        radix in 2usize..=4,
        ingress in 2usize..=3,
        middle_raw in 1usize..=4,
        dispatch_index in 0usize..2,
        death_switch in 0usize..4,
        death_start in 100u64..=500,
        death_permanent in prop::bool::ANY,
        flap_boundary in prop::bool::ANY,
        flap_switch in 0usize..4,
        flap_output in 0usize..4,
        flap_start in 100u64..=600,
        flap_len in 50u64..=250,
        slow_port in 0usize..16,
        slow_factor in 2u64..=4,
        kill_ingress in prop::bool::ANY,
        kill_port in 0usize..16,
        drop_on_full in prop::bool::ANY,
        load_percent in 40u64..=85,
        arrival_slots in 400u64..=800,
        seed in 0u64..10_000,
    ) {
        let middle = middle_raw.min(radix);
        let ext = ingress * radix;
        let mut events = vec![
            if death_permanent {
                FaultEvent::permanent(
                    FaultKind::MiddleDeath { switch: death_switch % middle },
                    death_start,
                )
            } else {
                FaultEvent::windowed(
                    FaultKind::MiddleDeath { switch: death_switch % middle },
                    death_start,
                    300,
                )
            },
            FaultEvent::windowed(
                if flap_boundary {
                    FaultKind::LinkFlap {
                        boundary: LinkBoundary::IngressMiddle,
                        switch: flap_switch % ingress,
                        output: flap_output % middle,
                    }
                } else {
                    FaultKind::LinkFlap {
                        boundary: LinkBoundary::MiddleEgress,
                        switch: flap_switch % middle,
                        output: flap_output % ingress,
                    }
                },
                flap_start,
                flap_len,
            ),
            FaultEvent::windowed(
                FaultKind::EgressSlowdown { port: slow_port % ext, factor: slow_factor },
                150,
                400,
            ),
        ];
        if kill_ingress {
            events.push(FaultEvent::permanent(
                FaultKind::IngressPortDeath { port: kill_port % ext },
                death_start + 50,
            ));
        }
        if drop_on_full {
            events.push(FaultEvent::permanent(FaultKind::DropOnFull, 0));
        }
        let scenario = ClosScenario {
            radix,
            ingress_switches: ingress,
            middle_switches: middle,
            dispatch: DispatchChoice::all()[dispatch_index],
            load_percent,
            arrival_slots,
            seed,
            faults: FaultPlan::new(events),
            ..ClosScenario::small()
        };
        prop_assert!(scenario.validate().is_ok(), "{scenario:?}");
        let report = scenario.run();
        prop_assert!(report.conservation_holds(), "{scenario:?}: {report:?}");
        let ledger = report.faults.as_ref().expect("armed plans always report");
        // No silent loss: everything lost is refused or dropped in the
        // ledger, and a run with nothing ledgered lost nothing.
        prop_assert_eq!(
            report.lost_cells,
            ledger.refused_cells + ledger.dropped_cells,
            "{:?}", ledger
        );
        if !kill_ingress && !drop_on_full {
            prop_assert!(report.zero_loss, "{scenario:?}: {report:?}");
        }
        // Same-seed replay is bit-identical, whatever the worker count.
        prop_assert_eq!(&scenario.run(), &report);
        prop_assert_eq!(&scenario.run_with_workers(3), &report);
    }

    /// Chaos invariant for the closed loop: a random fault plan under the
    /// reliable transport never delivers a cell past dedup twice, always
    /// closes both the transport ledger (`injected = acked + in flight +
    /// queued retransmissions + abandoned`) and the fabric conservation
    /// balance, explains the fabric's deliveries as unique cells plus
    /// filtered duplicates, and replays bit-identically across worker
    /// counts. Permanent faults may abandon cells (the retry budget is
    /// small by design here) — abandonment must stay inside the ledger,
    /// never silent.
    #[test]
    fn faulted_closed_loop_delivers_exactly_once_and_replays(
        radix in 2usize..=4,
        ingress in 2usize..=3,
        middle_raw in 1usize..=4,
        incast in prop::bool::ANY,
        death_switch in 0usize..4,
        death_start in 100u64..=400,
        death_permanent in prop::bool::ANY,
        flap_boundary in prop::bool::ANY,
        flap_switch in 0usize..4,
        flap_output in 0usize..4,
        flap_start in 100u64..=500,
        flap_len in 50u64..=200,
        kill_ingress in prop::bool::ANY,
        kill_port in 0usize..16,
        rto_initial in 8u64..=32,
        arrival_slots in 400u64..=800,
        seed in 0u64..10_000,
    ) {
        let middle = middle_raw.min(radix);
        let ext = ingress * radix;
        let mut events = vec![
            if death_permanent {
                FaultEvent::permanent(
                    FaultKind::MiddleDeath { switch: death_switch % middle },
                    death_start,
                )
            } else {
                FaultEvent::windowed(
                    FaultKind::MiddleDeath { switch: death_switch % middle },
                    death_start,
                    250,
                )
            },
            FaultEvent::windowed(
                if flap_boundary {
                    FaultKind::LinkFlap {
                        boundary: LinkBoundary::IngressMiddle,
                        switch: flap_switch % ingress,
                        output: flap_output % middle,
                    }
                } else {
                    FaultKind::LinkFlap {
                        boundary: LinkBoundary::MiddleEgress,
                        switch: flap_switch % middle,
                        output: flap_output % ingress,
                    }
                },
                flap_start,
                flap_len,
            ),
        ];
        if kill_ingress {
            events.push(FaultEvent::permanent(
                FaultKind::IngressPortDeath { port: kill_port % ext },
                death_start,
            ));
        }
        let scenario = ClosScenario {
            radix,
            ingress_switches: ingress,
            middle_switches: middle,
            arrival_slots,
            seed,
            faults: FaultPlan::new(events),
            transport: Some(TransportScenario {
                mode: if incast { TransportMode::Incast } else { TransportMode::Sweep },
                incast_target: (seed % ext as u64) as u32,
                rto_initial,
                rto_cap: 256,
                max_retries: 8,
                ..TransportScenario::default()
            }),
            ..ClosScenario::small_transport()
        };
        prop_assert!(scenario.validate().is_ok(), "{scenario:?}");
        let report = scenario.run();
        let t = report.transport.as_ref().expect("transport runs always report");
        prop_assert_eq!(t.duplicate_deliveries, 0, "{:?}: {:?}", scenario, t);
        prop_assert!(report.transport_conservation_holds(), "{scenario:?}: {t:?}");
        prop_assert!(report.conservation_holds(), "{scenario:?}: {report:?}");
        // Every fabric delivery is accounted for: a first copy or a filtered
        // retransmission duplicate.
        prop_assert_eq!(
            report.delivered,
            t.delivered_unique + t.duplicates_filtered,
            "{:?}", t
        );
        // Only permanent faults may exhaust the retry budget.
        if !death_permanent && !kill_ingress {
            prop_assert_eq!(t.gave_up_cells, 0, "{:?}: {:?}", scenario, t);
        }
        // Same-seed replay is bit-identical, whatever the worker count.
        prop_assert_eq!(&scenario.run(), &report);
        prop_assert_eq!(&scenario.run_with_workers(3), &report);
    }

    /// Observability invariant over random Clos shapes: arming every probe —
    /// histograms, series, flight recorder — changes nothing about the run's
    /// results and stays worker-count-invariant (per-worker histogram
    /// partials merge to the single-worker report, the merged trace is
    /// identical), while an all-off obs layer leaves the whole report
    /// byte-identical to an unarmed run.
    #[test]
    fn armed_clos_probes_are_schedule_invariant_and_off_is_free(
        radix in 2usize..=4,
        ingress in 2usize..=3,
        middle_raw in 1usize..=4,
        dispatch_index in 0usize..2,
        load_percent in 40u64..=85,
        series_stride in 40u64..=200,
        arrival_slots in 400u64..=800,
        seed in 0u64..10_000,
    ) {
        let base = ClosScenario {
            radix,
            ingress_switches: ingress,
            middle_switches: middle_raw.min(radix),
            dispatch: DispatchChoice::all()[dispatch_index],
            load_percent,
            arrival_slots,
            seed,
            ..ClosScenario::small()
        };
        let baseline = base.run();
        // All probes off (explicitly or by absence) is byte-identical.
        let off = ClosScenario { obs: Some(ObsScenario::default()), ..base.clone() };
        prop_assert_eq!(&off.run(), &baseline);
        // Every probe armed: the traffic results are unchanged, the probes
        // report real measurements, and any schedule produces the same
        // report bit for bit.
        let armed = ClosScenario {
            obs: Some(ObsScenario {
                series_stride,
                series_capacity: 64,
                trace_capacity: 1 << 14,
                ..ObsScenario::standard()
            }),
            ..base
        };
        let report = armed.run_reference();
        // The probes only *add* sections (per-output percentiles, the obs
        // report); every traffic-level result is unchanged.
        prop_assert_eq!(report.delivered, baseline.delivered);
        prop_assert_eq!(report.arrivals, baseline.arrivals);
        prop_assert_eq!(report.lost_cells, baseline.lost_cells);
        prop_assert_eq!(report.reordered_cells, baseline.reordered_cells);
        prop_assert_eq!(report.credit_stall_slots, baseline.credit_stall_slots);
        prop_assert_eq!(report.slots, baseline.slots);
        prop_assert_eq!(report.mean_latency_slots, baseline.mean_latency_slots);
        prop_assert_eq!(report.max_latency_slots, baseline.max_latency_slots);
        prop_assert_eq!(&report.delivered_matrix, &baseline.delivered_matrix);
        let obs = report.obs.as_ref().expect("armed runs always report");
        let latency = obs.latency.as_ref().expect("latency probes were armed");
        prop_assert_eq!(latency.count, report.delivered);
        prop_assert!(latency.p50 <= latency.p95 && latency.p99 <= latency.max);
        for workers in [1usize, 2, 3] {
            prop_assert_eq!(&armed.run_with_workers(workers), &report);
        }
    }
}

/// The lab report over a fabric spec is identical whatever the worker count
/// (the satellite determinism requirement, pinned at the artifact level).
#[test]
fn fabric_lab_report_is_identical_across_thread_counts() {
    let spec = FabricSpec::builder()
        .name("root-determinism")
        .designs([FabricDesign::Fixed(DesignKind::Cfds), FabricDesign::Mixed])
        .workloads([FabricWorkload::Uniform, FabricWorkload::Incast])
        .arbiters(ArbiterChoice::all())
        .ports(Sweep::fixed(4))
        .load_percent(Sweep::fixed(70))
        .granularity(Sweep::fixed(2))
        .rads_granularity(Sweep::fixed(8))
        .num_banks(Sweep::fixed(16))
        .arrival_slots(500)
        .build()
        .unwrap();
    let single = LabRunner::new().with_threads(1).run_fabric(&spec).unwrap();
    let multi = LabRunner::new().with_threads(3).run_fabric(&spec).unwrap();
    assert_eq!(single, multi);
    assert_eq!(single.to_json(), multi.to_json());
    assert_eq!(single.to_csv(), multi.to_csv());
    assert_eq!(single.runs.len(), 8);
    assert!(single.aggregate.all_zero_loss, "{:?}", single.aggregate);
}

/// The acceptance scenario at test scale: a 16×16 per-port-CFDS fabric under
/// incast and admissible uniform load delivers every cell and keeps the
/// crossbar ≥ 90% utilised on the uniform run.
#[test]
fn sixteen_port_cfds_fabric_meets_the_acceptance_gates() {
    let base = FabricScenario {
        ports: 16,
        design: FabricDesign::Fixed(DesignKind::Cfds),
        granularity: 4,
        rads_granularity: 16,
        num_banks: 64,
        load_percent: 95,
        arrival_slots: 6_000,
        ..FabricScenario::small()
    };
    // Incast at two loads: near-saturation (95%, where the admissible
    // fraction clamps to the uniform share) and 30%, where the target output
    // absorbs ~3.2× its uniform share — genuine many-to-one convergence
    // with the target still at 95% of its line rate.
    for load_percent in [95u64, 30] {
        let incast = FabricScenario {
            workload: FabricWorkload::Incast,
            load_percent,
            ..base
        }
        .run();
        assert!(incast.zero_loss, "load {load_percent}: {incast:?}");
        assert!(incast.conservation_holds());
        if load_percent == 30 {
            // The convergence must be visible in the traffic matrix: output
            // 0 receives several times the per-output mean.
            let to_target: u64 = (0..16).map(|i| incast.arrivals_matrix[i * 16]).sum();
            let mean_per_output = incast.arrivals as f64 / 16.0;
            assert!(
                to_target as f64 > 2.0 * mean_per_output,
                "incast matrix must converge on the target: {to_target} vs mean {mean_per_output}"
            );
        }
    }
    let uniform = FabricScenario {
        workload: FabricWorkload::Uniform,
        ..base
    }
    .run();
    assert!(uniform.zero_loss, "{uniform:?}");
    assert!(
        uniform.crossbar_utilization >= 0.90,
        "utilisation {}",
        uniform.crossbar_utilization
    );
}
