//! Integration tests: the worst-case guarantees the paper claims (zero miss,
//! zero drop, FIFO order, zero bank conflicts, bounded reordering state) hold
//! end to end, across designs and workloads.

use future_packet_buffers::buffers::{CfdsBuffer, PacketBuffer, RadsBuffer};
use future_packet_buffers::model::{CfdsConfig, LineRate, LogicalQueueId, RadsConfig};
use future_packet_buffers::sim::scenario::{
    grants_per_queue, run_design_comparison, DesignKind, Scenario, Workload,
};
use future_packet_buffers::traffic::{preload_cells, AdversarialRoundRobin, RequestGenerator};

fn cfds_cfg(q: usize, b: usize, big_b: usize, m: usize) -> CfdsConfig {
    CfdsConfig::builder()
        .line_rate(LineRate::Oc3072)
        .num_queues(q)
        .granularity(b)
        .rads_granularity(big_b)
        .num_banks(m)
        .build()
        .unwrap()
}

#[test]
fn every_workload_is_loss_free_on_rads_and_cfds() {
    for design in [DesignKind::Rads, DesignKind::Cfds] {
        for workload in Workload::all() {
            let scenario = Scenario {
                design,
                workload,
                num_queues: 16,
                granularity: 2,
                rads_granularity: 8,
                num_banks: 32,
                preload_cells_per_queue: 0,
                arrival_slots: 8_000,
                seed: 23,
                ..Scenario::small_cfds()
            };
            let report = scenario.run();
            assert!(
                report.stats.is_loss_free(),
                "{design:?}/{workload:?}: {:?}",
                report.stats
            );
            assert!(
                report.stats.grants > 1_000,
                "{design:?}/{workload:?} made progress"
            );
        }
    }
}

#[test]
fn designs_deliver_identical_per_queue_grant_counts() {
    let base = Scenario {
        design: DesignKind::Cfds,
        workload: Workload::AdversarialRoundRobin,
        num_queues: 16,
        granularity: 2,
        rads_granularity: 8,
        num_banks: 32,
        preload_cells_per_queue: 48,
        arrival_slots: 0,
        seed: 5,
        ..Scenario::small_cfds()
    };
    let reports = run_design_comparison(&base);
    let rads = grants_per_queue(&reports[1], base.num_queues);
    let cfds = grants_per_queue(&reports[2], base.num_queues);
    assert_eq!(rads, cfds);
    assert!(rads.iter().all(|&c| c == 48));
    assert!(reports[1].stats.is_loss_free());
    assert!(reports[2].stats.is_loss_free());
    // The DRAM-only baseline cannot sustain back-to-back requests.
    assert!(reports[0].stats.misses > 0);
}

#[test]
fn cfds_peak_rr_and_delay_respect_the_analytical_bounds() {
    // Several (b, B, M, Q) combinations; the empirical maxima from the
    // adversarial drain must stay within equations (1)–(3).
    for (q, b, big_b, m) in [
        (8, 2, 8, 16),
        (16, 4, 16, 64),
        (32, 2, 16, 64),
        (24, 4, 8, 32),
    ] {
        let cfg = cfds_cfg(q, b, big_b, m);
        let mut buf = CfdsBuffer::new(cfg);
        for (queue, cells) in preload_cells(q, 64) {
            buf.preload_dram(queue, cells);
        }
        let mut requests = AdversarialRoundRobin::new(q);
        let total = q as u64 * 64;
        for t in 0..(total + buf.pipeline_delay_slots() as u64 + 512) {
            let request = requests.next(t, &|qq: LogicalQueueId| buf.requestable_cells(qq));
            let out = buf.step(None, request);
            assert!(out.miss.is_none(), "miss (Q={q}, b={b}, B={big_b}, M={m})");
        }
        assert!(buf.stats().is_loss_free());
        assert_eq!(buf.stats().grants, total);
        assert!(
            buf.peak_rr_occupancy() <= buf.analytical_rr_size().max(2),
            "RR peak {} > bound {} (Q={q}, b={b})",
            buf.peak_rr_occupancy(),
            buf.analytical_rr_size()
        );
        assert!(
            (buf.stats().peak_head_sram_cells as usize) <= buf.analytical_head_sram() + b,
            "head SRAM peak {} > bound {} (Q={q}, b={b})",
            buf.stats().peak_head_sram_cells,
            buf.analytical_head_sram()
        );
    }
}

#[test]
fn rads_peak_head_sram_respects_the_ecqf_bound() {
    for (q, big_b) in [(8usize, 4usize), (16, 8), (32, 4)] {
        let cfg = RadsConfig {
            line_rate: LineRate::Oc3072,
            num_queues: q,
            granularity: big_b,
            lookahead: None,
            dram: Default::default(),
        };
        let mut buf = RadsBuffer::new(cfg);
        for (queue, cells) in preload_cells(q, 64) {
            buf.preload_dram(queue, cells);
        }
        let mut requests = AdversarialRoundRobin::new(q);
        let total = q as u64 * 64;
        for t in 0..(total + buf.pipeline_delay_slots() as u64 + 64) {
            let request = requests.next(t, &|qq: LogicalQueueId| buf.requestable_cells(qq));
            assert!(buf.step(None, request).miss.is_none());
        }
        assert!(buf.stats().is_loss_free());
        assert!(
            buf.peak_head_sram() <= buf.analytical_head_sram() + big_b,
            "peak {} vs analytical {} (Q={q}, B={big_b})",
            buf.peak_head_sram(),
            buf.analytical_head_sram()
        );
    }
}

#[test]
fn cfds_handles_interleaved_arrivals_and_requests_for_long_runs() {
    let cfg = cfds_cfg(12, 2, 8, 24);
    let mut buf = CfdsBuffer::new(cfg);
    let mut seqs = [0u64; 12];
    let mut requests = AdversarialRoundRobin::new(12);
    // 30k slots of full-load arrivals round-robin over the queues, requests as
    // aggressive as the availability rule allows.
    for t in 0..30_000u64 {
        let qi = (t % 12) as usize;
        let cell =
            future_packet_buffers::model::Cell::new(LogicalQueueId::new(qi as u32), seqs[qi], t);
        seqs[qi] += 1;
        let request = requests.next(t, &|qq: LogicalQueueId| buf.requestable_cells(qq));
        let out = buf.step(Some(cell), request);
        assert!(out.miss.is_none(), "miss at slot {t}");
        assert!(out.dropped_arrival.is_none(), "drop at slot {t}");
    }
    assert!(buf.stats().is_loss_free());
    assert!(buf.stats().grants > 20_000);
    assert_eq!(buf.stats().bank_conflicts, 0);
}
