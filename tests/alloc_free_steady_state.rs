//! Pins the tentpole claim of the hot-path rework: once warmed up, the slot
//! loop of every buffer design performs **zero heap allocations** — all
//! steady-state state lives in preallocated, index-addressed structures
//! (`pktbuf::hotpath`, the ring-based DRAM store and head SRAM, the pooled
//! block buffers).
//!
//! A counting global allocator wraps the system allocator; each design is
//! driven through a warm-up phase (rings grow to their high-water marks, the
//! block pool fills, the pending tables widen) and then through a measured
//! phase during which the allocation counter must not move. The workload
//! mixes live arrivals with a round-robin drain so every subsystem — tail
//! arena, writeback, DRAM scheduler, head SRAM, grants — stays active while
//! counting.

use pktbuf::{CfdsBuffer, DramOnlyBuffer, PacketBuffer, RadsBuffer};
use pktbuf_model::{Cell, CfdsConfig, DramTiming, LineRate, LogicalQueueId, RadsConfig};
use sim::SimulationEngine;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use traffic::{AdversarialRoundRobin, RoundRobinArrivals};

/// Counts every allocation and reallocation passed to the system allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`, only adding a relaxed counter
// increment; the layout contracts are forwarded unchanged.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

const WARMUP_SLOTS: u64 = 60_000;
const MEASURED_SLOTS: u64 = 20_000;

/// Drives `buffer` with a deterministic 50%-load arrival stream and a
/// round-robin request stream (the paper's adversarial pattern), without any
/// allocating generator machinery of its own.
fn drive(
    buffer: &mut dyn PacketBuffer,
    slots: u64,
    arrival_period: u64,
    seqs: &mut [u64],
    next_req: &mut u32,
) {
    let q = buffer.num_queues() as u64;
    let start = buffer.current_slot();
    for t in start..start + slots {
        let arrival = if t % arrival_period == 0 {
            let qi = ((t / arrival_period) % q) as usize;
            let cell = Cell::new(LogicalQueueId::new(qi as u32), seqs[qi], t);
            seqs[qi] += 1;
            Some(cell)
        } else {
            None
        };
        let mut request = None;
        for i in 0..q as u32 {
            let candidate = LogicalQueueId::new((*next_req + i) % q as u32);
            if buffer.requestable_cells(candidate) > 0 {
                *next_req = (candidate.index() + 1) % q as u32;
                request = Some(candidate);
                break;
            }
        }
        buffer.step(arrival, request);
    }
}

fn assert_steady_state_alloc_free(
    buffer: &mut dyn PacketBuffer,
    design: &str,
    arrival_period: u64,
    expect_no_misses: bool,
) {
    let mut seqs = vec![0u64; buffer.num_queues()];
    let mut next_req = 0u32;
    drive(
        buffer,
        WARMUP_SLOTS,
        arrival_period,
        &mut seqs,
        &mut next_req,
    );

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    drive(
        buffer,
        MEASURED_SLOTS,
        arrival_period,
        &mut seqs,
        &mut next_req,
    );
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "{design}: steady-state slot loop allocated {} times over {MEASURED_SLOTS} slots",
        after - before
    );
    // The loop did real work while being counted.
    assert!(buffer.stats().grants > 0, "{design}: no grants during test");
    if expect_no_misses {
        assert_eq!(buffer.stats().misses, 0, "{design}: unexpected misses");
    }
}

/// One test function (not three): integration tests run in threads, and a
/// second concurrently-running test would pollute the global counter.
#[test]
fn steady_state_slot_loop_is_allocation_free() {
    let rads_cfg = RadsConfig {
        line_rate: LineRate::Oc3072,
        num_queues: 16,
        granularity: 8,
        lookahead: None,
        dram: DramTiming::paper_design_point(),
    };
    let mut rads = RadsBuffer::new(rads_cfg);
    assert_steady_state_alloc_free(&mut rads, "RADS", 2, true);

    let cfds_cfg = CfdsConfig::builder()
        .line_rate(LineRate::Oc3072)
        .num_queues(16)
        .granularity(2)
        .rads_granularity(8)
        .num_banks(16)
        .build()
        .unwrap();
    let mut cfds = CfdsBuffer::new(cfds_cfg);
    assert_steady_state_alloc_free(&mut cfds, "CFDS", 2, true);

    // The DRAM-only write port absorbs one cell per random access time (B
    // slots); a faster arrival stream would grow its write backlog without
    // bound (that is the design's documented failure mode, not an allocation
    // bug), so pace arrivals below 1/B and tolerate its read-port misses.
    let mut dram_only = DramOnlyBuffer::new(rads_cfg);
    assert_steady_state_alloc_free(&mut dram_only, "DRAM-only", 10, false);

    // And the whole *engine* path on a warm buffer: chunked arrival
    // generation, fused slot batches, the drain with its idle fast-forward,
    // and — the point of the interned workload labels — the construction of
    // the `SimulationReport` itself. The first run is the warm-up (rings and
    // pools grow to their high-water marks); the second, identical run must
    // not allocate at all.
    let q = 16usize;
    let warmup_slots = 60_000u64; // multiple of q: seq offsets line up below
    let mut rads = RadsBuffer::new(rads_cfg);
    {
        let mut arrivals = RoundRobinArrivals::new(q);
        let mut requests = AdversarialRoundRobin::new(q);
        let warm = SimulationEngine::new_mono(&mut rads).run_chunked(
            &mut arrivals,
            &mut requests,
            warmup_slots,
        );
        assert!(warm.stats.grants > 0);
    }
    let mut arrivals = RoundRobinArrivals::new(q).with_seq_offset(warmup_slots / q as u64);
    let mut requests = AdversarialRoundRobin::new(q);
    let engine = SimulationEngine::new_mono(&mut rads);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let report = engine.run_chunked(&mut arrivals, &mut requests, MEASURED_SLOTS);
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(
        after - before,
        0,
        "engine run incl. report construction allocated {} times over {MEASURED_SLOTS} slots",
        after - before
    );
    assert!(report.stats.grants > 0, "engine run did no work");
    // The label came out of the static intern table, not a fresh `String`.
    assert_eq!(report.workload, "round-robin+adversarial-round-robin");
    assert_eq!(report.design, "RADS");
    assert!(report.grant_log.is_none());
}
