//! Property-based tests (proptest) on the core data structures and the
//! end-to-end FIFO/zero-miss invariants.

use future_packet_buffers::buffers::{CfdsBuffer, DramOnlyBuffer, PacketBuffer, RadsBuffer};
use future_packet_buffers::cfds::{DramSchedulerSubsystem, DsaPolicy, RenamingTable};
use future_packet_buffers::dram::{AddressMapper, GroupId, InterleavingConfig};
use future_packet_buffers::model::{
    Cell, CfdsConfig, DramTiming, LineRate, LogicalQueueId, PhysicalQueueId, RadsConfig,
};
use future_packet_buffers::srambuf::{GlobalCamBuffer, SharedBuffer, UnifiedLinkedListBuffer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The block-cyclic mapping sends distinct (queue, ordinal) pairs of the
    /// same group window to distinct banks, and never crosses group borders.
    #[test]
    fn address_mapping_is_group_local_and_window_injective(
        banks_per_group in 1usize..=16,
        groups in 1usize..=16,
        queue in 0u32..1024,
        ordinal in 0u64..10_000,
    ) {
        let num_banks = banks_per_group * groups;
        let cfg = InterleavingConfig::new(num_banks, banks_per_group, 1024).unwrap();
        let mapper = AddressMapper::new(cfg);
        let q = PhysicalQueueId::new(queue);
        let bank = mapper.bank_for(q, ordinal);
        prop_assert!(bank.index() < num_banks);
        prop_assert_eq!(mapper.group_of_bank(bank), mapper.group_of_queue(q));
        // Within a window of banks_per_group consecutive ordinals, banks are
        // pairwise distinct.
        let window: Vec<_> = (ordinal..ordinal + banks_per_group as u64)
            .map(|o| mapper.bank_for(q, o))
            .collect();
        for i in 0..window.len() {
            for j in 0..i {
                prop_assert_ne!(window[i], window[j]);
            }
        }
    }

    /// Both shared-buffer organisations restore FIFO order for any order of
    /// block arrival that respects the per-lane (per-bank) ordering.
    #[test]
    fn shared_buffers_restore_fifo_under_block_permutations(
        lanes in 1usize..=8,
        blocks in 1usize..=16,
        cells_per_block in 1usize..=4,
        seed in 0u64..u64::MAX,
    ) {
        let queue = LogicalQueueId::new(0);
        let total = blocks * cells_per_block;
        // Build a permutation of block indices that keeps same-lane blocks in
        // order (as the banked DRAM guarantees): shuffle, then stable-sort
        // each lane's occurrences back into order.
        let mut order: Vec<usize> = (0..blocks).collect();
        let mut state = seed.max(1);
        for i in (1..blocks).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            order.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let mut per_lane: Vec<Vec<usize>> = vec![Vec::new(); lanes];
        for b in &order {
            per_lane[b % lanes].push(*b);
        }
        for lane in &mut per_lane {
            lane.sort_unstable();
        }
        // Re-emit in the shuffled arrival order but reading each lane's blocks
        // in ascending order.
        let mut lane_cursor = vec![0usize; lanes];
        let arrival: Vec<usize> = order
            .iter()
            .map(|b| {
                let lane = b % lanes;
                let v = per_lane[lane][lane_cursor[lane]];
                lane_cursor[lane] += 1;
                v
            })
            .collect();

        let mut cam = GlobalCamBuffer::with_block_size(1, total + 8, cells_per_block);
        let mut lll = UnifiedLinkedListBuffer::with_lanes(1, total + 8, lanes, cells_per_block);
        for b in &arrival {
            let cells: Vec<Cell> = (0..cells_per_block)
                .map(|i| Cell::new(queue, (b * cells_per_block + i) as u64, 0))
                .collect();
            cam.insert_block(queue, *b as u64, cells.clone()).unwrap();
            lll.insert_block(queue, *b as u64, cells).unwrap();
        }
        for expected in 0..total as u64 {
            prop_assert_eq!(cam.pop_front(queue).unwrap().seq(), expected);
            prop_assert_eq!(lll.pop_front(queue).unwrap().seq(), expected);
        }
        prop_assert!(cam.pop_front(queue).is_none());
        prop_assert!(lll.pop_front(queue).is_none());
    }

    /// The DSS never issues a request to a bank that is still within the lock
    /// window of a previous issue, for any submission pattern.
    #[test]
    fn dss_never_issues_to_a_locked_bank(
        submissions in proptest::collection::vec((0u32..32, prop::bool::ANY), 1..200),
    ) {
        let mapper = AddressMapper::new(InterleavingConfig::new(32, 4, 32).unwrap());
        let mut dss = DramSchedulerSubsystem::new(mapper, 4, DsaPolicy::OldestFirst);
        let mut recent: Vec<(u64, dram_sim::BankId)> = Vec::new();
        let mut t = 0u64;
        let lock_window = 4u64; // issue opportunities a bank stays busy
        let mut pending = submissions.len();
        let mut iter = submissions.into_iter();
        while pending > 0 {
            if let Some((q, is_read)) = iter.next() {
                let queue = PhysicalQueueId::new(q);
                if is_read {
                    dss.submit_read(queue, t);
                } else {
                    dss.submit_write(queue, t);
                }
            }
            if let Some(issued) = dss.issue(t) {
                pending -= 1;
                for (when, bank) in &recent {
                    if t - when < lock_window * 4 {
                        prop_assert_ne!(*bank, issued.bank, "bank re-issued while busy");
                    }
                }
                recent.push((t, issued.bank));
            }
            t += 4;
            if t > 100_000 { break; }
        }
    }

    /// Renaming conserves blocks: everything written is read back exactly
    /// once, in FIFO order across the chained physical queues.
    #[test]
    fn renaming_conserves_blocks(
        writes in 1u64..200,
        num_groups in 1usize..=8,
        oversub in 1usize..=4,
    ) {
        let num_physical = 4 * oversub * num_groups;
        let mut table = RenamingTable::new(4, num_physical, num_groups);
        let preferred: Vec<GroupId> = (0..num_groups as u32).map(GroupId::new).collect();
        let q = LogicalQueueId::new(1);
        for _ in 0..writes {
            table.physical_for_write(q, |_| true, &preferred).unwrap();
            table.note_block_written(q);
        }
        prop_assert_eq!(table.blocks_in_dram(q), writes);
        let mut reads = 0u64;
        while table.physical_for_read(q).is_some() {
            table.note_block_read(q);
            reads += 1;
            prop_assert!(reads <= writes);
        }
        prop_assert_eq!(reads, writes);
        prop_assert_eq!(table.blocks_in_dram(q), 0);
    }
}

/// Drives `buffer` for `slots` slots with a deterministic workload derived
/// from `state`: a paced arrival stream and an admissible round-robin
/// request stream. Returns the sequence of granted `(queue, seq)` pairs so
/// two replicas can be compared grant by grant.
fn drive_deterministic(
    buffer: &mut dyn PacketBuffer,
    slots: u64,
    arrival_period: u64,
    seqs: &mut [u64],
    next_req: &mut u32,
) -> Vec<(u32, u64)> {
    let q = buffer.num_queues() as u64;
    let start = buffer.current_slot();
    let mut grants = Vec::new();
    for t in start..start + slots {
        let arrival = if t % arrival_period == 0 {
            let qi = ((t / arrival_period) % q) as usize;
            let cell = Cell::new(LogicalQueueId::new(qi as u32), seqs[qi], t);
            seqs[qi] += 1;
            Some(cell)
        } else {
            None
        };
        let mut request = None;
        for i in 0..q as u32 {
            let candidate = LogicalQueueId::new((*next_req + i) % q as u32);
            if buffer.requestable_cells(candidate) > 0 {
                *next_req = (candidate.index() + 1) % q as u32;
                request = Some(candidate);
                break;
            }
        }
        let out = buffer.step(arrival, request);
        if let Some(cell) = out.granted {
            grants.push((cell.queue().index(), cell.seq()));
        }
    }
    grants
}

/// `advance_idle(n)` must be exactly equivalent to `n` empty `step` calls
/// from an *arbitrary mid-run state* — both immediately (slot/stats) and for
/// all future behaviour (a continued identical workload produces identical
/// grants, stats and per-queue requestability). One replica fast-forwards,
/// the other steps; any state divergence the fast-forward smuggled in would
/// surface in the postfix.
fn check_advance_idle_equivalence<B: PacketBuffer>(
    mut fast: B,
    mut stepped: B,
    prefix: u64,
    idle: u64,
    postfix: u64,
) {
    let q = fast.num_queues();
    let (mut seqs_a, mut seqs_b) = (vec![0u64; q], vec![0u64; q]);
    let (mut req_a, mut req_b) = (0u32, 0u32);
    let ga = drive_deterministic(&mut fast, prefix, 2, &mut seqs_a, &mut req_a);
    let gb = drive_deterministic(&mut stepped, prefix, 2, &mut seqs_b, &mut req_b);
    assert_eq!(ga, gb, "replicas diverged during the prefix");

    fast.advance_idle(idle);
    for _ in 0..idle {
        stepped.step(None, None);
    }
    assert_eq!(fast.current_slot(), stepped.current_slot());
    assert_eq!(fast.stats(), stepped.stats(), "stats diverged after idle");
    for qi in 0..q as u32 {
        let queue = LogicalQueueId::new(qi);
        assert_eq!(
            fast.requestable_cells(queue),
            stepped.requestable_cells(queue)
        );
    }

    let ga = drive_deterministic(&mut fast, postfix, 2, &mut seqs_a, &mut req_a);
    let gb = drive_deterministic(&mut stepped, postfix, 2, &mut seqs_b, &mut req_b);
    assert_eq!(ga, gb, "grants diverged after advance_idle");
    assert_eq!(fast.stats(), stepped.stats(), "stats diverged in postfix");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `advance_idle(n)` ≡ `n` empty steps for arbitrary mid-run states of
    /// all three designs (both the arithmetic fast-forward in quiescent
    /// states and the step-replay fallback in busy ones are exercised: short
    /// prefixes leave pipelines busy, long idles reach quiescence mid-way).
    #[test]
    fn advance_idle_equals_n_empty_steps(
        prefix in 0u64..2_000,
        idle in 0u64..3_000,
        postfix in 1u64..1_200,
    ) {
        let rads_cfg = RadsConfig {
            line_rate: LineRate::Oc3072,
            num_queues: 8,
            granularity: 4,
            lookahead: None,
            dram: DramTiming::paper_design_point(),
        };
        check_advance_idle_equivalence(
            RadsBuffer::new(rads_cfg),
            RadsBuffer::new(rads_cfg),
            prefix,
            idle,
            postfix,
        );
        check_advance_idle_equivalence(
            DramOnlyBuffer::new(rads_cfg),
            DramOnlyBuffer::new(rads_cfg),
            prefix,
            idle,
            postfix,
        );
        let cfds_cfg = CfdsConfig::builder()
            .line_rate(LineRate::Oc3072)
            .num_queues(8)
            .granularity(2)
            .rads_granularity(8)
            .num_banks(16)
            .build()
            .unwrap();
        check_advance_idle_equivalence(
            CfdsBuffer::new(cfds_cfg),
            CfdsBuffer::new(cfds_cfg),
            prefix,
            idle,
            postfix,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end: for arbitrary admissible request interleavings over a
    /// preloaded CFDS buffer, no request ever misses and cells emerge in FIFO
    /// order (the buffer's internal verifier checks order).
    #[test]
    fn cfds_never_misses_for_arbitrary_admissible_request_patterns(
        pattern in proptest::collection::vec(0u32..8, 256..512),
        b in prop::sample::select(vec![1usize, 2, 4]),
    ) {
        let cfg = CfdsConfig::builder()
            .line_rate(LineRate::Oc3072)
            .num_queues(8)
            .granularity(b)
            .rads_granularity(8)
            .num_banks(16)
            .build()
            .unwrap();
        let mut buf = CfdsBuffer::new(cfg);
        for q in 0..8u32 {
            let queue = LogicalQueueId::new(q);
            let cells: Vec<Cell> = (0..64).map(|s| Cell::new(queue, s, 0)).collect();
            buf.preload_dram(queue, cells);
        }
        let mut cursor = 0usize;
        let horizon = pattern.len() as u64 + buf.pipeline_delay_slots() as u64 + 1_024;
        for _t in 0..horizon {
            let mut request = None;
            if cursor < pattern.len() {
                let q = LogicalQueueId::new(pattern[cursor]);
                if buf.requestable_cells(q) > 0 {
                    request = Some(q);
                    cursor += 1;
                } else {
                    // Skip requests for drained queues; they are inadmissible.
                    cursor += 1;
                }
            }
            let out = buf.step(None, request);
            prop_assert!(out.miss.is_none());
        }
        prop_assert!(buf.stats().is_loss_free());
        prop_assert_eq!(buf.stats().order_violations, 0);
    }
}
