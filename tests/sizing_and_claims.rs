//! Integration tests for the dimensioning formulas and the headline claims of
//! the evaluation sections (§7, §8, §10).

use future_packet_buffers::cacti::ProcessNode;
use future_packet_buffers::cfds::sizing as cfds_sizing;
use future_packet_buffers::design_points;
use future_packet_buffers::mma::sizing as rads_sizing;
use future_packet_buffers::model::{CfdsConfig, LineRate};
use future_packet_buffers::sim::techeval;

#[test]
fn section_7_2_sram_size_quotes() {
    // OC-3072: 1.0 MB at the maximum lookahead, several MB at short lookahead.
    let max_l = rads_sizing::min_lookahead(512, 32);
    let at_max = techeval::rads_head_sram_bytes(512, 32, max_l) as f64 / 1e6;
    assert!((0.9..1.2).contains(&at_max), "{at_max} MB");
    let at_short = techeval::rads_head_sram_bytes(512, 32, 512) as f64 / 1e6;
    assert!(at_short > 3.0, "{at_short} MB");
    // OC-768: ~60 kB at the maximum lookahead, a few hundred kB at short.
    let at_max_768 = techeval::rads_head_sram_bytes(128, 8, rads_sizing::min_lookahead(128, 8));
    assert!((50_000..70_000).contains(&at_max_768));
}

#[test]
fn table2_rr_sizes_match_the_paper_for_the_main_design_points() {
    let rr = |b: usize| {
        let cfg = CfdsConfig::builder()
            .num_queues(512)
            .granularity(b)
            .rads_granularity(32)
            .num_banks(256)
            .build()
            .unwrap();
        cfds_sizing::rr_size(&cfg)
    };
    assert_eq!(rr(8), 64);
    assert_eq!(rr(4), 256);
    assert_eq!(rr(2), 1024);
    assert_eq!(rr(1), 4096);
}

#[test]
fn headline_claim_cfds_meets_oc3072_where_rads_cannot() {
    let node = ProcessNode::node_130nm();
    let rads = techeval::rads_point(
        LineRate::Oc3072,
        512,
        32,
        rads_sizing::min_lookahead(512, 32),
        &node,
    );
    let cfds_cfg = design_points::oc3072_cfds();
    let cfds = techeval::cfds_point(&cfds_cfg, cfds_cfg.min_lookahead(), &node);
    // §10: the constraint is fulfilled by CFDS with ~10 µs of delay, while
    // RADS cannot reach 3.2 ns even with > 50 µs of delay.
    assert!(cfds.meets(LineRate::Oc3072));
    assert!(!rads.meets(LineRate::Oc3072));
    assert!(cfds.delay_seconds < 2.0e-5);
    assert!(rads.delay_seconds > 4.0e-5);
    // SRAM an order of magnitude smaller (cells), area several times smaller.
    assert!(rads.head_sram_cells as f64 / cfds.head_sram_cells as f64 > 4.0);
    assert!(rads.total_area_cm2() / cfds.total_area_cm2() > 2.0);
}

#[test]
fn figure_11_shape_cfds_supports_several_times_more_queues() {
    let node = ProcessNode::node_130nm();
    let rads_max = techeval::max_queues_meeting_target(LineRate::Oc3072, 32, 32, 256, &node);
    let best_cfds = [8usize, 4, 2]
        .iter()
        .map(|b| techeval::max_queues_meeting_target(LineRate::Oc3072, *b, 32, 256, &node))
        .max()
        .unwrap();
    assert!(best_cfds >= 3 * rads_max.max(1));
    assert!(best_cfds >= 512);
}

#[test]
fn figure_10_shape_optimum_granularity_is_interior() {
    // Sweeping b at the minimum-SRAM point, the best access time is achieved
    // at an intermediate granularity, not at either extreme (§8.3).
    let node = ProcessNode::node_130nm();
    let access = |b: usize| {
        let cfg = CfdsConfig::builder()
            .num_queues(512)
            .granularity(b)
            .rads_granularity(32)
            .num_banks(256)
            .build()
            .unwrap();
        techeval::cfds_point(&cfg, cfg.min_lookahead(), &node).best_access_time_ns()
    };
    let coarse = access(16);
    let mid = access(4);
    let fine = access(1);
    assert!(mid < coarse, "mid {mid} vs coarse {coarse}");
    assert!(mid < fine, "mid {mid} vs fine {fine}");
}

#[test]
fn dram_only_baseline_motivation_numbers() {
    use future_packet_buffers::dram::{MultiChipConfig, SdramChip};
    let chip = SdramChip::reference_16mb();
    let single = MultiChipConfig::new(chip, 1);
    let eight = MultiChipConfig::new(chip, 8);
    assert!((single.peak_bandwidth_bps() - 1.6e9).abs() < 1e6);
    assert!(single.guaranteed_bandwidth_bps() < 1.4e9);
    assert!(eight.guaranteed_bandwidth_bps() < 6.5e9);
    assert!(eight.guaranteed_bandwidth_bps() > 3.0e9);
}
