//! Offline stand-in for the `rand` 0.8 API surface the workspace uses.
//!
//! Provides [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`] sampling methods,
//! backed by a SplitMix64 generator. SplitMix64 passes BigCrush and is more
//! than adequate for workload generation and property tests; it is *not*
//! cryptographic, and neither is the statistical quality identical to the real
//! `StdRng` (ChaCha12) — seeded streams differ, which no test here relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator seedable from a small state.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly over their whole domain by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Same value as the u128 modulo below, without 128-bit
                // division on the (hot) narrow-range path; a power-of-two
                // span further reduces to a mask.
                if let Ok(span64) = u64::try_from(span) {
                    if span64.is_power_of_two() {
                        return self.start + (rng.next_u64() & (span64 - 1)) as $t;
                    }
                    return self.start + (rng.next_u64() % span64) as $t;
                }
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The sampling interface: a generator core plus convenience draws.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` uniformly over its domain (for floats:
    /// uniformly in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Not the ChaCha12 generator of the real `rand::rngs::StdRng`; see the
    /// crate docs for the compatibility notes.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            let v = rng.gen_range(0usize..8);
            seen[v] = true;
            let w = rng.gen_range(3u32..=5);
            assert!((3..=5).contains(&w));
        }
        assert!(seen.iter().all(|&s| s), "all buckets of 0..8 hit");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "got {hits}");
    }
}
