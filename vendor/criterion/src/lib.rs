//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build container cannot reach crates.io, so this crate implements the
//! surface the workspace benches compile against — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros — with a simple
//! wall-clock measurement loop: each benchmark is warmed up once, then run
//! `sample_size` times (or until `measurement_time` elapses, whichever comes
//! first) and the minimum / mean / maximum per-iteration times are printed.
//! There is no statistical analysis, outlier rejection or HTML report.
//!
//! `cargo bench` works end to end; numbers are indicative, not rigorous.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a computed value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifies one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measured routine.
#[derive(Debug)]
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher<'_> {
    /// Measures `routine` repeatedly; the routine's return value is
    /// black-boxed so it cannot be optimised away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, not recorded
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

/// A named collection of related benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Bounds the wall-clock time spent measuring one benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Runs `routine` as the benchmark `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        routine: R,
    ) -> &mut Self
    where
        R: FnOnce(&mut Bencher<'_>, &I),
    {
        let full_name = format!("{}/{}", self.name, id);
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        run_one(&full_name, sample_size, measurement_time, |b| {
            routine(b, input)
        });
        self
    }

    /// Runs `routine` as the benchmark `name`.
    pub fn bench_function<R>(&mut self, name: impl Display, routine: R) -> &mut Self
    where
        R: FnOnce(&mut Bencher<'_>),
    {
        let full_name = format!("{}/{}", self.name, name);
        run_one(&full_name, self.sample_size, self.measurement_time, routine);
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing extra).
    pub fn finish(&mut self) {}
}

/// Entry point handed to `criterion_group!` target functions.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Opens a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            measurement_time,
        }
    }

    /// Runs `routine` as a stand-alone benchmark.
    pub fn bench_function<R>(&mut self, name: impl Display, routine: R) -> &mut Self
    where
        R: FnOnce(&mut Bencher<'_>),
    {
        let name = name.to_string();
        run_one(&name, self.sample_size, self.measurement_time, routine);
        self
    }
}

fn run_one<R: FnOnce(&mut Bencher<'_>)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    routine: R,
) {
    let mut samples = Vec::with_capacity(sample_size);
    let mut bencher = Bencher {
        samples: &mut samples,
        sample_size,
        measurement_time,
    };
    routine(&mut bencher);
    if samples.is_empty() {
        println!("{name:<48} (no samples recorded)");
        return;
    }
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<48} time: [{} {} {}]  ({} samples)",
        format_duration(*min),
        format_duration(mean),
        format_duration(*max),
        samples.len()
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        #[doc = ::core::concat!("Runs the `", ::core::stringify!($group), "` benchmark targets.")]
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(50));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| black_box(1)));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_records() {
        benches();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.000 µs");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.000 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.000 s");
    }
}
