//! Offline stand-in for the `serde` facade crate.
//!
//! The build container cannot reach crates.io, so this crate defines the
//! subset of serde's trait vocabulary that the workspace compiles against.
//! Unlike the first revision of this stand-in (which only type-checked), the
//! data model is now *functional*: [`Serialize`] impls describe real values
//! (booleans, integers, floats, strings, sequences, options and structs) and
//! [`Deserialize`] impls drive a condensed [`de::Visitor`] — enough for the
//! vendored `serde_json` back end to round-trip the workspace's experiment
//! specs and reports.
//!
//! Deliberate condensations relative to real serde (documented so that the
//! later switch to the registry crates stays a `[workspace.dependencies]`
//! change plus mechanical edits):
//!
//! * [`de::Visitor`] provides a default `expecting` implementation (real
//!   serde requires one).
//! * `Deserializer` exposes only `deserialize_any` and `deserialize_option`;
//!   manual impls written against them are valid against real serde's
//!   self-describing formats (e.g. `serde_json`).
//! * `MapAccess::next_key` / `next_value` mirror real serde's convenience
//!   methods (the `*_seed` layer is omitted).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Serialisation half of the serde data model (condensed).
pub mod ser {
    use core::fmt::Display;

    /// Trait for serialisation errors, as in real serde.
    pub trait Error: Sized + Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// Returned by [`crate::Serializer::serialize_struct`]; receives one call
    /// per field and a final [`SerializeStruct::end`].
    pub trait SerializeStruct {
        /// Value produced on success.
        type Ok;
        /// Error produced on failure.
        type Error: Error;

        /// Serialises one named field of the struct.
        fn serialize_field<T: ?Sized + crate::Serialize>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;

        /// Finishes the struct.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }

    /// Returned by [`crate::Serializer::serialize_seq`]; receives one call per
    /// element and a final [`SerializeSeq::end`].
    pub trait SerializeSeq {
        /// Value produced on success.
        type Ok;
        /// Error produced on failure.
        type Error: Error;

        /// Serialises one element of the sequence.
        fn serialize_element<T: ?Sized + crate::Serialize>(
            &mut self,
            value: &T,
        ) -> Result<(), Self::Error>;

        /// Finishes the sequence.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }
}

/// Deserialisation half of the serde data model (condensed).
pub mod de {
    use core::fmt::{self, Display};

    /// Trait for deserialisation errors, as in real serde.
    pub trait Error: Sized + Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// Walks the entries of a map being deserialised.
    pub trait MapAccess<'de> {
        /// Error produced on failure.
        type Error: Error;

        /// Deserialises the next key, or `None` when the map is exhausted.
        fn next_key<K: crate::Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error>;

        /// Deserialises the value paired with the key just returned.
        fn next_value<V: crate::Deserialize<'de>>(&mut self) -> Result<V, Self::Error>;
    }

    /// Walks the elements of a sequence being deserialised.
    pub trait SeqAccess<'de> {
        /// Error produced on failure.
        type Error: Error;

        /// Deserialises the next element, or `None` at the end.
        fn next_element<T: crate::Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error>;

        /// Number of remaining elements, when known.
        fn size_hint(&self) -> Option<usize> {
            None
        }
    }

    /// Receives the value a [`crate::Deserializer`] found in its input.
    ///
    /// Every `visit_*` method defaults to an "unexpected type" error; numeric
    /// visits fall through to [`Visitor::visit_f64`] so that a float-expecting
    /// visitor also accepts integer input (JSON does not distinguish `1` from
    /// `1.0`).
    pub trait Visitor<'de>: Sized {
        /// Value this visitor produces.
        type Value;

        /// Describes what the visitor expects, for error messages.
        fn expecting(&self, formatter: &mut fmt::Formatter<'_>) -> fmt::Result {
            formatter.write_str("a value")
        }

        /// Visits a boolean.
        fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
            Err(E::custom(format_args!(
                "unexpected boolean {v}, expected {}",
                Expected(&self)
            )))
        }

        /// Visits a non-negative integer.
        fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
            self.visit_f64(v as f64)
        }

        /// Visits a negative integer.
        fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
            self.visit_f64(v as f64)
        }

        /// Visits a floating-point number.
        fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
            Err(E::custom(format_args!(
                "unexpected number {v}, expected {}",
                Expected(&self)
            )))
        }

        /// Visits a string.
        fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
            Err(E::custom(format_args!(
                "unexpected string {v:?}, expected {}",
                Expected(&self)
            )))
        }

        /// Visits a unit / null value.
        fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
            Err(E::custom(format_args!(
                "unexpected null, expected {}",
                Expected(&self)
            )))
        }

        /// Visits an absent optional value.
        fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
            self.visit_unit()
        }

        /// Visits a present optional value.
        fn visit_some<D: crate::Deserializer<'de>>(
            self,
            deserializer: D,
        ) -> Result<Self::Value, D::Error> {
            let _ = deserializer;
            Err(Error::custom(format_args!(
                "unexpected optional value, expected {}",
                Expected(&self)
            )))
        }

        /// Visits a sequence.
        fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
            let _ = seq;
            Err(Error::custom(format_args!(
                "unexpected sequence, expected {}",
                Expected(&self)
            )))
        }

        /// Visits a map.
        fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
            let _ = map;
            Err(Error::custom(format_args!(
                "unexpected map, expected {}",
                Expected(&self)
            )))
        }
    }

    /// Adapter rendering a visitor's [`Visitor::expecting`] output.
    struct Expected<'a, V>(&'a V);

    impl<'de, V: Visitor<'de>> Display for Expected<'_, V> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.0.expecting(f)
        }
    }
}

/// A data structure that can be serialised through any [`Serializer`].
pub trait Serialize {
    /// Serialises `self` into the given driver.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A format driver that data structures describe themselves to.
pub trait Serializer: Sized {
    /// Value produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: ser::Error;
    /// Compound builder for structs.
    type SerializeStruct: ser::SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound builder for sequences.
    type SerializeSeq: ser::SerializeSeq<Ok = Self::Ok, Error = Self::Error>;

    /// Serialises a unit value (also what the derive stand-in emits).
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serialises a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialises a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialises an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serialises an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialises a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialises an absent optional value.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serialises a present optional value.
    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Begins serialising a sequence of `len` elements (when known).
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins serialising a struct with `len` fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
}

/// A data structure that can be reconstructed through any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Drives `deserializer` to produce a value.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A format driver that produces values for [`Deserialize`] impls.
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error: de::Error;

    /// Feeds whatever value the input holds to `visitor`.
    fn deserialize_any<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    /// Feeds an optional value to `visitor` (`visit_none` / `visit_some`).
    fn deserialize_option<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
}

macro_rules! serialize_unsigned {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}

serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::SerializeSeq as _;
        let mut seq = serializer.serialize_seq(Some(self.len()))?;
        for element in self {
            seq.serialize_element(element)?;
        }
        seq.end()
    }
}

macro_rules! deserialize_unsigned {
    ($($t:ty),* $(,)?) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> de::Visitor<'de> for V {
                    type Value = $t;
                    fn expecting(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                        write!(f, "an unsigned integer")
                    }
                    fn visit_u64<E: de::Error>(self, v: u64) -> Result<$t, E> {
                        <$t>::try_from(v).map_err(|_| {
                            E::custom(format_args!("integer {v} out of range"))
                        })
                    }
                }
                deserializer.deserialize_any(V)
            }
        }
    )*};
}

deserialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! deserialize_signed {
    ($($t:ty),* $(,)?) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct V;
                impl<'de> de::Visitor<'de> for V {
                    type Value = $t;
                    fn expecting(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                        write!(f, "an integer")
                    }
                    fn visit_i64<E: de::Error>(self, v: i64) -> Result<$t, E> {
                        <$t>::try_from(v).map_err(|_| {
                            E::custom(format_args!("integer {v} out of range"))
                        })
                    }
                    fn visit_u64<E: de::Error>(self, v: u64) -> Result<$t, E> {
                        <$t>::try_from(v).map_err(|_| {
                            E::custom(format_args!("integer {v} out of range"))
                        })
                    }
                }
                deserializer.deserialize_any(V)
            }
        }
    )*};
}

deserialize_signed!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = bool;
            fn expecting(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "a boolean")
            }
            fn visit_bool<E: de::Error>(self, v: bool) -> Result<bool, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_any(V)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = f64;
            fn expecting(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "a number")
            }
            fn visit_f64<E: de::Error>(self, v: f64) -> Result<f64, E> {
                Ok(v)
            }
        }
        deserializer.deserialize_any(V)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = String;
            fn expecting(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "a string")
            }
            fn visit_str<E: de::Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }
        }
        deserializer.deserialize_any(V)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(core::marker::PhantomData<T>);
        impl<'de, T: Deserialize<'de>> de::Visitor<'de> for V<T> {
            type Value = Option<T>;
            fn expecting(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "an optional value")
            }
            fn visit_none<E: de::Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_unit<E: de::Error>(self) -> Result<Self::Value, E> {
                Ok(None)
            }
            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Self::Value, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }
        deserializer.deserialize_option(V(core::marker::PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V<T>(core::marker::PhantomData<T>);
        impl<'de, T: Deserialize<'de>> de::Visitor<'de> for V<T> {
            type Value = Vec<T>;
            fn expecting(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "a sequence")
            }
            fn visit_seq<A: de::SeqAccess<'de>>(self, mut seq: A) -> Result<Self::Value, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0));
                while let Some(element) = seq.next_element()? {
                    out.push(element);
                }
                Ok(out)
            }
        }
        deserializer.deserialize_any(V(core::marker::PhantomData))
    }
}
