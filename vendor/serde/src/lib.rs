//! Offline stand-in for the `serde` facade crate.
//!
//! The build container cannot reach crates.io, so this crate defines the
//! subset of serde's trait vocabulary that the workspace compiles against:
//! [`Serialize`] / [`Deserialize`] with their `Serializer` / `Deserializer`
//! drivers, the [`ser::SerializeStruct`] compound builder used by the manual
//! `Cell` impl, and [`de::Error::custom`]. No encoder/decoder back end is
//! provided (there is no `serde_json` here either); the impls exist so that
//! derive bounds and manual impls type-check. Swapping `[workspace.dependencies]`
//! back to the real serde requires no source changes.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Serialisation half of the serde data model (condensed).
pub mod ser {
    use core::fmt::Display;

    /// Trait for serialisation errors, as in real serde.
    pub trait Error: Sized + Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// Returned by [`crate::Serializer::serialize_struct`]; receives one call
    /// per field and a final [`SerializeStruct::end`].
    pub trait SerializeStruct {
        /// Value produced on success.
        type Ok;
        /// Error produced on failure.
        type Error: Error;

        /// Serialises one named field of the struct.
        fn serialize_field<T: ?Sized + crate::Serialize>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Self::Error>;

        /// Finishes the struct.
        fn end(self) -> Result<Self::Ok, Self::Error>;
    }
}

/// Deserialisation half of the serde data model (condensed).
pub mod de {
    use core::fmt::Display;

    /// Trait for deserialisation errors, as in real serde.
    pub trait Error: Sized + Display {
        /// Builds an error from an arbitrary message.
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// A data structure that can be serialised through any [`Serializer`].
pub trait Serialize {
    /// Serialises `self` into the given driver.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A format driver that data structures describe themselves to.
pub trait Serializer: Sized {
    /// Value produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: ser::Error;
    /// Compound builder for structs.
    type SerializeStruct: ser::SerializeStruct<Ok = Self::Ok, Error = Self::Error>;

    /// Serialises a unit value (also what the derive stand-in emits).
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serialises a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Begins serialising a struct with `len` fields.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
}

/// A data structure that can be reconstructed through any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Drives `deserializer` to produce a value.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A format driver that produces values for [`Deserialize`] impls.
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error: de::Error;
}

macro_rules! stub_serialize_via_u64 {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}

stub_serialize_via_u64!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(self.to_bits())
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(f64::from(*self).to_bits())
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => v.serialize(serializer),
            None => serializer.serialize_unit(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}
