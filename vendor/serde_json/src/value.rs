//! The JSON value tree and its serde drivers.

use crate::Error;
use serde::{de, ser, Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;

/// A JSON number: integers are kept exact, everything else is an `f64`.
#[derive(Debug, Clone, Copy)]
pub struct Number(N);

#[derive(Debug, Clone, Copy)]
enum N {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// Wraps a non-negative integer.
    pub fn from_u64(v: u64) -> Self {
        Number(N::PosInt(v))
    }

    /// Wraps a signed integer (non-negative values normalise to `PosInt`).
    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Number(N::PosInt(v as u64))
        } else {
            Number(N::NegInt(v))
        }
    }

    /// Wraps a finite float.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on NaN or infinity — JSON cannot represent them.
    pub fn from_f64(v: f64) -> Result<Self, Error> {
        if v.is_finite() {
            Ok(Number(N::Float(v)))
        } else {
            Err(Error::msg(format!(
                "non-finite float {v} is not valid JSON"
            )))
        }
    }

    /// The number as an `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match self.0 {
            N::PosInt(v) => v as f64,
            N::NegInt(v) => v as f64,
            N::Float(v) => v,
        }
    }

    /// The number as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::PosInt(v) => Some(v),
            _ => None,
        }
    }

    /// The number as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::PosInt(v) => i64::try_from(v).ok(),
            N::NegInt(v) => Some(v),
            N::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    /// Numeric comparison across variants: `160` == `160.0` (floats print
    /// without a decimal point when integral, so a write/parse round trip may
    /// change the variant but must not change equality).
    fn eq(&self, other: &Self) -> bool {
        match (self.0, other.0) {
            (N::PosInt(a), N::PosInt(b)) => a == b,
            (N::NegInt(a), N::NegInt(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::PosInt(v) => write!(f, "{v}"),
            N::NegInt(v) => write!(f, "{v}"),
            // Rust's shortest-round-trip formatting; valid JSON for finite
            // values (no exponent forms like `1e300` are produced below
            // f64::MAX's magnitude printed in positional notation — `{}` uses
            // positional or exponent as needed, both valid JSON).
            N::Float(v) => write!(f, "{v}"),
        }
    }
}

/// A JSON object that preserves insertion order (sufficient for specs and
/// reports; no duplicate-key handling beyond last-wins lookup).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Appends `key: value` (keys are not deduplicated).
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        self.entries.push((key.into(), value));
    }

    /// The value of the first entry named `key`, if any.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Iterates the entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub(crate) fn into_entries(self) -> Vec<(String, Value)> {
        self.entries
    }
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }
}

impl Value {
    /// Renders the value as compact JSON.
    ///
    /// (The condensed `Serializer` trait keys struct fields by `&'static
    /// str`, so `Value` cannot implement `Serialize` for arbitrary drivers;
    /// these inherent methods replace real serde_json's blanket impl.)
    pub fn to_json_string(&self) -> String {
        crate::write::write(self, None)
    }

    /// Renders the value as indented (2-space) JSON.
    pub fn to_json_string_pretty(&self) -> String {
        crate::write::write(self, Some(0))
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = Value;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("any JSON value")
            }
            fn visit_bool<E: de::Error>(self, v: bool) -> Result<Value, E> {
                Ok(Value::Bool(v))
            }
            fn visit_u64<E: de::Error>(self, v: u64) -> Result<Value, E> {
                Ok(Value::Number(Number::from_u64(v)))
            }
            fn visit_i64<E: de::Error>(self, v: i64) -> Result<Value, E> {
                Ok(Value::Number(Number::from_i64(v)))
            }
            fn visit_f64<E: de::Error>(self, v: f64) -> Result<Value, E> {
                Number::from_f64(v)
                    .map(Value::Number)
                    .map_err(|e| E::custom(e))
            }
            fn visit_str<E: de::Error>(self, v: &str) -> Result<Value, E> {
                Ok(Value::String(v.to_owned()))
            }
            fn visit_unit<E: de::Error>(self) -> Result<Value, E> {
                Ok(Value::Null)
            }
            fn visit_seq<A: de::SeqAccess<'de>>(self, mut seq: A) -> Result<Value, A::Error> {
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0));
                while let Some(v) = seq.next_element()? {
                    out.push(v);
                }
                Ok(Value::Array(out))
            }
            fn visit_map<A: de::MapAccess<'de>>(self, mut map: A) -> Result<Value, A::Error> {
                let mut out = Map::new();
                while let Some(k) = map.next_key::<String>()? {
                    out.insert(k, map.next_value()?);
                }
                Ok(Value::Object(out))
            }
        }
        deserializer.deserialize_any(V)
    }
}

/// [`Serializer`] that builds a [`Value`] tree.
#[derive(Debug)]
pub(crate) struct ValueSerializer;

/// Struct builder for [`ValueSerializer`].
#[derive(Debug)]
pub(crate) struct ValueStructSerializer {
    map: Map,
}

/// Sequence builder for [`ValueSerializer`].
#[derive(Debug)]
pub(crate) struct ValueSeqSerializer {
    elements: Vec<Value>,
}

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    type SerializeStruct = ValueStructSerializer;
    type SerializeSeq = ValueSeqSerializer;

    fn serialize_unit(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }

    fn serialize_bool(self, v: bool) -> Result<Value, Error> {
        Ok(Value::Bool(v))
    }

    fn serialize_u64(self, v: u64) -> Result<Value, Error> {
        Ok(Value::Number(Number::from_u64(v)))
    }

    fn serialize_i64(self, v: i64) -> Result<Value, Error> {
        Ok(Value::Number(Number::from_i64(v)))
    }

    fn serialize_f64(self, v: f64) -> Result<Value, Error> {
        Number::from_f64(v).map(Value::Number)
    }

    fn serialize_str(self, v: &str) -> Result<Value, Error> {
        Ok(Value::String(v.to_owned()))
    }

    fn serialize_none(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }

    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<Value, Error> {
        value.serialize(ValueSerializer)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<ValueSeqSerializer, Error> {
        Ok(ValueSeqSerializer {
            elements: Vec::with_capacity(len.unwrap_or(0)),
        })
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<ValueStructSerializer, Error> {
        let mut map = Map::new();
        map.entries.reserve(len);
        Ok(ValueStructSerializer { map })
    }
}

impl ser::SerializeStruct for ValueStructSerializer {
    type Ok = Value;
    type Error = Error;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Error> {
        self.map.insert(key, value.serialize(ValueSerializer)?);
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(Value::Object(self.map))
    }
}

impl ser::SerializeSeq for ValueSeqSerializer {
    type Ok = Value;
    type Error = Error;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), Error> {
        self.elements.push(value.serialize(ValueSerializer)?);
        Ok(())
    }

    fn end(self) -> Result<Value, Error> {
        Ok(Value::Array(self.elements))
    }
}

/// [`Deserializer`] that walks an owned [`Value`] tree.
#[derive(Debug)]
pub(crate) struct ValueDeserializer {
    value: Value,
}

impl ValueDeserializer {
    pub(crate) fn new(value: Value) -> Self {
        ValueDeserializer { value }
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = Error;

    fn deserialize_any<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self.value {
            Value::Null => visitor.visit_unit(),
            Value::Bool(b) => visitor.visit_bool(b),
            Value::Number(n) => match n.0 {
                N::PosInt(v) => visitor.visit_u64(v),
                N::NegInt(v) => visitor.visit_i64(v),
                N::Float(v) => visitor.visit_f64(v),
            },
            Value::String(s) => visitor.visit_str(&s),
            Value::Array(a) => visitor.visit_seq(SeqDeserializer {
                iter: a.into_iter(),
            }),
            Value::Object(m) => visitor.visit_map(MapDeserializer {
                iter: m.into_entries().into_iter(),
                pending: None,
            }),
        }
    }

    fn deserialize_option<V: de::Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
        match self.value {
            Value::Null => visitor.visit_none(),
            other => visitor.visit_some(ValueDeserializer::new(other)),
        }
    }
}

/// [`de::SeqAccess`] over an array's elements.
#[derive(Debug)]
struct SeqDeserializer {
    iter: std::vec::IntoIter<Value>,
}

impl<'de> de::SeqAccess<'de> for SeqDeserializer {
    type Error = Error;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Error> {
        match self.iter.next() {
            Some(v) => T::deserialize(ValueDeserializer::new(v)).map(Some),
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.iter.len())
    }
}

/// [`de::MapAccess`] over an object's entries.
#[derive(Debug)]
struct MapDeserializer {
    iter: std::vec::IntoIter<(String, Value)>,
    pending: Option<Value>,
}

impl<'de> de::MapAccess<'de> for MapDeserializer {
    type Error = Error;

    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Error> {
        match self.iter.next() {
            Some((k, v)) => {
                self.pending = Some(v);
                K::deserialize(ValueDeserializer::new(Value::String(k))).map(Some)
            }
            None => Ok(None),
        }
    }

    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Error> {
        let value = self
            .pending
            .take()
            .ok_or_else(|| Error::msg("next_value called before next_key"))?;
        V::deserialize(ValueDeserializer::new(value))
    }
}
