//! Recursive-descent JSON parser producing a [`Value`] tree.

use crate::value::{Map, Number, Value};
use crate::Error;

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// tokens rejected).
pub(crate) fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the document"));
    }
    Ok(value)
}

/// Nesting depth guard: specs and reports are shallow; this only exists to
/// turn pathological inputs into an error instead of a stack overflow.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> Error {
        Error::msg(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn eat_keyword(&mut self, keyword: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected '{keyword}'")))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.error("document nests too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(&format!("unexpected character '{}'", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut elements = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(elements));
        }
        loop {
            self.skip_ws();
            elements.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(elements));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.parse_unicode_escape()?);
                            continue; // parse_unicode_escape consumed everything
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one multi-byte UTF-8 scalar. Validate at most 4
                    // bytes — never the whole remaining input, which would
                    // make string parsing quadratic on large documents. A
                    // window that cuts the *next* scalar short still has a
                    // valid prefix containing this one (the input is a
                    // &str, so scalar boundaries are intact).
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    let valid = match std::str::from_utf8(window) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()])
                                .expect("validated prefix")
                        }
                        Err(_) => return Err(self.error("invalid UTF-8 in string")),
                    };
                    let ch = valid.chars().next().expect("non-empty by peek");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (and a following low surrogate
    /// escape when the first unit is a high surrogate). On entry `pos` is at
    /// the first hex digit; on exit it is past the last consumed digit.
    fn parse_unicode_escape(&mut self) -> Result<char, Error> {
        let first = self.parse_hex4()?;
        if (0xD800..=0xDBFF).contains(&first) {
            // High surrogate: require `\uXXXX` low surrogate.
            if self.bytes.get(self.pos) == Some(&b'\\')
                && self.bytes.get(self.pos + 1) == Some(&b'u')
            {
                self.pos += 2;
                let second = self.parse_hex4()?;
                if !(0xDC00..=0xDFFF).contains(&second) {
                    return Err(self.error("expected a low surrogate escape"));
                }
                let c = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                return char::from_u32(c).ok_or_else(|| self.error("invalid surrogate pair"));
            }
            return Err(self.error("unpaired high surrogate escape"));
        }
        if (0xDC00..=0xDFFF).contains(&first) {
            return Err(self.error("unpaired low surrogate escape"));
        }
        char::from_u32(first).ok_or_else(|| self.error("invalid unicode escape"))
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.error("expected 4 hex digits in unicode escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Integer part: a single 0, or a non-zero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("expected a digit")),
        }
        if matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.error("numbers may not have leading zeros"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected a digit after the decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected a digit in the exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number characters are ASCII");
        if !is_float {
            if negative {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Value::Number(Number::from_i64(v)));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(v)));
            }
            // Integer overflow: fall through to f64.
        }
        let v: f64 = text.parse().map_err(|_| self.error("malformed number"))?;
        Number::from_f64(v)
            .map(Value::Number)
            .map_err(|_| self.error("number overflows an f64"))
    }
}
