//! JSON writer: compact or 2-space-indented rendering of a [`Value`] tree.

use crate::value::Value;
use std::fmt::Write as _;

/// Renders `value`; `indent` is `None` for compact output or `Some(level)`
/// for pretty output starting at that nesting level.
pub(crate) fn write(value: &Value, indent: Option<usize>) -> String {
    let mut out = String::new();
    write_value(&mut out, value, indent);
    out
}

fn newline(out: &mut String, level: usize) {
    out.push('\n');
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => {
            let _ = write!(out, "{n}");
        }
        Value::String(s) => write_string(out, s),
        Value::Array(elements) => {
            if elements.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, element) in elements.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    newline(out, level + 1);
                }
                write_value(out, element, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                newline(out, level);
            }
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, entry)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    newline(out, level + 1);
                }
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, entry, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                newline(out, level);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
