//! Offline stand-in for `serde_json`.
//!
//! Unlike the other vendored crates, this one is *not* a thin shim: it is a
//! small but real JSON implementation over the condensed data model of the
//! vendored `serde` — a [`Value`] tree, a recursive-descent parser
//! ([`from_str`]), a writer ([`to_string`] / [`to_string_pretty`]) and the
//! [`serde::Serializer`] / [`serde::Deserializer`] drivers connecting them to
//! `Serialize` / `Deserialize` impls. The workspace uses it to round-trip
//! experiment specs and reports through JSON files and CLI pipes.
//!
//! Functional subset: objects, arrays, strings (with escapes, including
//! `\uXXXX` and surrogate pairs), numbers (integers kept exact, floats via
//! Rust's shortest round-trip formatting), booleans and null. Not provided:
//! streaming readers/writers, borrowed (zero-copy) deserialisation, arbitrary
//! precision numbers, the `json!` macro.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parse;
mod value;
mod write;

use serde::{de, ser, Deserialize, Serialize};
use std::fmt;

pub use value::{Map, Number, Value};

/// Error produced by any serde_json operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    pub(crate) fn msg(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::msg(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::msg(msg.to_string())
    }
}

/// Serialises `value` into a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] when the value cannot be represented in JSON (for
/// example a non-finite float).
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    value.serialize(value::ValueSerializer)
}

/// Reconstructs a `T` from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] when the tree does not match the shape `T` expects.
pub fn from_value<T: for<'de> Deserialize<'de>>(value: Value) -> Result<T, Error> {
    T::deserialize(value::ValueDeserializer::new(value))
}

/// Serialises `value` as a compact JSON string.
///
/// # Errors
///
/// Propagates [`to_value`] failures.
pub fn to_string<T: Serialize>(value: T) -> Result<String, Error> {
    Ok(write::write(&to_value(value)?, None))
}

/// Serialises `value` as an indented (2-space) JSON string.
///
/// # Errors
///
/// Propagates [`to_value`] failures.
pub fn to_string_pretty<T: Serialize>(value: T) -> Result<String, Error> {
    Ok(write::write(&to_value(value)?, Some(0)))
}

/// Parses a JSON document into a `T` (use `T = Value` for the raw tree).
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON, trailing input, or a shape mismatch
/// with `T`.
pub fn from_str<T: for<'de> Deserialize<'de>>(input: &str) -> Result<T, Error> {
    from_value(parse::parse(input)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(to_string(1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
    }

    #[test]
    fn integers_parse_as_floats_when_asked() {
        // JSON does not distinguish 3 from 3.0; a float-expecting visitor
        // must accept integer input.
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
    }

    #[test]
    fn vectors_and_options_round_trip() {
        let v = vec![1u64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), v);
        assert_eq!(to_string(Option::<u64>::None).unwrap(), "null");
        assert_eq!(to_string(Some(5u64)).unwrap(), "5");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u64>>("5").unwrap(), Some(5));
    }

    #[test]
    fn string_escapes_round_trip() {
        let tricky = "line\nbreak \"quoted\" back\\slash \t tab \u{1F600} unicode";
        let s = to_string(tricky).unwrap();
        assert_eq!(from_str::<String>(&s).unwrap(), tricky);
        // Escaped input forms decode too, including surrogate pairs.
        assert_eq!(
            from_str::<String>("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap(),
            "Aé\u{1F600}"
        );
    }

    #[test]
    fn objects_preserve_insertion_order() {
        let v: Value = from_str("{\"b\": 1, \"a\": [true, null]}").unwrap();
        let Value::Object(map) = &v else {
            panic!("expected object")
        };
        let keys: Vec<&str> = map.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(write::write(&v, None), "{\"b\":1,\"a\":[true,null]}");
    }

    #[test]
    fn pretty_printing_indents() {
        let v: Value = from_str("{\"a\": [1, 2]}").unwrap();
        let pretty = write::write(&v, Some(0));
        assert_eq!(pretty, "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
        // Pretty output parses back to the same tree.
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn numbers_compare_numerically_across_variants() {
        // 160.0 prints as "160" and reparses as an integer; Value equality
        // must not care.
        let original = to_value(160.0f64).unwrap();
        let reparsed: Value = from_str(&write::write(&original, None)).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn malformed_input_is_rejected() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\" 1}",
            "nul",
            "[1 2]",
            "+5",
            "01",
            "1.e",
            "\"\\q\"",
        ] {
            assert!(from_str::<Value>(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn non_finite_floats_cannot_serialize() {
        assert!(to_string(f64::NAN).is_err());
        assert!(to_string(f64::INFINITY).is_err());
    }

    #[test]
    fn deep_value_round_trip() {
        let text = "{\"name\":\"sweep\",\"runs\":[{\"q\":64,\"ok\":true},{\"q\":128,\"ok\":false}],\"rate\":160.5,\"note\":null}";
        let v: Value = from_str(text).unwrap();
        assert_eq!(from_str::<Value>(&write::write(&v, None)).unwrap(), v);
        assert_eq!(from_str::<Value>(&write::write(&v, Some(0))).unwrap(), v);
    }
}
