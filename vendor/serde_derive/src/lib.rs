//! Offline stand-in for `serde_derive`.
//!
//! The build container has no access to crates.io, so this proc-macro crate
//! provides `#[derive(Serialize)]` / `#[derive(Deserialize)]` with the same
//! *surface* as the real ones: the derived impls satisfy trait bounds (for
//! example `SerializeStruct::serialize_field<T: Serialize>`) and accept
//! `#[serde(...)]` helper attributes, but they do not encode real data — the
//! workspace never serialises at runtime today, it only needs the impls to
//! exist. Swap this crate for the real `serde_derive` by editing
//! `[workspace.dependencies]` once the build has network access.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Extracts the identifier of the type a derive was applied to.
///
/// Walks the item token stream, skipping outer attributes and visibility
/// modifiers, until it finds the `struct` / `enum` / `union` keyword; the next
/// identifier is the type name. The derived types in this workspace are all
/// non-generic, which the real derive and this stand-in both rely on here.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip the attribute body `[...]`.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Bracket {
                        tokens.next();
                    }
                }
            }
            TokenTree::Ident(id) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" || word == "union" {
                    if let Some(TokenTree::Ident(name)) = tokens.next() {
                        return name.to_string();
                    }
                    panic!("serde derive stand-in: item has no name");
                }
                // `pub`, `pub(crate)` etc. — keep scanning.
            }
            _ => {}
        }
    }
    panic!("serde derive stand-in: expected a struct, enum or union");
}

/// Stand-in for serde's `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                 -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 serializer.serialize_unit()\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde derive stand-in: generated impl must parse")
}

/// Stand-in for serde's `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(_deserializer: D)\n\
                 -> ::core::result::Result<Self, D::Error> {{\n\
                 ::core::result::Result::Err(::serde::de::Error::custom(\n\
                     \"the vendored serde stand-in cannot decode data\"))\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde derive stand-in: generated impl must parse")
}
