//! Offline stand-in for the slice of `proptest` the workspace tests use.
//!
//! Implements the [`proptest!`] macro, the [`prop_assert!`] family, integer
//! range / tuple / boolean / [`sample::select`] / [`collection::vec`]
//! strategies and [`test_runner::ProptestConfig`]. Inputs are drawn from a
//! deterministic per-test generator (seeded from the test name), so failures
//! reproduce across runs. The real crate's shrinking, persistence and
//! `Arbitrary` machinery are intentionally absent — a failing case reports the
//! drawn values unshrunk via the assertion message.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Configuration for a `proptest!` block.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Subset of proptest's run configuration: the number of random cases.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic generator for one test, seeded from its name (FNV-1a).
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(hash)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
}

/// Boolean strategies (`prop::bool::ANY`).
pub mod bool {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }
}

/// Strategies that sample from explicit value sets (`prop::sample::select`).
pub mod sample {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    /// Picks one of the given values uniformly at random.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select requires at least one value");
        Select(values)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates a `Vec` whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `proptest!` user normally imports.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of proptest's `prelude::prop` module shorthand.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the same shape the real macro does for the tests in this
/// workspace: an optional `#![proptest_config(...)]` inner attribute followed
/// by `fn name(arg in strategy, ...) { body }` items carrying outer
/// attributes (doc comments, `#[test]`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::rng_for(::core::stringify!($name));
                for __case in 0..__config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let __case_values = ::std::format!(
                        ::core::concat!("[case {}/{}: ", $(::core::stringify!($arg), " = {:?}, ",)+ "]"),
                        __case + 1,
                        __config.cases,
                        $(&$arg,)+
                    );
                    let __run = || -> ::core::result::Result<(), ::std::string::String> {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    };
                    if let ::core::result::Result::Err(message) = __run() {
                        ::core::panic!("proptest case failed: {} {}", message, __case_values);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::core::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            ::core::stringify!($left),
            ::core::stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both: {:?})",
            ::core::stringify!($left),
            ::core::stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_generate_in_bounds(
            a in 1usize..=16,
            b in 0u32..1024,
            pair in (0u64..10, prop::bool::ANY),
        ) {
            prop_assert!((1..=16).contains(&a));
            prop_assert!(b < 1024);
            prop_assert!(pair.0 < 10);
            let _: bool = pair.1;
        }

        #[test]
        fn vec_and_select_strategies_work(
            v in prop::collection::vec((0u32..32, prop::bool::ANY), 1..200),
            pick in prop::sample::select(vec![1usize, 2, 4]),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 200);
            prop_assert!(matches!(pick, 1 | 2 | 4));
            for (x, _flag) in v {
                prop_assert!(x < 32);
            }
        }
    }

    #[test]
    fn failing_case_reports_values() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[allow(unused)]
                fn always_fails(x in 0u32..4) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let err = *result
            .expect_err("must panic")
            .downcast::<String>()
            .unwrap();
        assert!(err.contains("proptest case failed"), "got: {err}");
        assert!(err.contains("x ="), "got: {err}");
    }
}
