//! Offline stand-in for the `bytes` crate.
//!
//! Provides the one type the workspace uses — [`Bytes`], a cheaply clonable,
//! reference-counted, immutable byte buffer — with the construction and
//! dereferencing surface `pktbuf_model::CellPayload` relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable, reference-counted contiguous byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes(Arc::from(Vec::new()))
    }

    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data.to_vec()))
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_clone_share() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }
}
