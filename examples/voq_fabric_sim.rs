//! A whole virtual-output-queued router: 16 ingress line cards (one CFDS
//! packet buffer each), an iSLIP crossbar and 16 line-rate egress ports,
//! under admissible incast traffic — every ingress port pressing on one hot
//! egress port at just under its line rate.
//!
//! This used to be a single line card driven by a hand-rolled "fabric"
//! request generator; it is now a thin driver over the real `fabric` crate —
//! arbitration, egress contention and end-to-end latency come from the
//! system layer instead of being approximated by a request pattern.
//!
//! Run with: `cargo run --release --example voq_fabric_sim`

use future_packet_buffers::sim::fabric::{
    ArbiterChoice, FabricDesign, FabricScenario, FabricWorkload,
};
use future_packet_buffers::sim::scenario::DesignKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = FabricScenario {
        ports: 16,
        design: FabricDesign::Fixed(DesignKind::Cfds),
        workload: FabricWorkload::Incast,
        arbiter: ArbiterChoice::Islip,
        granularity: 2,
        rads_granularity: 8,
        num_banks: 64,
        load_percent: 85,
        arrival_slots: 30_000,
        seed: 2024,
        ..FabricScenario::small()
    };
    scenario.validate()?;
    let report = scenario.run();

    let misses: u64 = report.per_port.iter().map(|p| p.stats.misses).sum();
    let drops: u64 = report.per_port.iter().map(|p| p.stats.drops).sum();
    let conflicts: u64 = report.per_port.iter().map(|p| p.stats.bank_conflicts).sum();
    let peak_head = report
        .per_port
        .iter()
        .map(|p| p.stats.peak_head_sram_cells)
        .max()
        .unwrap_or(0);
    let peak_tail = report
        .per_port
        .iter()
        .map(|p| p.stats.peak_tail_sram_cells)
        .max()
        .unwrap_or(0);
    let peak_rr = report
        .per_port
        .iter()
        .map(|p| p.stats.peak_rr_entries)
        .max()
        .unwrap_or(0);

    println!(
        "VOQ fabric with {} ports over {} slots",
        report.ports, report.slots
    );
    println!(
        "arrivals {}   grants {}   misses {}   drops {}   bank conflicts {}",
        report.arrivals, report.grants, misses, drops, conflicts
    );
    println!(
        "peak SRAM per port: head {peak_head} cells, tail {peak_tail} cells; peak RR {peak_rr} \
         entries; crossbar utilisation {:.3}",
        report.crossbar_utilization
    );
    println!(
        "end-to-end latency: mean {:.1} slots, max {} slots",
        report.mean_latency_slots, report.max_latency_slots
    );
    println!("\nper-output deliveries (the incast target first):");
    for (j, output) in report.per_output.iter().enumerate() {
        if output.transmitted > 0 {
            println!(
                "  output {j:3}: {} (peak egress depth {})",
                output.transmitted, output.peak_queue_depth
            );
        }
    }
    assert!(
        report.zero_loss && report.conservation_holds(),
        "worst-case guarantees must hold"
    );
    println!("\nworst-case guarantees held for the whole run.");
    Ok(())
}
