//! A virtual-output-queued input line card in front of a crossbar-like
//! scheduler: live arrivals, per-queue destinations and a fabric that asks for
//! cells according to its own (hot-spotted) schedule.
//!
//! Exercises the full tail-SRAM → DRAM → head-SRAM path of the CFDS buffer
//! with renaming under a skewed, bursty workload, and prints per-queue
//! delivery counts at the end.
//!
//! Run with: `cargo run --release --example voq_fabric_sim`

use future_packet_buffers::buffers::{CfdsBuffer, PacketBuffer};
use future_packet_buffers::model::{CfdsConfig, LineRate, LogicalQueueId};
use future_packet_buffers::traffic::{
    ArrivalGenerator, BurstyArrivals, HotspotRequests, RequestGenerator,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let num_queues = 32;
    let cfg = CfdsConfig::builder()
        .line_rate(LineRate::Oc3072)
        .num_queues(num_queues)
        .granularity(2)
        .rads_granularity(8)
        .num_banks(64)
        .physical_queue_factor(2)
        .build()?;
    let mut buf = CfdsBuffer::new(cfg);

    // Bursty arrivals (long trains of cells to one destination at a time) and
    // a fabric scheduler that favours a handful of hot output ports.
    let mut arrivals = BurstyArrivals::new(num_queues, 48.0, 12.0, 2024);
    let mut fabric = HotspotRequests::new(num_queues, 4, 0.7, 77);

    let active_slots = 60_000u64;
    let drain = buf.pipeline_delay_slots() as u64 + 2_048;
    let mut per_queue_grants = vec![0u64; num_queues];
    for t in 0..(active_slots + drain) {
        let arrival = (t < active_slots).then(|| arrivals.next(t)).flatten();
        let request = fabric.next(t, &|q: LogicalQueueId| buf.requestable_cells(q));
        let outcome = buf.step(arrival, request);
        if let Some(cell) = outcome.granted {
            per_queue_grants[cell.queue().as_usize()] += 1;
        }
        assert!(
            outcome.miss.is_none(),
            "zero-miss guarantee violated at slot {t}"
        );
    }

    let stats = buf.stats();
    println!(
        "VOQ line card with {num_queues} queues over {} slots",
        stats.slots
    );
    println!(
        "arrivals {}   grants {}   misses {}   drops {}   bank conflicts {}",
        stats.arrivals, stats.grants, stats.misses, stats.drops, stats.bank_conflicts
    );
    println!(
        "peak SRAM: head {} cells, tail {} cells; peak RR {} entries; DRAM utilisation {:.3}",
        stats.peak_head_sram_cells,
        stats.peak_tail_sram_cells,
        stats.peak_rr_entries,
        buf.dram_utilisation()
    );
    println!("\nper-queue grants (hot outputs first):");
    for (i, grants) in per_queue_grants.iter().enumerate() {
        if *grants > 0 {
            println!("  queue {i:3}: {grants}");
        }
    }
    assert!(stats.is_loss_free());
    println!("\nworst-case guarantees held for the whole run.");
    Ok(())
}
