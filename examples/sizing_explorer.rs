//! Explore the dimensioning space: for a line rate and queue count, print how
//! the SRAM size, the reorder latency and the physical cost (area, access
//! time) evolve as the CFDS granularity `b` sweeps from the RADS value `B`
//! down to a single cell — the trade-off behind Figures 10 and 11.
//!
//! Run with: `cargo run --release --example sizing_explorer -- [num_queues]`

use future_packet_buffers::cacti::ProcessNode;
use future_packet_buffers::cfds::sizing as cfds_sizing;
use future_packet_buffers::mma::sizing as rads_sizing;
use future_packet_buffers::model::{CfdsConfig, LineRate};
use future_packet_buffers::sim::report::{format_bytes, TextTable};
use future_packet_buffers::sim::techeval;

fn main() {
    let num_queues: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(512);
    let line_rate = LineRate::Oc3072;
    let big_b = 32usize;
    let banks = 256usize;
    let node = ProcessNode::node_130nm();

    println!("Dimensioning sweep at {line_rate}, Q = {num_queues}, B = {big_b}, M = {banks}\n");
    let mut table = TextTable::new(vec![
        "b",
        "lookahead",
        "latency",
        "delay(us)",
        "head SRAM",
        "RR",
        "access(ns)",
        "area(cm2)",
        "meets 3.2ns",
    ]);
    for b in [32usize, 16, 8, 4, 2, 1] {
        if !big_b.is_multiple_of(b) || !banks.is_multiple_of(big_b / b) {
            continue;
        }
        let point = if b == big_b {
            techeval::rads_point(
                line_rate,
                num_queues,
                big_b,
                rads_sizing::min_lookahead(num_queues, big_b),
                &node,
            )
        } else {
            let cfg = CfdsConfig::builder()
                .line_rate(line_rate)
                .num_queues(num_queues)
                .granularity(b)
                .rads_granularity(big_b)
                .num_banks(banks)
                .build()
                .expect("valid configuration");
            techeval::cfds_point(&cfg, cfg.min_lookahead(), &node)
        };
        let latency = if b == big_b {
            0
        } else {
            let cfg = CfdsConfig::builder()
                .line_rate(line_rate)
                .num_queues(num_queues)
                .granularity(b)
                .rads_granularity(big_b)
                .num_banks(banks)
                .build()
                .unwrap();
            cfds_sizing::latency_slots(&cfg)
        };
        let rr = if b == big_b {
            0
        } else {
            let cfg = CfdsConfig::builder()
                .line_rate(line_rate)
                .num_queues(num_queues)
                .granularity(b)
                .rads_granularity(big_b)
                .num_banks(banks)
                .build()
                .unwrap();
            cfds_sizing::rr_size(&cfg)
        };
        table.push_row(vec![
            format!("{b}"),
            format!("{}", point.lookahead_slots),
            format!("{latency}"),
            format!("{:.1}", point.delay_seconds * 1e6),
            format_bytes((point.head_sram_cells * 64) as f64),
            format!("{rr}"),
            format!("{:.2}", point.best_access_time_ns()),
            format!("{:.2}", point.total_area_cm2()),
            format!("{}", point.meets(line_rate)),
        ]);
    }
    println!("{}", table.render());
    println!("(b = {big_b} is the RADS baseline; smaller b is CFDS.)");
}
