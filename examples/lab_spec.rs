//! The declarative experiment pipeline, end to end: build an
//! `ExperimentSpec`, round-trip it through JSON (the same text
//! `pktbuf-lab run --spec` would read), execute it on a `LabRunner`, and
//! inspect the structured report.
//!
//! Run with `cargo run --example lab_spec`.

use future_packet_buffers::sim::lab::LabRunner;
use future_packet_buffers::sim::scenario::{DesignKind, Workload};
use future_packet_buffers::sim::spec::{ExperimentSpec, Sweep};

fn main() {
    // Designs × workloads × queue counts × seeds — 2 × 2 × 2 × 1 = 8 runs.
    let spec = ExperimentSpec::builder()
        .name("example-lab-sweep")
        .designs([DesignKind::Rads, DesignKind::Cfds])
        .workloads([Workload::AdversarialRoundRobin, Workload::Hotspot])
        .num_queues(Sweep::doubling(16, 32))
        .granularity(Sweep::fixed(4))
        .rads_granularity(Sweep::fixed(16))
        .num_banks(Sweep::fixed(64))
        .arrival_slots(5_000)
        .seeds([13])
        .build()
        .expect("the example spec is valid");

    // The spec is data: this JSON is exactly what a spec file contains.
    let json = spec.to_json();
    println!("-- the experiment, as data --\n{json}\n");
    let reparsed = ExperimentSpec::from_json(&json).expect("round-trips");
    assert_eq!(reparsed, spec);

    // Execute across worker threads; the report is deterministic regardless.
    let report = LabRunner::new().run(&reparsed).expect("spec expands");
    println!("-- per-run results (CSV) --\n{}", report.to_csv());
    let agg = &report.aggregate;
    println!(
        "-- aggregate -- {} runs, all loss-free: {}, mean {:.3} grants/slot, peak RR {} entries",
        agg.runs, agg.all_loss_free, agg.mean_grants_per_slot, agg.peak_rr_entries
    );
    assert!(
        agg.all_loss_free,
        "the paper's guarantees hold on every run"
    );
}
