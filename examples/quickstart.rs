//! Quickstart: build a small CFDS packet buffer, push cells through it and
//! verify the worst-case guarantees as it runs.
//!
//! Run with: `cargo run --example quickstart`

use future_packet_buffers::buffers::{CfdsBuffer, PacketBuffer};
use future_packet_buffers::model::{CfdsConfig, LineRate, LogicalQueueId};
use future_packet_buffers::traffic::{
    AdversarialRoundRobin, ArrivalGenerator, RequestGenerator, RoundRobinArrivals,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A modest CFDS instance: 16 VOQs, transfers of b = 2 cells over a DRAM
    // whose random access time is B = 8 slots, 32 banks.
    let cfg = CfdsConfig::builder()
        .line_rate(LineRate::Oc3072)
        .num_queues(16)
        .granularity(2)
        .rads_granularity(8)
        .num_banks(32)
        .build()?;
    println!(
        "CFDS: Q={} b={} B={} M={} (groups of {} banks)",
        cfg.num_queues,
        cfg.granularity,
        cfg.rads_granularity,
        cfg.num_banks,
        cfg.banks_per_group()
    );

    let mut buf = CfdsBuffer::new(cfg);
    let mut arrivals = RoundRobinArrivals::new(cfg.num_queues);
    let mut requests = AdversarialRoundRobin::new(cfg.num_queues);

    // Run 20 000 slots of line-rate arrivals with an adversarial round-robin
    // scheduler on the head side, then drain the pipeline.
    let active = 20_000u64;
    let drain = buf.pipeline_delay_slots() as u64 + 512;
    for t in 0..(active + drain) {
        let arrival = (t < active).then(|| arrivals.next(t)).flatten();
        let request = requests.next(t, &|q: LogicalQueueId| buf.requestable_cells(q));
        let outcome = buf.step(arrival, request);
        assert!(
            outcome.miss.is_none(),
            "a miss would violate the worst-case guarantee"
        );
    }

    let stats = buf.stats();
    println!("slots simulated        : {}", stats.slots);
    println!(
        "cells through the buffer: {} in / {} out",
        stats.arrivals, stats.grants
    );
    println!(
        "misses / drops / conflicts: {} / {} / {}",
        stats.misses, stats.drops, stats.bank_conflicts
    );
    println!(
        "peak head SRAM (cells) : {} (analytical bound {})",
        stats.peak_head_sram_cells,
        buf.analytical_head_sram()
    );
    println!(
        "peak requests register : {} (analytical bound {})",
        buf.peak_rr_occupancy(),
        buf.analytical_rr_size()
    );
    println!("loss-free              : {}", stats.is_loss_free());
    Ok(())
}
