//! The paper's headline scenario: an OC-3072 (160 Gb/s) line card buffer with
//! 512 VOQs, compared across the three designs on the same backlog drain.
//!
//! This is a scaled version of the evaluation of §7/§8: every queue starts
//! with a DRAM backlog and the switch-fabric arbiter drains the buffer with
//! the ECQF worst-case round-robin pattern. The DRAM-only baseline misses
//! almost immediately; RADS and CFDS both uphold the zero-miss guarantee, but
//! CFDS does it with an order of magnitude less SRAM.
//!
//! Run with: `cargo run --release --example oc3072_router`

use future_packet_buffers::buffers::{CfdsBuffer, DramOnlyBuffer, PacketBuffer, RadsBuffer};
use future_packet_buffers::cacti::ProcessNode;
use future_packet_buffers::model::{CfdsConfig, LineRate, LogicalQueueId, RadsConfig};
use future_packet_buffers::sim::techeval;
use future_packet_buffers::traffic::{preload_cells, AdversarialRoundRobin, RequestGenerator};

const QUEUES: usize = 64; // scaled from 512 to keep the example fast
const CELLS_PER_QUEUE: u64 = 64;

fn drain(buf: &mut dyn PacketBuffer, label: &str) {
    let mut requests = AdversarialRoundRobin::new(QUEUES);
    let total = QUEUES as u64 * CELLS_PER_QUEUE;
    let horizon = total + buf.pipeline_delay_slots() as u64 + 4_096;
    for t in 0..horizon {
        let request = requests.next(t, &|q: LogicalQueueId| buf.requestable_cells(q));
        buf.step(None, request);
    }
    let s = buf.stats();
    println!(
        "{label:10} grants {:6} / {total:6}   misses {:6}   miss rate {:5.1}%   loss-free {}",
        s.grants,
        s.misses,
        100.0 * s.miss_rate(),
        s.is_loss_free()
    );
}

fn main() {
    println!("== OC-3072 line card, {QUEUES} VOQs, {CELLS_PER_QUEUE} backlogged cells each ==\n");

    // DRAM-only baseline.
    let rads_cfg = RadsConfig {
        line_rate: LineRate::Oc3072,
        num_queues: QUEUES,
        granularity: 32,
        lookahead: None,
        dram: Default::default(),
    };
    let mut dram_only = DramOnlyBuffer::new(rads_cfg);
    for (q, cells) in preload_cells(QUEUES, CELLS_PER_QUEUE) {
        dram_only.preload(q, cells);
    }
    drain(&mut dram_only, "DRAM-only");

    // RADS.
    let mut rads = RadsBuffer::new(rads_cfg);
    for (q, cells) in preload_cells(QUEUES, CELLS_PER_QUEUE) {
        rads.preload_dram(q, cells);
    }
    drain(&mut rads, "RADS");
    println!(
        "           head SRAM: analytical {} cells, measured peak {} cells",
        rads.analytical_head_sram(),
        rads.peak_head_sram()
    );

    // CFDS with b = 4.
    let cfds_cfg = CfdsConfig::builder()
        .line_rate(LineRate::Oc3072)
        .num_queues(QUEUES)
        .granularity(4)
        .rads_granularity(32)
        .num_banks(256)
        .build()
        .expect("valid CFDS configuration");
    let mut cfds = CfdsBuffer::new(cfds_cfg);
    for (q, cells) in preload_cells(QUEUES, CELLS_PER_QUEUE) {
        cfds.preload_dram(q, cells);
    }
    drain(&mut cfds, "CFDS b=4");
    println!(
        "           head SRAM: analytical {} cells, measured peak {} cells; RR peak {} (bound {})",
        cfds.analytical_head_sram(),
        cfds.peak_head_sram(),
        cfds.peak_rr_occupancy(),
        cfds.analytical_rr_size()
    );

    // And the technology view at the full 512-queue design point.
    println!("\n== 0.13 um technology view at Q = 512 (the paper's Figure 10 headline) ==\n");
    let node = ProcessNode::node_130nm();
    let rads_point = techeval::rads_point(
        LineRate::Oc3072,
        512,
        32,
        future_packet_buffers::mma::sizing::min_lookahead(512, 32),
        &node,
    );
    let cfds_full = future_packet_buffers::design_points::oc3072_cfds();
    let cfds_point = techeval::cfds_point(&cfds_full, cfds_full.min_lookahead(), &node);
    for p in [&rads_point, &cfds_point] {
        println!(
            "{:10} b={:2}  delay {:6.1} us  head SRAM {:8} cells  access {:5.2} ns  area {:5.2} cm^2  meets 3.2 ns: {}",
            p.design,
            p.granularity,
            p.delay_seconds * 1e6,
            p.head_sram_cells,
            p.best_access_time_ns(),
            p.total_area_cm2(),
            p.meets(LineRate::Oc3072)
        );
    }
}
