//! The rule families. Each rule walks the token stream / item tree of the
//! files in its configured scope and emits [`Diagnostic`]s.
//!
//! | rule | severity | scope | backstopped by |
//! |------|----------|-------|----------------|
//! | `hotpath-alloc` | error | hot files, non-setup fns | `tests/alloc_free_steady_state.rs` |
//! | `panic-freedom` | error | hot files, non-setup fns | differential suites (a panic aborts them) |
//! | `unchecked-indexing` | warning | hot files | `clippy::indexing_slicing` + debug asserts |
//! | `determinism` | error | report-feeding modules | thread-count-invariance tests |
//! | `truncating-cast` | warning | report-feeding modules | proptest ordinal ranges |
//! | `enum-sync` | error | configured enum pairs | fabric differential tests |
//! | `impl-sync` | error | configured trait impls | chunked-equivalence tests |

use crate::config::Config;
use crate::items::ParsedFile;
use crate::lexer::{Token, TokenKind};
use crate::report::{Diagnostic, Severity};

/// Everything a per-file rule needs about one file.
#[derive(Debug)]
pub struct FileContext<'a> {
    /// Workspace-relative path, forward slashes.
    pub path: &'a str,
    /// The token stream.
    pub tokens: &'a [Token],
    /// The item tree.
    pub parsed: &'a ParsedFile,
}

/// Whether `path` is one of the configured hot files.
pub fn is_hot_file(config: &Config, path: &str) -> bool {
    config.hot_files.iter().any(|f| f == path)
}

/// Whether `path` lives in a determinism-scoped module.
pub fn is_determinism_path(config: &Config, path: &str) -> bool {
    config
        .determinism_paths
        .iter()
        .any(|prefix| path == prefix || path.starts_with(&format!("{prefix}/")))
}

/// Token index ranges that belong to test code (bodies of `#[cfg(test)]` /
/// `#[test]` functions). Cross-file rules use item-level `in_test` flags
/// instead.
fn test_ranges(parsed: &ParsedFile) -> Vec<std::ops::Range<usize>> {
    parsed
        .fns
        .iter()
        .filter(|f| f.in_test)
        .map(|f| f.body.clone())
        .collect()
}

fn in_ranges(ranges: &[std::ops::Range<usize>], idx: usize) -> bool {
    ranges.iter().any(|r| r.contains(&idx))
}

/// Matches `recv . name (`-style method calls at `tokens[i]` being the `.`.
fn method_call_at(tokens: &[Token], i: usize) -> Option<(&str, u32)> {
    if !tokens[i].is_punct('.') {
        return None;
    }
    let name = tokens.get(i + 1)?.ident()?;
    // Allow a turbofish between name and the call parens.
    let mut j = i + 2;
    if tokens.get(j).is_some_and(|t| t.is_punct(':')) {
        // `::<…>(`: skip to the matching `>` then expect `(`.
        let mut angle = 0i32;
        while let Some(tok) = tokens.get(j) {
            match tok.kind {
                TokenKind::Punct('<') => angle += 1,
                TokenKind::Punct('>') => {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                TokenKind::Punct('(') => return None,
                _ => {}
            }
            j += 1;
        }
    }
    if tokens.get(j).is_some_and(|t| t.is_punct('(')) {
        Some((name, tokens[i + 1].line))
    } else {
        None
    }
}

/// Matches `Type :: name` at `tokens[i]` being the type identifier.
fn path_call_at(tokens: &[Token], i: usize) -> Option<(&str, &str, u32)> {
    let ty = tokens[i].ident()?;
    if !tokens.get(i + 1)?.is_punct(':') || !tokens.get(i + 2)?.is_punct(':') {
        return None;
    }
    let name = tokens.get(i + 3)?.ident()?;
    Some((ty, name, tokens[i].line))
}

/// Token spans covered by `debug_assert*!(…)` (and plain `assert*!(…)`)
/// macro arguments: panicking helpers inside them *are* the assertion.
fn assertion_spans(tokens: &[Token]) -> Vec<std::ops::Range<usize>> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let is_assert = tokens[i]
            .ident()
            .is_some_and(|name| name.starts_with("debug_assert") || name.starts_with("assert"));
        if is_assert && tokens.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            let start = i;
            let mut depth = 0i32;
            let mut j = i + 2;
            while let Some(tok) = tokens.get(j) {
                match tok.kind {
                    TokenKind::Punct('(' | '[' | '{') => depth += 1,
                    TokenKind::Punct(')' | ']' | '}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            spans.push(start..j + 1);
            i = j + 1;
        } else {
            i += 1;
        }
    }
    spans
}

/// `hotpath-alloc`: allocating constructs in the steady-state slot loop.
pub fn hotpath_alloc(ctx: &FileContext<'_>, config: &Config, out: &mut Vec<Diagnostic>) {
    const ALLOCATING_TYPES: [&str; 8] = [
        "Vec", "VecDeque", "String", "Box", "HashMap", "HashSet", "BTreeMap", "BTreeSet",
    ];
    const ALLOCATING_CTORS: [&str; 4] = ["new", "with_capacity", "from", "from_iter"];
    const ALLOCATING_METHODS: [&str; 4] = ["collect", "to_vec", "to_string", "to_owned"];
    const ALLOCATING_MACROS: [&str; 2] = ["vec", "format"];
    for func in &ctx.parsed.fns {
        if func.in_test || func.body.is_empty() || config.is_setup_function(&func.name) {
            continue;
        }
        let body = &ctx.tokens[func.body.clone()];
        for i in 0..body.len() {
            let hit: Option<(String, u32)> = if let Some((ty, ctor, line)) = path_call_at(body, i) {
                (ALLOCATING_TYPES.contains(&ty) && ALLOCATING_CTORS.contains(&ctor))
                    .then(|| (format!("{ty}::{ctor}"), line))
            } else if let Some((name, line)) = method_call_at(body, i) {
                ALLOCATING_METHODS
                    .contains(&name)
                    .then(|| (format!(".{name}()"), line))
            } else if let Some(mac) = body[i].ident() {
                (ALLOCATING_MACROS.contains(&mac)
                    && body.get(i + 1).is_some_and(|t| t.is_punct('!')))
                .then(|| (format!("{mac}!"), body[i].line))
            } else {
                None
            };
            if let Some((construct, line)) = hit {
                out.push(Diagnostic::new(
                    "hotpath-alloc",
                    Severity::Error,
                    ctx.path,
                    line,
                    format!(
                        "allocating construct `{construct}` in hot function `{}`: the \
                         steady-state slot loop is allocation-free (PR-3 invariant, \
                         counted by tests/alloc_free_steady_state.rs); move the \
                         allocation to a setup function or waive it",
                        func.name
                    ),
                ));
            }
        }
    }
}

/// `panic-freedom` + `unchecked-indexing`: the slot loop must not carry
/// accidental panic sources.
pub fn panic_freedom(ctx: &FileContext<'_>, config: &Config, out: &mut Vec<Diagnostic>) {
    const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
    let mut index_sites = 0usize;
    let mut first_index_line = 0u32;
    for func in &ctx.parsed.fns {
        if func.in_test || func.body.is_empty() || config.is_setup_function(&func.name) {
            continue;
        }
        let body = &ctx.tokens[func.body.clone()];
        let assertions = assertion_spans(body);
        for i in 0..body.len() {
            if in_ranges(&assertions, i) {
                continue;
            }
            if let Some((name, line)) = method_call_at(body, i) {
                if name == "unwrap" || name == "expect" {
                    out.push(Diagnostic::new(
                        "panic-freedom",
                        Severity::Error,
                        ctx.path,
                        line,
                        format!(
                            "`.{name}()` in hot function `{}`: a panic aborts the slot \
                             loop mid-batch; handle the case, prove it impossible with \
                             a debug_assert, or waive with the invariant that holds",
                            func.name
                        ),
                    ));
                }
                continue;
            }
            if let Some(mac) = body[i].ident() {
                if PANIC_MACROS.contains(&mac) && body.get(i + 1).is_some_and(|t| t.is_punct('!')) {
                    out.push(Diagnostic::new(
                        "panic-freedom",
                        Severity::Error,
                        ctx.path,
                        body[i].line,
                        format!("`{mac}!` in hot function `{}`", func.name),
                    ));
                    continue;
                }
            }
            // Index expression: `[` preceded by an ident or a closing
            // delimiter is indexing/slicing, not an array literal.
            if body[i].is_punct('[') && i > 0 {
                let prev = &body[i - 1];
                let is_receiver = matches!(prev.kind, TokenKind::Ident(_))
                    || prev.is_punct(')')
                    || prev.is_punct(']');
                if is_receiver {
                    if index_sites == 0 {
                        first_index_line = body[i].line;
                    }
                    index_sites += 1;
                }
            }
        }
    }
    if index_sites > 0 {
        out.push(Diagnostic::new(
            "unchecked-indexing",
            Severity::Warning,
            ctx.path,
            first_index_line,
            format!(
                "{index_sites} unchecked index expression(s) in hot functions: each \
                 relies on a debug_assert'd in-bounds invariant (advisory; see the \
                 clippy::indexing_slicing note in Cargo.toml)"
            ),
        ));
    }
}

/// `determinism` + `truncating-cast`: report-feeding modules must be
/// byte-reproducible across runs, hosts, and thread counts.
pub fn determinism(ctx: &FileContext<'_>, config: &Config, out: &mut Vec<Diagnostic>) {
    let tests = test_ranges(ctx.parsed);
    let tokens = ctx.tokens;
    for i in 0..tokens.len() {
        if in_ranges(&tests, i) {
            continue;
        }
        let Some(word) = tokens[i].ident() else {
            continue;
        };
        let line = tokens[i].line;
        match word {
            "HashMap" | "HashSet" => {
                out.push(Diagnostic::new(
                    "determinism",
                    Severity::Error,
                    ctx.path,
                    line,
                    format!(
                        "`{word}` in a report-feeding module: hash iteration order \
                         varies across processes, so anything it touches can leak \
                         into a report; use BTreeMap/Vec, or waive with a proof that \
                         no iteration order reaches serialized output"
                    ),
                ));
            }
            "Instant" | "SystemTime" => {
                out.push(Diagnostic::new(
                    "determinism",
                    Severity::Error,
                    ctx.path,
                    line,
                    format!(
                        "`{word}` in a report-feeding module: wall-clock values make \
                         reports non-reproducible (byte-identical reports are the \
                         LabRunner contract)"
                    ),
                ));
            }
            "time" if i > 0 && path_is(tokens, i - 1, "std") => {
                // `std::time` usage that doesn't name Instant/SystemTime
                // directly (e.g. `use std::time::…`).
                out.push(Diagnostic::new(
                    "determinism",
                    Severity::Error,
                    ctx.path,
                    line,
                    "`std::time` import in a report-feeding module".to_owned(),
                ));
            }
            "thread_rng" | "from_entropy" => {
                out.push(Diagnostic::new(
                    "determinism",
                    Severity::Error,
                    ctx.path,
                    line,
                    format!(
                        "`{word}` in a report-feeding module: unseeded randomness \
                         breaks replay; every stream derives from an explicit seed \
                         (see traffic::stream_seed)"
                    ),
                ));
            }
            "as" => {
                let Some(target) = tokens.get(i + 1).and_then(|t| t.ident()) else {
                    continue;
                };
                if !matches!(target, "u8" | "u16" | "u32" | "i8" | "i16" | "i32") {
                    continue;
                }
                // Look back a few tokens for slot/ordinal-flavoured operands.
                let stemmed = tokens[i.saturating_sub(4)..i]
                    .iter()
                    .rev()
                    .filter_map(|t| t.ident())
                    .find(|name| {
                        let lower = name.to_ascii_lowercase();
                        config.ordinal_stems.iter().any(|stem| lower.contains(stem))
                    });
                if let Some(operand) = stemmed {
                    out.push(Diagnostic::new(
                        "truncating-cast",
                        Severity::Warning,
                        ctx.path,
                        line,
                        format!(
                            "`{operand} as {target}` truncates 64-bit slot/ordinal \
                             arithmetic; use try_from or widen the target type"
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Whether `tokens[i]` begins the path segment `name ::` (looking backward
/// from a segment that followed it).
fn path_is(tokens: &[Token], i: usize, name: &str) -> bool {
    // tokens[i] is expected to be the second ':' of `name::`.
    i >= 2
        && tokens[i].is_punct(':')
        && tokens[i - 1].is_punct(':')
        && tokens[i - 2].ident() == Some(name)
}

/// `enum-sync`: a source-of-truth enum's variants must all appear in its
/// configured mirror (cross-crate drift rustc cannot see).
pub fn enum_sync(files: &[(String, ParsedFile)], config: &Config, out: &mut Vec<Diagnostic>) {
    for spec in &config.enum_sync {
        let find = |file: &str, name: &str| {
            files
                .iter()
                .find(|(path, _)| path == file)
                .and_then(|(_, parsed)| parsed.enums.iter().find(|e| e.name == name && !e.in_test))
        };
        let Some(source) = find(&spec.source_file, &spec.source_enum) else {
            out.push(Diagnostic::new(
                "enum-sync",
                Severity::Error,
                &spec.source_file,
                1,
                format!(
                    "configured source enum `{}` not found in this file — \
                     analysis.toml has drifted from the source tree",
                    spec.source_enum
                ),
            ));
            continue;
        };
        let Some(target) = find(&spec.target_file, &spec.target_enum) else {
            out.push(Diagnostic::new(
                "enum-sync",
                Severity::Error,
                &spec.target_file,
                1,
                format!(
                    "configured target enum `{}` not found in this file — \
                     analysis.toml has drifted from the source tree",
                    spec.target_enum
                ),
            ));
            continue;
        };
        for variant in &source.variants {
            if !target.variants.contains(variant) {
                out.push(Diagnostic::new(
                    "enum-sync",
                    Severity::Error,
                    &spec.target_file,
                    target.line,
                    format!(
                        "enum `{}` has no `{variant}` arm, but `{}::{variant}` exists \
                         in {} — the dispatch family drifted across crates",
                        spec.target_enum, spec.source_enum, spec.source_file
                    ),
                ));
            }
        }
    }
}

/// `impl-sync`: every non-test impl of a configured trait must override the
/// listed methods (the chunked-engine fast paths are per-design overrides; a
/// new design silently inheriting the slow default is exactly the drift this
/// catches).
pub fn impl_sync(files: &[(String, ParsedFile)], config: &Config, out: &mut Vec<Diagnostic>) {
    for spec in &config.impl_sync {
        for (path, parsed) in files {
            for imp in &parsed.impls {
                if imp.in_test || imp.trait_name.as_deref() != Some(spec.trait_name.as_str()) {
                    continue;
                }
                for method in &spec.methods {
                    if !imp.methods.contains(method) {
                        out.push(Diagnostic::new(
                            "impl-sync",
                            Severity::Error,
                            path,
                            imp.line,
                            format!(
                                "`impl {} for {}` does not override `{method}`: the \
                                 batch fast paths are per-design overrides; implement \
                                 it or waive with why the default is intended",
                                spec.trait_name, imp.type_name
                            ),
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run_hot(src: &str) -> Vec<Diagnostic> {
        let lexed = lex(src);
        let parsed = crate::items::parse(&lexed.tokens);
        let config = crate::config::Config::from_toml(
            "[hotpath]\nfiles = [\"hot.rs\"]\nsetup_functions = [\"new\"]\n\
             [determinism]\npaths = [\"hot.rs\"]\n",
        )
        .expect("test config parses");
        let ctx = FileContext {
            path: "hot.rs",
            tokens: &lexed.tokens,
            parsed: &parsed,
        };
        let mut out = Vec::new();
        hotpath_alloc(&ctx, &config, &mut out);
        panic_freedom(&ctx, &config, &mut out);
        determinism(&ctx, &config, &mut out);
        out
    }

    #[test]
    fn alloc_in_hot_fn_fires_but_setup_does_not() {
        let diags =
            run_hot("fn new() -> V { Vec::with_capacity(4) }\nfn step() { let v = vec![0]; }");
        let rules: Vec<&str> = diags.iter().map(|d| d.rule.as_str()).collect();
        assert!(rules.contains(&"hotpath-alloc"));
        assert_eq!(
            diags.iter().filter(|d| d.rule == "hotpath-alloc").count(),
            1
        );
    }

    #[test]
    fn unwrap_inside_debug_assert_is_exempt() {
        let diags = run_hot(
            "fn step(&mut self) {\n\
               debug_assert!(self.check().unwrap());\n\
               let v = self.slot.unwrap();\n\
             }",
        );
        assert_eq!(
            diags.iter().filter(|d| d.rule == "panic-freedom").count(),
            1
        );
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn turbofish_collect_is_caught() {
        let diags = run_hot("fn step() { let v = iter.collect::<Vec<_>>(); }");
        assert!(diags.iter().any(|d| d.rule == "hotpath-alloc"));
    }

    #[test]
    fn truncating_slot_cast_warns_but_plain_cast_does_not() {
        let diags =
            run_hot("fn step(slot: u64, n: u64) { let a = slot as u32; let b = n as u32; }");
        let casts: Vec<&Diagnostic> = diags
            .iter()
            .filter(|d| d.rule == "truncating-cast")
            .collect();
        assert_eq!(casts.len(), 1);
        assert!(casts[0].message.contains("slot as u32"));
    }

    #[test]
    fn test_code_is_out_of_scope() {
        let diags = run_hot(
            "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { let v = vec![HashMap::new()]; v.unwrap(); }\n}",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
