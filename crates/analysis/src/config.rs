//! `analysis.toml`: which files are hot, which modules feed reports, and
//! which cross-file families must stay in sync.
//!
//! The parser is a hand-rolled TOML *subset* in the spirit of the vendored
//! dependency stand-ins (the container has no crates.io access): `[table]`
//! and `[[array-of-tables]]` headers, `key = "string"`, `key = integer`,
//! `key = true/false`, and (possibly multi-line) string arrays. That is all
//! the checked-in configuration needs; anything else is a parse error so
//! config drift is loud.

use std::collections::BTreeMap;

/// One parsed value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TomlValue {
    /// A quoted string.
    Str(String),
    /// An unsigned integer.
    Int(u64),
    /// A boolean.
    Bool(bool),
    /// An array of quoted strings.
    StrArray(Vec<String>),
}

/// A `key = value` table (order-stable via `BTreeMap`).
pub type TomlTable = BTreeMap<String, TomlValue>;

/// The parsed document: named tables plus arrays-of-tables.
#[derive(Debug, Default)]
pub struct TomlDoc {
    /// `[name]` tables.
    pub tables: BTreeMap<String, TomlTable>,
    /// `[[name]]` arrays of tables, in document order.
    pub table_arrays: BTreeMap<String, Vec<TomlTable>>,
    /// Keys written before any table header.
    pub root: TomlTable,
}

/// The analyzer's effective configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directories (relative to the root) that are walked for `.rs` files.
    pub roots: Vec<String>,
    /// Files whose steady-state slot loop must stay allocation-free and
    /// panic-free (the PR-3 property, made source-visible).
    pub hot_files: Vec<String>,
    /// Function names (exact, or `prefix*`) that are *setup/teardown*, not
    /// slot-loop code: constructors, preloaders, report builders. The
    /// hotpath-alloc rule does not apply inside them.
    pub setup_functions: Vec<String>,
    /// Path prefixes whose modules feed `SimulationReport`/`FabricRunReport`/
    /// serde output and therefore must be deterministic.
    pub determinism_paths: Vec<String>,
    /// Identifier stems that mark slot/ordinal arithmetic for the
    /// truncating-cast check.
    pub ordinal_stems: Vec<String>,
    /// Enum families that must stay variant-complete across files.
    pub enum_sync: Vec<EnumSyncSpec>,
    /// Trait impls that must carry specific method overrides.
    pub impl_sync: Vec<ImplSyncSpec>,
}

/// `[[enum_sync]]`: every variant of `source_enum` must appear as a variant
/// of `target_enum` (name-for-name), across crate boundaries rustc cannot
/// check.
#[derive(Debug, Clone)]
pub struct EnumSyncSpec {
    /// File declaring the source-of-truth enum.
    pub source_file: String,
    /// Source enum name.
    pub source_enum: String,
    /// File declaring the enum that must mirror it.
    pub target_file: String,
    /// Mirroring enum name.
    pub target_enum: String,
}

/// `[[impl_sync]]`: every non-test `impl <trait> for …` in the workspace
/// must define all of `methods` (or carry a waiver explaining why the
/// default is intentional).
#[derive(Debug, Clone)]
pub struct ImplSyncSpec {
    /// Trait name (last path segment as written at the impl).
    pub trait_name: String,
    /// Methods every impl must override.
    pub methods: Vec<String>,
}

impl Config {
    /// Parses a configuration document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line for syntax errors,
    /// unknown sections/keys, and missing required keys.
    pub fn from_toml(text: &str) -> Result<Config, String> {
        let doc = parse_toml(text)?;
        let mut config = Config {
            roots: vec![
                "crates".into(),
                "src".into(),
                "tests".into(),
                "examples".into(),
                "vendor".into(),
            ],
            hot_files: Vec::new(),
            setup_functions: Vec::new(),
            determinism_paths: Vec::new(),
            ordinal_stems: vec!["slot".into(), "ordinal".into(), "seq".into()],
            enum_sync: Vec::new(),
            impl_sync: Vec::new(),
        };
        for (name, table) in &doc.tables {
            match name.as_str() {
                "workspace" => {
                    if let Some(value) = table.get("roots") {
                        config.roots = as_str_array(value, "workspace.roots")?;
                    }
                    check_keys(table, &["roots"], "workspace")?;
                }
                "hotpath" => {
                    config.hot_files = as_str_array(require(table, "files", "hotpath")?, "files")?;
                    if let Some(value) = table.get("setup_functions") {
                        config.setup_functions = as_str_array(value, "setup_functions")?;
                    }
                    check_keys(table, &["files", "setup_functions"], "hotpath")?;
                }
                "determinism" => {
                    config.determinism_paths =
                        as_str_array(require(table, "paths", "determinism")?, "paths")?;
                    if let Some(value) = table.get("ordinal_stems") {
                        config.ordinal_stems = as_str_array(value, "ordinal_stems")?;
                    }
                    check_keys(table, &["paths", "ordinal_stems"], "determinism")?;
                }
                other => return Err(format!("unknown section [{other}] in analysis.toml")),
            }
        }
        for (name, tables) in &doc.table_arrays {
            match name.as_str() {
                "enum_sync" => {
                    for table in tables {
                        config.enum_sync.push(EnumSyncSpec {
                            source_file: as_str(require(table, "source_file", "enum_sync")?)?,
                            source_enum: as_str(require(table, "source_enum", "enum_sync")?)?,
                            target_file: as_str(require(table, "target_file", "enum_sync")?)?,
                            target_enum: as_str(require(table, "target_enum", "enum_sync")?)?,
                        });
                    }
                }
                "impl_sync" => {
                    for table in tables {
                        config.impl_sync.push(ImplSyncSpec {
                            trait_name: as_str(require(table, "trait", "impl_sync")?)?,
                            methods: as_str_array(
                                require(table, "methods", "impl_sync")?,
                                "methods",
                            )?,
                        });
                    }
                }
                other => return Err(format!("unknown section [[{other}]] in analysis.toml")),
            }
        }
        Ok(config)
    }

    /// Whether `fn_name` matches the setup-function list (exact match, or a
    /// `prefix*` glob entry).
    pub fn is_setup_function(&self, fn_name: &str) -> bool {
        self.setup_functions
            .iter()
            .any(|pattern| match pattern.strip_suffix('*') {
                Some(prefix) => fn_name.starts_with(prefix),
                None => fn_name == pattern,
            })
    }
}

fn require<'a>(table: &'a TomlTable, key: &str, section: &str) -> Result<&'a TomlValue, String> {
    table
        .get(key)
        .ok_or_else(|| format!("[{section}] is missing required key {key:?}"))
}

fn check_keys(table: &TomlTable, allowed: &[&str], section: &str) -> Result<(), String> {
    for key in table.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("unknown key {key:?} in [{section}]"));
        }
    }
    Ok(())
}

fn as_str(value: &TomlValue) -> Result<String, String> {
    match value {
        TomlValue::Str(s) => Ok(s.clone()),
        other => Err(format!("expected a string, found {other:?}")),
    }
}

fn as_str_array(value: &TomlValue, key: &str) -> Result<Vec<String>, String> {
    match value {
        TomlValue::StrArray(items) => Ok(items.clone()),
        other => Err(format!("{key} must be a string array, found {other:?}")),
    }
}

/// Parses the TOML subset. Line-oriented: a `key = [` array may span lines
/// until its closing `]`.
pub fn parse_toml(text: &str) -> Result<TomlDoc, String> {
    enum Target {
        Root,
        Table(String),
        ArrayTable(String),
    }
    let mut doc = TomlDoc::default();
    let mut target = Target::Root;
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let name = rest
                .strip_suffix("]]")
                .ok_or_else(|| format!("line {line_no}: malformed [[section]] header"))?
                .trim()
                .to_owned();
            doc.table_arrays
                .entry(name.clone())
                .or_default()
                .push(TomlTable::new());
            target = Target::ArrayTable(name);
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("line {line_no}: malformed [section] header"))?
                .trim()
                .to_owned();
            doc.tables.entry(name.clone()).or_default();
            target = Target::Table(name);
            continue;
        }
        let (key, value_text) = line
            .split_once('=')
            .ok_or_else(|| format!("line {line_no}: expected `key = value`"))?;
        let key = key.trim().to_owned();
        let mut value_text = value_text.trim().to_owned();
        // Multi-line arrays: accumulate until the closing bracket.
        if value_text.starts_with('[') {
            while !balanced_array(&value_text) {
                let (_, next) = lines
                    .next()
                    .ok_or_else(|| format!("line {line_no}: unterminated array for {key:?}"))?;
                value_text.push(' ');
                value_text.push_str(strip_comment(next).trim());
            }
        }
        let value = parse_value(&value_text)
            .map_err(|e| format!("line {line_no}: value for {key:?}: {e}"))?;
        let table = match &target {
            Target::Root => &mut doc.root,
            Target::Table(name) => doc.tables.get_mut(name).expect("header created the table"),
            Target::ArrayTable(name) => doc
                .table_arrays
                .get_mut(name)
                .and_then(|v| v.last_mut())
                .expect("header created the table"),
        };
        if table.insert(key.clone(), value).is_some() {
            return Err(format!("line {line_no}: duplicate key {key:?}"));
        }
    }
    Ok(doc)
}

/// Strips a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut previous_was_escape = false;
    for (pos, c) in line.char_indices() {
        match c {
            '"' if !previous_was_escape => in_string = !in_string,
            '#' if !in_string => return &line[..pos],
            _ => {}
        }
        previous_was_escape = c == '\\' && !previous_was_escape;
    }
    line
}

/// Whether an accumulated array text has its closing `]` (quote-aware).
fn balanced_array(text: &str) -> bool {
    let mut in_string = false;
    let mut previous_was_escape = false;
    let mut depth = 0i32;
    for c in text.chars() {
        match c {
            '"' if !previous_was_escape => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth -= 1,
            _ => {}
        }
        previous_was_escape = c == '\\' && !previous_was_escape;
    }
    depth == 0
}

fn parse_value(text: &str) -> Result<TomlValue, String> {
    let text = text.trim();
    if text == "true" {
        return Ok(TomlValue::Bool(true));
    }
    if text == "false" {
        return Ok(TomlValue::Bool(false));
    }
    if let Some(rest) = text.strip_prefix('"') {
        let inner = rest
            .strip_suffix('"')
            .ok_or_else(|| "unterminated string".to_owned())?;
        return Ok(TomlValue::Str(unescape(inner)));
    }
    if let Some(rest) = text.strip_prefix('[') {
        let inner = rest
            .strip_suffix(']')
            .ok_or_else(|| "unterminated array".to_owned())?;
        let mut items = Vec::new();
        for part in split_array_items(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part)? {
                TomlValue::Str(s) => items.push(s),
                other => return Err(format!("arrays hold strings only, found {other:?}")),
            }
        }
        return Ok(TomlValue::StrArray(items));
    }
    text.parse::<u64>()
        .map(TomlValue::Int)
        .map_err(|_| format!("cannot parse {text:?} (expected string, integer, bool, or array)"))
}

/// Splits array items at top-level commas (quote-aware).
fn split_array_items(inner: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    let mut previous_was_escape = false;
    for c in inner.chars() {
        match c {
            '"' if !previous_was_escape => {
                in_string = !in_string;
                current.push(c);
            }
            ',' if !in_string => {
                items.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
        previous_was_escape = c == '\\' && !previous_was_escape;
    }
    items.push(current);
    items
}

fn unescape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('"') => out.push('"'),
                Some('\\') | None => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# comment
[workspace]
roots = ["crates", "src"]

[hotpath]
files = [
  "crates/core/src/hotpath.rs", # trailing comment
  "crates/core/src/rads.rs",
]
setup_functions = ["new", "with_*"]

[determinism]
paths = ["crates/sim/src"]

[[enum_sync]]
source_file = "a.rs"
source_enum = "DesignKind"
target_file = "b.rs"
target_enum = "PortBuffer"

[[impl_sync]]
trait = "PacketBuffer"
methods = ["step_batch", "advance_idle"]
"#;

    #[test]
    fn parses_the_full_shape() {
        let config = Config::from_toml(SAMPLE).expect("sample parses");
        assert_eq!(config.roots, vec!["crates", "src"]);
        assert_eq!(config.hot_files.len(), 2);
        assert!(config.is_setup_function("new"));
        assert!(config.is_setup_function("with_capacity"));
        assert!(!config.is_setup_function("step"));
        assert_eq!(config.enum_sync.len(), 1);
        assert_eq!(config.impl_sync[0].methods.len(), 2);
    }

    #[test]
    fn unknown_sections_and_keys_are_errors() {
        assert!(Config::from_toml("[mystery]\nx = 1\n").is_err());
        assert!(Config::from_toml("[hotpath]\nfiles = []\nbogus = 1\n").is_err());
        assert!(Config::from_toml("[determinism]\n").is_err()); // missing paths
    }

    #[test]
    fn comments_inside_strings_survive() {
        let doc = parse_toml("[t]\nkey = \"has # hash\"\n").expect("parses");
        assert_eq!(
            doc.tables["t"]["key"],
            TomlValue::Str("has # hash".to_owned())
        );
    }
}
