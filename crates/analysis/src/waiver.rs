//! In-source waivers: `// analyze: allow(<rule>[, <rule>…]) — <justification>`.
//!
//! A waiver written as a trailing comment covers its own line; a waiver on a
//! line of its own covers the next line that carries code. The justification
//! is mandatory — a waiver without one is itself a diagnostic — and a waiver
//! that suppresses nothing is an `unused-waiver` error, so stale waivers
//! cannot silently outlive the code they excused.

use crate::lexer::{Comment, Token};

/// One parsed waiver.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rule names this waiver suppresses.
    pub rules: Vec<String>,
    /// 1-based line the waiver comment starts on.
    pub line: u32,
    /// The code line the waiver covers.
    pub covered_line: u32,
    /// Why the violation is acceptable (mandatory, recorded in the report).
    pub justification: String,
}

/// A malformed waiver comment (reported as an error by the engine).
#[derive(Debug, Clone)]
pub struct MalformedWaiver {
    /// 1-based line of the comment.
    pub line: u32,
    /// What is wrong with it.
    pub problem: String,
}

/// Result of scanning one file's comments for waivers.
#[derive(Debug, Default)]
pub struct WaiverSet {
    /// Well-formed waivers.
    pub waivers: Vec<Waiver>,
    /// Comments that tried to be waivers but don't parse.
    pub malformed: Vec<MalformedWaiver>,
}

/// Extracts the waivers from a file's comments. `tokens` locates the next
/// code line after an own-line waiver.
pub fn collect(comments: &[Comment], tokens: &[Token]) -> WaiverSet {
    let mut set = WaiverSet::default();
    for comment in comments {
        let text = comment.text.trim_start_matches(['/', '!']).trim();
        let Some(rest) = text.strip_prefix("analyze:") else {
            continue;
        };
        match parse_waiver_body(rest.trim()) {
            Ok((rules, justification)) => {
                let covered_line = if comment.own_line {
                    tokens
                        .iter()
                        .map(|t| t.line)
                        .find(|&l| l > comment.line)
                        .unwrap_or(comment.line)
                } else {
                    comment.line
                };
                set.waivers.push(Waiver {
                    rules,
                    line: comment.line,
                    covered_line,
                    justification,
                });
            }
            Err(problem) => set.malformed.push(MalformedWaiver {
                line: comment.line,
                problem,
            }),
        }
    }
    set
}

/// Parses `allow(rule[, rule…]) <sep> justification` where `<sep>` is an em
/// dash, en dash, hyphen, or colon.
fn parse_waiver_body(body: &str) -> Result<(Vec<String>, String), String> {
    let rest = body
        .strip_prefix("allow")
        .ok_or_else(|| "expected `allow(<rule>) — <justification>`".to_owned())?
        .trim_start();
    let rest = rest
        .strip_prefix('(')
        .ok_or_else(|| "expected `(` after `allow`".to_owned())?;
    let close = rest
        .find(')')
        .ok_or_else(|| "unclosed rule list in `allow(…)`".to_owned())?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|rule| rule.trim().to_owned())
        .filter(|rule| !rule.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("`allow()` names no rule".to_owned());
    }
    let mut justification = rest[close + 1..].trim();
    for sep in ["—", "–", "-", ":"] {
        if let Some(stripped) = justification.strip_prefix(sep) {
            justification = stripped.trim();
            break;
        }
    }
    if justification.is_empty() {
        return Err("waiver has no justification (write `allow(rule) — why`)".to_owned());
    }
    Ok((rules, justification.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_waiver_covers_its_own_line() {
        let src = "let x = risky(); // analyze: allow(panic-freedom) — invariant documented\n";
        let lexed = lex(src);
        let set = collect(&lexed.comments, &lexed.tokens);
        assert_eq!(set.waivers.len(), 1);
        assert_eq!(set.waivers[0].covered_line, 1);
        assert_eq!(set.waivers[0].rules, vec!["panic-freedom"]);
        assert_eq!(set.waivers[0].justification, "invariant documented");
    }

    #[test]
    fn own_line_waiver_covers_next_code_line() {
        let src = "// analyze: allow(hotpath-alloc, determinism) - grows only on resize\n\nlet x = vec![0];\n";
        let lexed = lex(src);
        let set = collect(&lexed.comments, &lexed.tokens);
        assert_eq!(set.waivers.len(), 1);
        assert_eq!(set.waivers[0].covered_line, 3);
        assert_eq!(set.waivers[0].rules.len(), 2);
    }

    #[test]
    fn missing_justification_is_malformed() {
        let src = "// analyze: allow(panic-freedom)\nlet x = 1;\n";
        let lexed = lex(src);
        let set = collect(&lexed.comments, &lexed.tokens);
        assert!(set.waivers.is_empty());
        assert_eq!(set.malformed.len(), 1);
    }

    #[test]
    fn non_waiver_comments_are_ignored() {
        let src = "// analyzer-adjacent prose, not a waiver\nlet x = 1;\n";
        let lexed = lex(src);
        let set = collect(&lexed.comments, &lexed.tokens);
        assert!(set.waivers.is_empty());
        assert!(set.malformed.is_empty());
    }
}
