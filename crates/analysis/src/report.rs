//! Diagnostics and the JSON artifact.
//!
//! The [`AnalysisReport`] round-trips through the vendored `serde_json`
//! (hand-written `Serialize`/`Deserialize`, like the spec/report chain in
//! `sim`) so CI can upload `analysis.json` and tooling can diff runs.

use serde::{de, Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;

/// How bad a finding is. Errors gate CI; warnings are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Must be fixed or waived for the run to pass.
    Error,
    /// Reported and recorded, but does not fail the run.
    Warning,
}

impl Severity {
    /// The JSON/stdout spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding, waived or not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule that fired (`hotpath-alloc`, `determinism`, …).
    pub rule: String,
    /// Error or warning.
    pub severity: Severity,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation of what fired and why it matters.
    pub message: String,
    /// True when an in-source waiver suppressed this finding.
    pub waived: bool,
    /// The waiver's justification, when waived.
    pub justification: Option<String>,
}

impl Diagnostic {
    /// Creates an unwaived diagnostic.
    pub fn new(
        rule: &str,
        severity: Severity,
        file: &str,
        line: u32,
        message: String,
    ) -> Diagnostic {
        Diagnostic {
            rule: rule.to_owned(),
            severity,
            file: file.to_owned(),
            line,
            message,
            waived: false,
            justification: None,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.waived {
            write!(
                f,
                "waived[{}] {}:{}: {} (justification: {})",
                self.rule,
                self.file,
                self.line,
                self.message,
                self.justification.as_deref().unwrap_or("-"),
            )
        } else {
            write!(
                f,
                "{}[{}] {}:{}: {}",
                self.severity, self.rule, self.file, self.line, self.message
            )
        }
    }
}

/// The full result of one analysis run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisReport {
    /// Artifact schema version.
    pub schema: u64,
    /// Number of `.rs` files scanned.
    pub files_scanned: u64,
    /// Every finding, in (file, line) order, waived ones included.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Current artifact schema version.
    pub const SCHEMA: u64 = 1;

    /// Unwaived errors — the CI gate.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| !d.waived && d.severity == Severity::Error)
            .count()
    }

    /// Unwaived warnings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| !d.waived && d.severity == Severity::Warning)
            .count()
    }

    /// Findings suppressed by a justified waiver.
    pub fn waived_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.waived).count()
    }

    /// Renders the artifact as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| {
            // A report is plain data; serialization cannot fail in practice.
            format!("{{\"error\":\"{e}\"}}")
        })
    }

    /// Parses an artifact produced by [`AnalysisReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the `serde_json` message for malformed or mis-shaped input.
    pub fn from_json(text: &str) -> Result<AnalysisReport, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

impl Serialize for Diagnostic {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("Diagnostic", 7)?;
        st.serialize_field("rule", &self.rule)?;
        st.serialize_field("severity", &self.severity.as_str().to_owned())?;
        st.serialize_field("file", &self.file)?;
        st.serialize_field("line", &u64::from(self.line))?;
        st.serialize_field("message", &self.message)?;
        st.serialize_field("waived", &self.waived)?;
        st.serialize_field("justification", &self.justification)?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for Diagnostic {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = Diagnostic;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a diagnostic object")
            }
            fn visit_map<A: de::MapAccess<'de>>(self, mut map: A) -> Result<Diagnostic, A::Error> {
                let mut diag = Diagnostic::new("", Severity::Error, "", 0, String::new());
                while let Some(key) = map.next_key::<String>()? {
                    match key.as_str() {
                        "rule" => diag.rule = map.next_value()?,
                        "severity" => {
                            let text: String = map.next_value()?;
                            diag.severity = match text.as_str() {
                                "error" => Severity::Error,
                                "warning" => Severity::Warning,
                                other => {
                                    return Err(de::Error::custom(format_args!(
                                        "unknown severity {other:?}"
                                    )))
                                }
                            };
                        }
                        "file" => diag.file = map.next_value()?,
                        "line" => {
                            let line: u64 = map.next_value()?;
                            diag.line = u32::try_from(line).map_err(|_| {
                                de::Error::custom(format_args!("line {line} out of range"))
                            })?;
                        }
                        "message" => diag.message = map.next_value()?,
                        "waived" => diag.waived = map.next_value()?,
                        "justification" => diag.justification = map.next_value()?,
                        other => {
                            return Err(de::Error::custom(format_args!(
                                "unknown diagnostic field {other:?}"
                            )))
                        }
                    }
                }
                Ok(diag)
            }
        }
        deserializer.deserialize_any(V)
    }
}

impl Serialize for AnalysisReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("AnalysisReport", 6)?;
        st.serialize_field("schema", &self.schema)?;
        st.serialize_field("files_scanned", &self.files_scanned)?;
        st.serialize_field("errors", &(self.error_count() as u64))?;
        st.serialize_field("warnings", &(self.warning_count() as u64))?;
        st.serialize_field("waived", &(self.waived_count() as u64))?;
        st.serialize_field("diagnostics", &self.diagnostics)?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for AnalysisReport {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = AnalysisReport;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("an analysis-report object")
            }
            fn visit_map<A: de::MapAccess<'de>>(
                self,
                mut map: A,
            ) -> Result<AnalysisReport, A::Error> {
                let mut report = AnalysisReport {
                    schema: AnalysisReport::SCHEMA,
                    files_scanned: 0,
                    diagnostics: Vec::new(),
                };
                while let Some(key) = map.next_key::<String>()? {
                    match key.as_str() {
                        "schema" => report.schema = map.next_value()?,
                        "files_scanned" => report.files_scanned = map.next_value()?,
                        // Derived counts are recomputed, not trusted.
                        "errors" | "warnings" | "waived" => {
                            let _: u64 = map.next_value()?;
                        }
                        "diagnostics" => report.diagnostics = map.next_value()?,
                        other => {
                            return Err(de::Error::custom(format_args!(
                                "unknown report field {other:?}"
                            )))
                        }
                    }
                }
                Ok(report)
            }
        }
        deserializer.deserialize_any(V)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_split_waived_from_live() {
        let mut waived = Diagnostic::new("determinism", Severity::Error, "a.rs", 3, "x".into());
        waived.waived = true;
        waived.justification = Some("why".into());
        let report = AnalysisReport {
            schema: AnalysisReport::SCHEMA,
            files_scanned: 2,
            diagnostics: vec![
                Diagnostic::new("hotpath-alloc", Severity::Error, "a.rs", 1, "x".into()),
                Diagnostic::new("truncating-cast", Severity::Warning, "a.rs", 2, "x".into()),
                waived,
            ],
        };
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.warning_count(), 1);
        assert_eq!(report.waived_count(), 1);
    }
}
