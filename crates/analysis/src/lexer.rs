//! A hand-rolled Rust lexer: just enough fidelity for structural rules.
//!
//! The token stream keeps identifiers (keywords included) and punctuation
//! with their line numbers, collapses every literal into an opaque
//! [`TokenKind::Literal`], and collects comments on the side (waivers live in
//! comments, see [`crate::waiver`]). String/char/raw-string bodies and
//! comment bodies are *consumed*, so braces or rule-trigger words inside them
//! can never confuse the item parser or a rule.

/// What a token is. Literal contents are deliberately discarded: no rule
/// cares what is inside a string, only that the span is not code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `Box`, `step_batch`, …).
    Ident(String),
    /// A single punctuation character (`::` arrives as two `:`).
    Punct(char),
    /// Any literal: string, raw string, byte string, char, number.
    Literal,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

/// One token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind (and text, for identifiers).
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(name) => Some(name),
            _ => None,
        }
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// A comment, kept verbatim (minus the delimiters) for waiver parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Text after `//`/`///`/`//!` or between `/*`/`*/`.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True when nothing but whitespace precedes the comment on its line —
    /// such a waiver comment covers the *next* code line, a trailing one
    /// covers its own line.
    pub own_line: bool,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `source` into tokens and comments. Never fails: unterminated
/// literals or comments simply run to end-of-file (the compiler, not the
/// analyzer, is the authority on well-formedness).
pub fn lex(source: &str) -> Lexed {
    Lexer {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        line_has_code: false,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    line_has_code: bool,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.line_has_code = false;
                    self.pos += 1;
                }
                b if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'\'' => self.quote(),
                b'"' => self.string_literal(),
                b'b' | b'r' | b'c' if self.is_literal_prefix() => self.prefixed_literal(),
                b if b.is_ascii_digit() => self.number(),
                b if b == b'_' || b.is_ascii_alphabetic() => self.ident(),
                other => {
                    self.push(TokenKind::Punct(other as char));
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind) {
        self.line_has_code = true;
        self.out.tokens.push(Token {
            kind,
            line: self.line,
        });
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        let own_line = !self.line_has_code;
        self.pos += 2;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.out.comments.push(Comment {
            text,
            line: start_line,
            own_line,
        });
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        let own_line = !self.line_has_code;
        self.pos += 2;
        let start = self.pos;
        let mut depth = 1usize;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\n' {
                self.line += 1;
            }
            if b == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if b == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos.min(self.bytes.len())])
            .into_owned();
        self.pos = (self.pos + 2).min(self.bytes.len());
        self.out.comments.push(Comment {
            text,
            line: start_line,
            own_line,
        });
    }

    /// `'` starts either a char literal or a lifetime. A lifetime is `'ident`
    /// *not* followed by a closing `'`; everything else (including `'\n'`)
    /// is a char literal.
    fn quote(&mut self) {
        let after = self.peek(1);
        let is_ident_start = matches!(after, Some(b) if b == b'_' || b.is_ascii_alphabetic());
        if is_ident_start {
            // Scan the identifier run; if it ends in `'` this was a char
            // literal like 'a'; otherwise a lifetime.
            let mut end = self.pos + 2;
            while matches!(self.bytes.get(end), Some(&b) if b == b'_' || b.is_ascii_alphanumeric())
            {
                end += 1;
            }
            if self.bytes.get(end) == Some(&b'\'') {
                self.push(TokenKind::Literal);
                self.pos = end + 1;
            } else {
                self.push(TokenKind::Lifetime);
                self.pos = end;
            }
            return;
        }
        // Char literal with an escape or punctuation payload: consume until
        // the closing quote, honouring `\'` and `\\`.
        self.pos += 1;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\\' => self.pos += 2,
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => break, // stray quote; don't swallow the file
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::Literal);
    }

    fn string_literal(&mut self) {
        self.pos += 1;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokenKind::Literal);
    }

    /// Whether the `b`/`r`/`c` at the cursor starts a literal (`b"`, `r"`,
    /// `r#"`, `br"`, `b'`, `c"` …) rather than an identifier.
    fn is_literal_prefix(&self) -> bool {
        let mut idx = self.pos;
        // Up to two prefix letters (`br`, `rb` is not legal but harmless).
        for _ in 0..2 {
            match self.bytes.get(idx) {
                Some(b'b' | b'r' | b'c') => idx += 1,
                _ => break,
            }
        }
        match self.bytes.get(idx) {
            Some(b'"') => true,
            Some(b'#') => {
                // Raw string guard hashes: r#"…"# / r##"…"##.
                let mut j = idx;
                while self.bytes.get(j) == Some(&b'#') {
                    j += 1;
                }
                self.bytes.get(j) == Some(&b'"')
                    // `r#ident` is a raw identifier, not a string.
                    && self.bytes[self.pos..idx].contains(&b'r')
            }
            Some(b'\'') => self.bytes[self.pos..idx] == [b'b'],
            _ => false,
        }
    }

    fn prefixed_literal(&mut self) {
        // Skip prefix letters.
        while matches!(self.bytes.get(self.pos), Some(b'b' | b'r' | b'c')) {
            self.pos += 1;
        }
        let mut hashes = 0usize;
        while self.bytes.get(self.pos) == Some(&b'#') {
            hashes += 1;
            self.pos += 1;
        }
        match self.bytes.get(self.pos) {
            Some(b'\'') => {
                // b'x' byte char.
                self.pos += 1;
                while let Some(&b) = self.bytes.get(self.pos) {
                    match b {
                        b'\\' => self.pos += 2,
                        b'\'' => {
                            self.pos += 1;
                            break;
                        }
                        _ => self.pos += 1,
                    }
                }
                self.push(TokenKind::Literal);
            }
            Some(b'"') if hashes == 0 => self.string_literal(),
            Some(b'"') => {
                // Raw string: ends at `"` followed by `hashes` hashes.
                self.pos += 1;
                while let Some(&b) = self.bytes.get(self.pos) {
                    if b == b'\n' {
                        self.line += 1;
                        self.pos += 1;
                        continue;
                    }
                    if b == b'"' {
                        let tail = &self.bytes[self.pos + 1..];
                        if tail.len() >= hashes && tail[..hashes].iter().all(|&h| h == b'#') {
                            self.pos += 1 + hashes;
                            break;
                        }
                    }
                    self.pos += 1;
                }
                self.push(TokenKind::Literal);
            }
            _ => {
                // `r#ident` raw identifier or a plain ident starting with the
                // prefix letters: back up and lex as identifier.
                self.ident();
            }
        }
    }

    fn number(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else if b == b'.'
                && matches!(self.bytes.get(self.pos + 1), Some(d) if d.is_ascii_digit())
            {
                // `1.5` continues the number; `1..n` leaves the dots alone.
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push(TokenKind::Literal);
    }

    fn ident(&mut self) {
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(&b) if b == b'_' || b.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(TokenKind::Ident(text));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let lexed = lex("let s = \"vec![Box::new(0)]\"; // HashMap::new()\n/* fn bad() { } */");
        assert!(!lexed.tokens.iter().any(|t| t.ident() == Some("Box")));
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].text.contains("HashMap"));
        assert!(!lexed.comments[0].own_line);
        assert!(lexed.comments[1].own_line);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'a'; let nl = '\\n'; }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let literals = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(literals, 2);
    }

    #[test]
    fn raw_strings_with_hashes_and_hash_free_code_after() {
        let lexed = lex(r##"let s = r#"unwrap() " quote"#; s.len()"##);
        assert!(lexed.tokens.iter().any(|t| t.ident() == Some("len")));
        assert!(!lexed.tokens.iter().any(|t| t.ident() == Some("unwrap")));
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let lexed = lex("for i in 0..n { }");
        let dots = lexed.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
        assert!(lexed.tokens.iter().any(|t| t.ident() == Some("n")));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let lexed = lex("/* outer /* inner */ still comment */ fn ok() {}");
        assert_eq!(idents("/* a /* b */ c */ fn f() {}"), vec!["fn", "f"]);
        assert!(lexed.tokens.iter().any(|t| t.ident() == Some("ok")));
    }

    #[test]
    fn line_numbers_track_multiline_strings() {
        let lexed = lex("let a = \"line\nline\";\nlet b = 1;");
        let b = lexed
            .tokens
            .iter()
            .find(|t| t.ident() == Some("b"))
            .expect("b is lexed");
        assert_eq!(b.line, 3);
    }
}
