//! `pktbuf-analyze`: a workspace-wide static invariant checker.
//!
//! The repository's core guarantees are enforced *dynamically* — a counting
//! allocator proves the slot loop allocation-free, differential suites pin
//! the chunked/per-slot/mono/dyn engines bit-identical, and the `LabRunner`
//! tests prove reports thread-count-invariant. Those tests catch erosion
//! only when a run happens to cross the eroded path. This crate makes the
//! same invariants **structural properties of the source**, checked on every
//! CI run before a benchmark executes (`pktbuf-lab analyze`).
//!
//! # Rule catalogue — and the dynamic test each rule backstops
//!
//! * **`hotpath-alloc`** (error) — allocating constructs (`Box::new`,
//!   `vec!`, `format!`, `.collect()`, `HashMap::new`, …) are forbidden in
//!   non-setup functions of the files listed under `[hotpath]` in
//!   `analysis.toml`. Backstops `tests/alloc_free_steady_state.rs`, which
//!   counts allocations over 20k measured slots: the counter only sees the
//!   paths the test drives, the rule sees every line.
//! * **`panic-freedom`** (error) — `.unwrap()` / `.expect()` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` are forbidden in the same
//!   hot functions, except inside `assert*!`/`debug_assert*!` arguments and
//!   test code. Backstops every differential suite (a panic mid-batch
//!   aborts the run instead of producing a comparable report).
//! * **`unchecked-indexing`** (warning) — counts `x[i]` sites per hot file.
//!   Advisory: the SoA arenas index by construction-checked invariants;
//!   the count makes growth visible in review. Backstops the
//!   `debug_assert!` in-bounds checks that release builds compile out.
//! * **`determinism`** (error) — `HashMap`/`HashSet`, `std::time`
//!   (`Instant`, `SystemTime`), and unseeded randomness (`thread_rng`,
//!   `from_entropy`) are forbidden in modules that feed
//!   `SimulationReport`/`FabricRunReport`/serde output (the `[determinism]`
//!   paths). Byte-identical reports must not depend on hash order or wall
//!   clocks. Backstops the thread-count-invariance tests in
//!   `crates/sim/tests/lab_acceptance.rs` and `tests/fabric_invariants.rs`.
//! * **`truncating-cast`** (warning) — `slot/ordinal/seq … as u32`-style
//!   narrowing in determinism scope. Backstops the proptest ordinal-range
//!   suites, which only reach the ordinals their generators draw.
//! * **`enum-sync`** (error) — configured enum pairs (e.g. every
//!   `DesignKind` variant must have a `fabric::PortBuffer` arm) stay
//!   variant-complete across crates, where rustc's exhaustiveness checks
//!   cannot reach. Backstops the fabric differential tests that would only
//!   fail once a run exercises the missing design.
//! * **`impl-sync`** (error) — every `impl PacketBuffer for …` must
//!   override the configured batch methods (`step_batch`, `advance_idle`):
//!   a new design silently inheriting the per-slot defaults is a 10×
//!   regression the bench gate would attribute to noise. Backstops
//!   `crates/sim/tests/chunked_equivalence.rs`.
//!
//! # Waivers
//!
//! A violation that is *correct by argument* is waived in source:
//!
//! ```text
//! self.pending.pop_front().expect("front checked above")
//!     // analyze: allow(panic-freedom) — pop follows a front() check in the same match
//! ```
//!
//! The justification is mandatory; a waiver that suppresses nothing is an
//! `unused-waiver` **error**, so waivers cannot outlive the code they
//! excuse. Waived findings stay in the JSON artifact with their
//! justification, so the waiver budget is reviewable.

#![forbid(unsafe_code)]

pub mod config;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod waiver;

use config::Config;
use report::{AnalysisReport, Diagnostic, Severity};
use std::path::{Path, PathBuf};

/// Loads `analysis.toml`.
///
/// # Errors
///
/// Returns a message when the file cannot be read or parsed.
pub fn load_config(path: &Path) -> Result<Config, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Config::from_toml(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Analyzes a workspace rooted at `root`: walks the configured directories
/// for `.rs` files and runs every rule.
///
/// # Errors
///
/// Returns a message when the tree cannot be walked or a file cannot be
/// read; rule findings are *diagnostics*, not errors.
pub fn analyze_workspace(root: &Path, config: &Config) -> Result<AnalysisReport, String> {
    let mut files = Vec::new();
    for dir in &config.roots {
        let base = root.join(dir);
        if base.is_dir() {
            collect_rs_files(&base, &mut files)?;
        }
    }
    files.sort();
    let mut sources = Vec::with_capacity(files.len());
    for path in &files {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, text));
    }
    Ok(analyze_sources(&sources, config))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `target/` holds build products; hidden dirs are not sources.
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Analyzes in-memory sources: `(workspace-relative path, content)` pairs.
/// This is the whole engine — `analyze_workspace` is a filesystem shim over
/// it, and the fixture tests feed it directly.
pub fn analyze_sources(sources: &[(String, String)], config: &Config) -> AnalysisReport {
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut parsed_files: Vec<(String, items::ParsedFile)> = Vec::new();
    let mut waiver_sets: Vec<(String, waiver::WaiverSet)> = Vec::new();

    for (path, text) in sources {
        let lexed = lexer::lex(text);
        let parsed = items::parse(&lexed.tokens);
        let waivers = waiver::collect(&lexed.comments, &lexed.tokens);
        for malformed in &waivers.malformed {
            diagnostics.push(Diagnostic::new(
                "malformed-waiver",
                Severity::Error,
                path,
                malformed.line,
                format!("malformed waiver comment: {}", malformed.problem),
            ));
        }
        let ctx = rules::FileContext {
            path,
            tokens: &lexed.tokens,
            parsed: &parsed,
        };
        if rules::is_hot_file(config, path) {
            rules::hotpath_alloc(&ctx, config, &mut diagnostics);
            rules::panic_freedom(&ctx, config, &mut diagnostics);
        }
        if rules::is_determinism_path(config, path) {
            rules::determinism(&ctx, config, &mut diagnostics);
        }
        parsed_files.push((path.clone(), parsed));
        waiver_sets.push((path.clone(), waivers));
    }

    // Configured hot files that are not in the scanned set: the config has
    // drifted (a rename silently un-hot-ing a file must be loud).
    for hot in &config.hot_files {
        if !sources.iter().any(|(path, _)| path == hot) {
            diagnostics.push(Diagnostic::new(
                "config-drift",
                Severity::Error,
                hot,
                1,
                "file is declared hot in analysis.toml but was not found in the \
                 scanned tree"
                    .to_owned(),
            ));
        }
    }

    rules::enum_sync(&parsed_files, config, &mut diagnostics);
    rules::impl_sync(&parsed_files, config, &mut diagnostics);

    // Waiver resolution: a diagnostic is waived by a same-file waiver that
    // covers its line and names its rule.
    let mut waiver_used: Vec<Vec<bool>> = waiver_sets
        .iter()
        .map(|(_, set)| vec![false; set.waivers.len()])
        .collect();
    for diag in &mut diagnostics {
        let Some(file_idx) = waiver_sets.iter().position(|(path, _)| *path == diag.file) else {
            continue;
        };
        let set = &waiver_sets[file_idx].1;
        for (w_idx, w) in set.waivers.iter().enumerate() {
            if w.covered_line == diag.line && w.rules.contains(&diag.rule) {
                diag.waived = true;
                diag.justification = Some(w.justification.clone());
                waiver_used[file_idx][w_idx] = true;
                break;
            }
        }
    }
    for (file_idx, (path, set)) in waiver_sets.iter().enumerate() {
        for (w_idx, w) in set.waivers.iter().enumerate() {
            if !waiver_used[file_idx][w_idx] {
                diagnostics.push(Diagnostic::new(
                    "unused-waiver",
                    Severity::Error,
                    path,
                    w.line,
                    format!(
                        "waiver for {} suppresses nothing — the code it excused is \
                         gone; delete the waiver",
                        w.rules.join(", "),
                    ),
                ));
            }
        }
    }

    diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(b.file.as_str(), b.line, b.rule.as_str()))
    });
    AnalysisReport {
        schema: AnalysisReport::SCHEMA,
        files_scanned: sources.len() as u64,
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use report::Diagnostic;

    #[test]
    fn end_to_end_waiver_and_unused_waiver() {
        let config = Config::from_toml(
            "[hotpath]\nfiles = [\"hot.rs\"]\n[determinism]\npaths = [\"det\"]\n",
        )
        .expect("config parses");
        let sources = vec![(
            "hot.rs".to_owned(),
            "fn step() {\n\
               let a = x.unwrap(); // analyze: allow(panic-freedom) — checked above\n\
               let b = y.unwrap();\n\
             }\n\
             // analyze: allow(hotpath-alloc) — nothing here allocates\n\
             fn idle() {}\n"
                .to_owned(),
        )];
        let report = analyze_sources(&sources, &config);
        let waived: Vec<&Diagnostic> = report.diagnostics.iter().filter(|d| d.waived).collect();
        assert_eq!(waived.len(), 1);
        assert_eq!(waived[0].line, 2);
        // The unwaived unwrap on line 3 plus the unused waiver on line 5.
        assert_eq!(report.error_count(), 2);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.rule == "unused-waiver" && d.line == 5));
    }
}
