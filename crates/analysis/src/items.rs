//! A lightweight item parser over the token stream.
//!
//! It recovers just the structure the rules need: function spans (with
//! names), `impl` blocks (trait + type + method names), `enum` definitions
//! (variant names), and which spans are test code (`#[cfg(test)]` items,
//! `#[test]` functions, `mod tests`). It is *not* a full grammar — bodies
//! are tracked by delimiter balancing, which the lexer makes safe by
//! swallowing literals and comments.

use crate::lexer::{Token, TokenKind};

/// A function item (free function, method, or trait default body).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Token-index range of the body, `start..end` (exclusive) — the tokens
    /// strictly between the body braces. Empty for bodiless trait methods.
    pub body: std::ops::Range<usize>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the function lives in test code.
    pub in_test: bool,
    /// Index into [`ParsedFile::impls`] when this is an `impl` method.
    pub impl_index: Option<usize>,
}

/// An `impl` block header.
#[derive(Debug, Clone)]
pub struct ImplItem {
    /// Trait name (last path segment) for `impl Trait for Type`, else `None`.
    pub trait_name: Option<String>,
    /// Implementing type name (last path segment before generics).
    pub type_name: String,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// Whether the impl lives in test code.
    pub in_test: bool,
    /// Names of the methods defined in this block.
    pub methods: Vec<String>,
}

/// An `enum` definition.
#[derive(Debug, Clone)]
pub struct EnumItem {
    /// The enum's name.
    pub name: String,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Whether the enum lives in test code.
    pub in_test: bool,
}

/// The structural view of one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every function with a recovered span.
    pub fns: Vec<FnItem>,
    /// Every `impl` block.
    pub impls: Vec<ImplItem>,
    /// Every `enum` definition.
    pub enums: Vec<EnumItem>,
}

/// Parses the token stream of one file.
pub fn parse(tokens: &[Token]) -> ParsedFile {
    let mut parsed = ParsedFile::default();
    let mut parser = Parser {
        tokens,
        out: &mut parsed,
    };
    let mut i = 0;
    parser.items(&mut i, false, None);
    parsed
}

struct Parser<'a> {
    tokens: &'a [Token],
    out: &'a mut ParsedFile,
}

impl Parser<'_> {
    /// Parses items until end-of-tokens or an unmatched `}` (the caller's
    /// closing brace). `in_test` marks the whole scope as test code;
    /// `impl_index` is set while inside an `impl` body.
    fn items(&mut self, i: &mut usize, in_test: bool, impl_index: Option<usize>) {
        // Test-ness granted by an attribute applies to the next item only.
        let mut pending_test = false;
        while *i < self.tokens.len() {
            let tok = &self.tokens[*i];
            match &tok.kind {
                TokenKind::Punct('}') => return, // caller consumes it
                TokenKind::Punct('#') => {
                    pending_test |= self.attribute(i);
                }
                TokenKind::Punct('{') => {
                    // A stray block at item level (e.g. inside a macro body).
                    *i += 1;
                    self.items(i, in_test || pending_test, impl_index);
                    self.expect_close(i);
                    pending_test = false;
                }
                TokenKind::Punct('(') | TokenKind::Punct('[') => {
                    self.balanced(i);
                }
                TokenKind::Ident(word) => match word.as_str() {
                    "fn" => {
                        self.function(i, in_test || pending_test, impl_index);
                        pending_test = false;
                    }
                    "mod" => {
                        self.module(i, in_test || pending_test, impl_index);
                        pending_test = false;
                    }
                    "impl" => {
                        self.impl_block(i, in_test || pending_test);
                        pending_test = false;
                    }
                    "enum" => {
                        self.enum_def(i, in_test || pending_test);
                        pending_test = false;
                    }
                    "trait" => {
                        self.skip_to_body_and_recurse(i, in_test || pending_test);
                        pending_test = false;
                    }
                    "struct" | "union" | "type" | "static" | "const" | "use" | "extern" => {
                        self.skip_item(i);
                        pending_test = false;
                    }
                    "macro_rules" => {
                        // macro_rules! name { … }
                        *i += 1; // macro_rules
                        while *i < self.tokens.len() && !self.open_delim(*i) {
                            *i += 1;
                        }
                        self.balanced(i);
                        pending_test = false;
                    }
                    _ => *i += 1, // pub, unsafe, async, idents in macros, …
                },
                _ => *i += 1,
            }
        }
    }

    fn open_delim(&self, idx: usize) -> bool {
        matches!(
            self.tokens.get(idx).map(|t| &t.kind),
            Some(TokenKind::Punct('{' | '(' | '['))
        )
    }

    /// Consumes a balanced delimiter group starting at an opener. Tolerant:
    /// at end-of-tokens it simply stops.
    fn balanced(&mut self, i: &mut usize) {
        let mut depth = 0usize;
        while *i < self.tokens.len() {
            match self.tokens[*i].kind {
                TokenKind::Punct('{' | '(' | '[') => depth += 1,
                TokenKind::Punct('}' | ')' | ']') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        *i += 1;
                        return;
                    }
                }
                _ => {}
            }
            *i += 1;
        }
    }

    fn expect_close(&self, i: &mut usize) {
        if matches!(
            self.tokens.get(*i).map(|t| &t.kind),
            Some(TokenKind::Punct('}'))
        ) {
            *i += 1;
        }
    }

    /// Consumes `#[…]` / `#![…]`; returns true when it marks test code
    /// (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`, …).
    fn attribute(&mut self, i: &mut usize) -> bool {
        *i += 1; // '#'
        if matches!(
            self.tokens.get(*i).map(|t| &t.kind),
            Some(TokenKind::Punct('!'))
        ) {
            *i += 1;
        }
        let start = *i;
        self.balanced(i); // the [...] group
        let body = &self.tokens[start..*i];
        let has = |name: &str| body.iter().any(|t| t.ident() == Some(name));
        // `#[test]` is exactly `[ test ]`; `#[cfg(test)]`-style attributes
        // count unless the `test` is negated (`#[cfg(not(test))]` is *non*-
        // test code and must stay in scope for the rules).
        let bare_test = body.len() == 3 && body[1].ident() == Some("test");
        bare_test || (has("cfg") && has("test") && !has("not"))
    }

    /// `fn name …` — records the item and consumes through the body.
    fn function(&mut self, i: &mut usize, in_test: bool, impl_index: Option<usize>) {
        let line = self.tokens[*i].line;
        *i += 1; // fn
        let name = match self.tokens.get(*i).and_then(|t| t.ident()) {
            Some(name) => name.to_owned(),
            None => return, // `fn` inside a macro pattern; skip the keyword
        };
        *i += 1;
        // Scan the signature for the body `{` or a bodiless `;`. Parens and
        // brackets in the signature are skipped as balanced groups so a
        // default argument or array type cannot fool the scan.
        while *i < self.tokens.len() {
            match self.tokens[*i].kind {
                TokenKind::Punct(';') => {
                    *i += 1;
                    self.record_fn(name, 0..0, line, in_test, impl_index);
                    return;
                }
                TokenKind::Punct('{') => break,
                TokenKind::Punct('(') | TokenKind::Punct('[') => self.balanced(i),
                _ => *i += 1,
            }
        }
        if *i >= self.tokens.len() {
            self.record_fn(name, 0..0, line, in_test, impl_index);
            return;
        }
        let body_start = *i + 1;
        self.balanced(i); // the body { … }
        let body_end = i.saturating_sub(1);
        self.record_fn(name, body_start..body_end, line, in_test, impl_index);
    }

    fn record_fn(
        &mut self,
        name: String,
        body: std::ops::Range<usize>,
        line: u32,
        in_test: bool,
        impl_index: Option<usize>,
    ) {
        if let Some(idx) = impl_index {
            self.out.impls[idx].methods.push(name.clone());
        }
        self.out.fns.push(FnItem {
            name,
            body,
            line,
            in_test,
            impl_index,
        });
    }

    fn module(&mut self, i: &mut usize, in_test: bool, impl_index: Option<usize>) {
        *i += 1; // mod
        let name = self.tokens.get(*i).and_then(|t| t.ident()).unwrap_or("");
        // `mod tests` without the cfg attribute is still, by convention,
        // test code in this workspace.
        let is_test = in_test || name == "tests";
        *i += 1;
        match self.tokens.get(*i).map(|t| &t.kind) {
            Some(TokenKind::Punct('{')) => {
                *i += 1;
                self.items(i, is_test, impl_index);
                self.expect_close(i);
            }
            Some(TokenKind::Punct(';')) => *i += 1,
            _ => {}
        }
    }

    /// `impl … {` — extracts trait/type names and recurses into the body.
    fn impl_block(&mut self, i: &mut usize, in_test: bool) {
        let line = self.tokens[*i].line;
        *i += 1; // impl
                 // Collect path idents, tracking angle-bracket depth so generic
                 // arguments don't pollute the trait/type names.
        let mut angle: i32 = 0;
        let mut before_for: Vec<String> = Vec::new();
        let mut after_for: Vec<String> = Vec::new();
        let mut saw_for = false;
        while *i < self.tokens.len() {
            match &self.tokens[*i].kind {
                TokenKind::Punct('{') => break,
                TokenKind::Punct('<') => {
                    angle += 1;
                    *i += 1;
                }
                TokenKind::Punct('>') => {
                    angle -= 1;
                    *i += 1;
                }
                TokenKind::Punct('(') | TokenKind::Punct('[') => self.balanced(i),
                TokenKind::Ident(word) if word == "for" && angle <= 0 => {
                    saw_for = true;
                    *i += 1;
                }
                TokenKind::Ident(word) if word == "where" && angle <= 0 => {
                    // The rest of the header is bounds; scan to the body.
                    while *i < self.tokens.len() && !self.tokens[*i].is_punct('{') {
                        if self.open_delim(*i) && !self.tokens[*i].is_punct('{') {
                            self.balanced(i);
                        } else {
                            *i += 1;
                        }
                    }
                    break;
                }
                TokenKind::Ident(word) if angle <= 0 => {
                    if saw_for {
                        after_for.push(word.clone());
                    } else {
                        before_for.push(word.clone());
                    }
                    *i += 1;
                }
                _ => *i += 1,
            }
        }
        let (trait_name, type_name) = if saw_for {
            (before_for.pop(), after_for.pop().unwrap_or_default())
        } else {
            (None, before_for.pop().unwrap_or_default())
        };
        let impl_index = self.out.impls.len();
        self.out.impls.push(ImplItem {
            trait_name,
            type_name,
            line,
            in_test,
            methods: Vec::new(),
        });
        if matches!(
            self.tokens.get(*i).map(|t| &t.kind),
            Some(TokenKind::Punct('{'))
        ) {
            *i += 1;
            self.items(i, in_test, Some(impl_index));
            self.expect_close(i);
        }
    }

    fn enum_def(&mut self, i: &mut usize, in_test: bool) {
        let line = self.tokens[*i].line;
        *i += 1; // enum
        let name = match self.tokens.get(*i).and_then(|t| t.ident()) {
            Some(name) => name.to_owned(),
            None => return,
        };
        *i += 1;
        // Skip generics/where to the body.
        while *i < self.tokens.len() && !self.tokens[*i].is_punct('{') {
            *i += 1;
        }
        if *i >= self.tokens.len() {
            return;
        }
        *i += 1; // '{'
        let mut variants = Vec::new();
        let mut expect_variant = true;
        while *i < self.tokens.len() {
            match &self.tokens[*i].kind {
                TokenKind::Punct('}') => {
                    *i += 1;
                    break;
                }
                TokenKind::Punct('#') => {
                    self.attribute(i);
                }
                TokenKind::Punct('{') | TokenKind::Punct('(') => {
                    self.balanced(i); // variant payload
                }
                TokenKind::Punct('=') => {
                    // Discriminant expression: skip to the separating comma.
                    while *i < self.tokens.len()
                        && !self.tokens[*i].is_punct(',')
                        && !self.tokens[*i].is_punct('}')
                    {
                        *i += 1;
                    }
                }
                TokenKind::Punct(',') => {
                    expect_variant = true;
                    *i += 1;
                }
                TokenKind::Ident(word) => {
                    if expect_variant {
                        variants.push(word.clone());
                        expect_variant = false;
                    }
                    *i += 1;
                }
                _ => *i += 1,
            }
        }
        self.out.enums.push(EnumItem {
            name,
            variants,
            line,
            in_test,
        });
    }

    /// `trait Name … { items }` — method declarations inside get recorded.
    fn skip_to_body_and_recurse(&mut self, i: &mut usize, in_test: bool) {
        *i += 1; // trait
        while *i < self.tokens.len() && !self.tokens[*i].is_punct('{') {
            match self.tokens[*i].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') => self.balanced(i),
                _ => *i += 1,
            }
        }
        if matches!(
            self.tokens.get(*i).map(|t| &t.kind),
            Some(TokenKind::Punct('{'))
        ) {
            *i += 1;
            self.items(i, in_test, None);
            self.expect_close(i);
        }
    }

    /// Items that end at `;` or at a balanced brace body (struct, const, …).
    fn skip_item(&mut self, i: &mut usize) {
        *i += 1; // keyword
        let mut depth = 0usize;
        while *i < self.tokens.len() {
            match self.tokens[*i].kind {
                TokenKind::Punct('{' | '(' | '[') => depth += 1,
                TokenKind::Punct(')' | ']') => depth = depth.saturating_sub(1),
                TokenKind::Punct('}') => {
                    if depth == 0 {
                        return; // parent scope's closing brace
                    }
                    depth -= 1;
                    if depth == 0 {
                        // `struct X { … }` ends at its brace body.
                        *i += 1;
                        return;
                    }
                }
                TokenKind::Punct(';') if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
            *i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src).tokens)
    }

    #[test]
    fn finds_functions_and_test_scopes() {
        let parsed = parse_src(
            "fn hot() { step(); }\n\
             #[cfg(test)]\nmod tests {\n  #[test]\n  fn check() { hot(); }\n}\n\
             fn also_hot() {}",
        );
        let names: Vec<(&str, bool)> = parsed
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.in_test))
            .collect();
        assert_eq!(
            names,
            vec![("hot", false), ("check", true), ("also_hot", false)]
        );
    }

    #[test]
    fn impl_blocks_capture_trait_type_and_methods() {
        let parsed = parse_src(
            "impl<T: Clone> PacketBuffer for MyBuf<T> where T: Send {\n\
               fn step(&mut self) {}\n\
               fn step_batch(&mut self) {}\n\
             }\n\
             impl MyBuf<u32> { fn helper(&self) {} }",
        );
        assert_eq!(parsed.impls.len(), 2);
        let tr = &parsed.impls[0];
        assert_eq!(tr.trait_name.as_deref(), Some("PacketBuffer"));
        assert_eq!(tr.type_name, "MyBuf");
        assert_eq!(tr.methods, vec!["step", "step_batch"]);
        let inherent = &parsed.impls[1];
        assert_eq!(inherent.trait_name, None);
        assert_eq!(inherent.methods, vec!["helper"]);
    }

    #[test]
    fn enums_capture_variants_with_payloads_and_discriminants() {
        let parsed = parse_src(
            "pub enum DesignKind { DramOnly, Rads, Cfds }\n\
             enum Mixed { A(u32), B { x: u64 }, C = 4, D }",
        );
        assert_eq!(parsed.enums[0].variants, vec!["DramOnly", "Rads", "Cfds"]);
        assert_eq!(parsed.enums[1].variants, vec!["A", "B", "C", "D"]);
    }

    #[test]
    fn fn_bodies_span_nested_blocks() {
        let parsed = parse_src("fn outer() { if x { y(); } match z { _ => {} } }\nfn next() {}");
        assert_eq!(parsed.fns.len(), 2);
        assert!(parsed.fns[0].body.len() > parsed.fns[1].body.len());
    }

    #[test]
    fn trait_decls_record_bodiless_methods() {
        let parsed = parse_src(
            "trait PacketBuffer {\n\
               fn step(&mut self);\n\
               fn advance_idle(&mut self, n: u64) { for _ in 0..n { self.step(); } }\n\
             }",
        );
        let names: Vec<&str> = parsed.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["step", "advance_idle"]);
        assert!(parsed.fns[0].body.is_empty());
        assert!(!parsed.fns[1].body.is_empty());
    }
}
