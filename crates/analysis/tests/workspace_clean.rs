//! The analyzer run CI gates on: the real workspace, the real config.
//!
//! Two properties are pinned:
//!
//! 1. The tree passes with zero unwaived errors and a bounded waiver budget —
//!    every waiver in the tree carries a justification that review accepted.
//! 2. The gate has teeth: poisoning a real hot file with an allocating
//!    construct (in memory — the tree is untouched) makes the same run fail.

use analysis::report::Severity;
use analysis::{analyze_workspace, load_config};
use std::path::Path;

/// Waivers currently in the tree, plus slack for a few more per PR. Raising
/// this is a review decision, not a mechanical edit.
const WAIVER_BUDGET: usize = 40;

fn workspace_root() -> &'static Path {
    // crates/analysis -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("analysis crate lives two levels under the workspace root")
}

#[test]
fn the_workspace_passes_with_justified_waivers_only() {
    let root = workspace_root();
    let config = load_config(&root.join("analysis.toml")).expect("analysis.toml loads");
    let report = analyze_workspace(root, &config).expect("workspace walks");

    let errors: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| !d.waived && d.severity == Severity::Error)
        .map(ToString::to_string)
        .collect();
    assert!(
        errors.is_empty(),
        "unwaived analyzer errors:\n{}",
        errors.join("\n")
    );
    assert!(
        report.waived_count() <= WAIVER_BUDGET,
        "waiver budget exceeded: {} > {WAIVER_BUDGET}",
        report.waived_count()
    );
    // Every waiver carries its justification into the artifact.
    for diag in report.diagnostics.iter().filter(|d| d.waived) {
        assert!(
            diag.justification.as_deref().is_some_and(|j| !j.is_empty()),
            "waived finding without justification: {diag}"
        );
    }
}

#[test]
fn poisoning_a_real_hot_file_fails_the_gate() {
    let root = workspace_root();
    let config = load_config(&root.join("analysis.toml")).expect("analysis.toml loads");

    // Re-read the hot files exactly as the walker would, then append an
    // allocating steady-state function to one of them.
    let poisoned_file = "crates/core/src/hotpath.rs";
    let mut sources: Vec<(String, String)> = config
        .hot_files
        .iter()
        .map(|rel| {
            let text = std::fs::read_to_string(root.join(rel)).expect("hot file reads");
            (rel.clone(), text)
        })
        .collect();
    // The enum-sync spec needs its source file present too.
    for spec in &config.enum_sync {
        if !sources.iter().any(|(p, _)| *p == spec.source_file) {
            let text = std::fs::read_to_string(root.join(&spec.source_file))
                .expect("enum-sync source reads");
            sources.push((spec.source_file.clone(), text));
        }
    }

    let baseline = analysis::analyze_sources(&sources, &config);
    assert_eq!(
        baseline.error_count(),
        0,
        "hot-file subset should be clean before poisoning"
    );

    let entry = sources
        .iter_mut()
        .find(|(p, _)| p == poisoned_file)
        .expect("poison target present");
    entry.1.push_str(
        "\nfn regressed_step(&mut self) { let scratch: Vec<u64> = Vec::new(); drop(scratch); }\n",
    );

    let poisoned = analysis::analyze_sources(&sources, &config);
    assert!(
        poisoned
            .diagnostics
            .iter()
            .any(|d| d.rule == "hotpath-alloc" && d.file == poisoned_file && !d.waived),
        "the reintroduced allocation must fail the gate"
    );
    assert!(poisoned.error_count() > baseline.error_count());
}
