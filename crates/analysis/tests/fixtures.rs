//! Fixture tests: every rule family must *fire* on a seeded violation.
//!
//! The unit tests in `src/` pin lexing and parsing; these tests pin the
//! user-visible contract — feed a small source tree to [`analysis::analyze_sources`]
//! with a fixture config and check which diagnostics come out, including the
//! full waiver lifecycle and the JSON artifact round-trip.

use analysis::analyze_sources;
use analysis::config::Config;
use analysis::report::{AnalysisReport, Severity};

fn config(toml: &str) -> Config {
    Config::from_toml(toml).expect("fixture config parses")
}

fn hot_config() -> Config {
    config("[hotpath]\nfiles = [\"hot.rs\"]\nsetup_functions = [\"new\", \"with_*\"]\n")
}

fn sources(entries: &[(&str, &str)]) -> Vec<(String, String)> {
    entries
        .iter()
        .map(|(p, t)| ((*p).to_owned(), (*t).to_owned()))
        .collect()
}

fn rules_fired(report: &AnalysisReport) -> Vec<(&str, u32, bool)> {
    report
        .diagnostics
        .iter()
        .map(|d| (d.rule.as_str(), d.line, d.waived))
        .collect()
}

// ---------------------------------------------------------------- hotpath-alloc

#[test]
fn hotpath_alloc_fires_on_every_allocating_construct_family() {
    let report = analyze_sources(
        &sources(&[(
            "hot.rs",
            "fn step(&mut self) {\n\
             let a = Vec::new();\n\
             let b = vec![0u8; 64];\n\
             let c = format!(\"{a:?}\");\n\
             let d = items.iter().collect::<Vec<_>>();\n\
             let e = Box::new(c);\n\
             let f = s.to_owned();\n\
             }\n",
        )]),
        &hot_config(),
    );
    // One finding per allocating line, all errors, none waived.
    let fired = rules_fired(&report);
    for line in 2..=7 {
        assert!(
            fired.contains(&("hotpath-alloc", line, false)),
            "line {line} should fire: {fired:?}"
        );
    }
    assert_eq!(report.error_count(), 6);
}

#[test]
fn hotpath_alloc_exempts_setup_functions_and_test_code() {
    let report = analyze_sources(
        &sources(&[(
            "hot.rs",
            "fn new() -> Self { Self { buf: Vec::new() } }\n\
             fn with_capacity(n: usize) -> Self { Self { buf: vec![0; n] } }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn grows() { let v = vec![1, 2, 3]; assert_eq!(v.len(), 3); }\n\
             }\n",
        )]),
        &hot_config(),
    );
    assert_eq!(report.error_count(), 0, "{:?}", report.diagnostics);
}

/// The acceptance demonstration from the issue: reverting a hot-path file to
/// an allocating construct must fail at `analyze`. `grow_window` mimics a
/// pre-PR-3 per-slot `collect()` sneaking back into a steady-state function.
#[test]
fn reintroducing_an_allocation_into_a_hot_function_fails() {
    let clean = "fn step(&mut self) { self.len += 1; }\n";
    let reverted = "fn step(&mut self) {\n\
                    let occupancies: Vec<usize> = self.queues.iter().map(Vec::len).collect();\n\
                    self.scan(&occupancies);\n\
                    }\n";
    let cfg = hot_config();
    assert_eq!(
        analyze_sources(&sources(&[("hot.rs", clean)]), &cfg).error_count(),
        0
    );
    let report = analyze_sources(&sources(&[("hot.rs", reverted)]), &cfg);
    assert_eq!(report.error_count(), 1);
    assert_eq!(report.diagnostics[0].rule, "hotpath-alloc");
    assert_eq!(report.diagnostics[0].line, 2);
}

// ---------------------------------------------------------------- panic-freedom

#[test]
fn panic_freedom_fires_on_unwrap_expect_and_panic_macros() {
    let report = analyze_sources(
        &sources(&[(
            "hot.rs",
            "fn step(&mut self) {\n\
             let a = x.unwrap();\n\
             let b = y.expect(\"y\");\n\
             panic!(\"boom\");\n\
             unreachable!();\n\
             }\n",
        )]),
        &hot_config(),
    );
    let fired = rules_fired(&report);
    for line in 2..=5 {
        assert!(
            fired.contains(&("panic-freedom", line, false)),
            "line {line} should fire: {fired:?}"
        );
    }
}

#[test]
fn panic_freedom_exempts_debug_assert_arguments_and_tests() {
    let report = analyze_sources(
        &sources(&[(
            "hot.rs",
            "fn step(&mut self) {\n\
             debug_assert!(self.map.get(&k).unwrap().alive, \"dead entry\");\n\
             assert_eq!(self.tail.last().unwrap().seq, seq);\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn probes() { probe().unwrap(); }\n\
             }\n",
        )]),
        &hot_config(),
    );
    assert_eq!(report.error_count(), 0, "{:?}", report.diagnostics);
}

// ---------------------------------------------------------------- determinism

#[test]
fn determinism_fires_on_hash_containers_clocks_and_unseeded_rngs() {
    let cfg = config("[determinism]\npaths = [\"det\"]\n");
    let report = analyze_sources(
        &sources(&[(
            "det/report.rs",
            "fn build(&mut self) {\n\
             let mut seen = HashMap::new();\n\
             let started = std::time::Instant::now();\n\
             let mut rng = thread_rng();\n\
             seen.insert(started, rng.gen::<u64>());\n\
             }\n",
        )]),
        &cfg,
    );
    let fired = rules_fired(&report);
    for line in 2..=4 {
        assert!(
            fired.contains(&("determinism", line, false)),
            "line {line} should fire: {fired:?}"
        );
    }
}

#[test]
fn truncating_cast_warns_on_narrowed_ordinal_arithmetic() {
    let cfg = config("[determinism]\npaths = [\"det\"]\nordinal_stems = [\"slot\", \"seq\"]\n");
    let report = analyze_sources(
        &sources(&[(
            "det/engine.rs",
            "fn label(&self) -> u32 {\n\
             let compact = self.current_slot as u32;\n\
             compact\n\
             }\n",
        )]),
        &cfg,
    );
    let warn = report
        .diagnostics
        .iter()
        .find(|d| d.rule == "truncating-cast")
        .expect("cast warning fires");
    assert_eq!(warn.severity, Severity::Warning);
    assert_eq!(warn.line, 2);
    // Warnings are advisory: they never gate.
    assert_eq!(report.error_count(), 0);
}

// ---------------------------------------------------------------- cross-file sync

const SYNC_TOML: &str = "[[enum_sync]]\n\
                         source_file = \"a.rs\"\n\
                         source_enum = \"DesignKind\"\n\
                         target_file = \"b.rs\"\n\
                         target_enum = \"PortBuffer\"\n";

#[test]
fn enum_sync_fires_when_a_variant_has_no_target_arm() {
    let cfg = config(SYNC_TOML);
    let complete = sources(&[
        ("a.rs", "pub enum DesignKind { DramOnly, Rads, Cfds }\n"),
        (
            "b.rs",
            "pub enum PortBuffer { DramOnly(A), Rads(B), Cfds(C) }\n",
        ),
    ]);
    assert_eq!(analyze_sources(&complete, &cfg).error_count(), 0);

    let drifted = sources(&[
        (
            "a.rs",
            "pub enum DesignKind { DramOnly, Rads, Cfds, Hsram }\n",
        ),
        (
            "b.rs",
            "pub enum PortBuffer { DramOnly(A), Rads(B), Cfds(C) }\n",
        ),
    ]);
    let report = analyze_sources(&drifted, &cfg);
    assert_eq!(report.error_count(), 1);
    let diag = &report.diagnostics[0];
    assert_eq!(diag.rule, "enum-sync");
    assert_eq!(diag.file, "b.rs");
    assert!(diag.message.contains("Hsram"), "{}", diag.message);
}

#[test]
fn impl_sync_fires_when_an_impl_misses_a_batch_override() {
    let cfg = config("[[impl_sync]]\ntrait = \"PacketBuffer\"\nmethods = [\"step_batch\"]\n");
    let complete = sources(&[(
        "buf.rs",
        "impl PacketBuffer for NewDesign {\n\
         fn step(&mut self) {}\n\
         fn step_batch(&mut self) {}\n\
         }\n",
    )]);
    assert_eq!(analyze_sources(&complete, &cfg).error_count(), 0);

    let drifted = sources(&[(
        "buf.rs",
        "impl PacketBuffer for NewDesign {\n\
         fn step(&mut self) {}\n\
         }\n",
    )]);
    let report = analyze_sources(&drifted, &cfg);
    assert_eq!(report.error_count(), 1);
    assert_eq!(report.diagnostics[0].rule, "impl-sync");
    assert!(
        report.diagnostics[0].message.contains("step_batch"),
        "{}",
        report.diagnostics[0].message
    );
}

// ---------------------------------------------------------------- config drift

#[test]
fn a_hot_file_missing_from_the_scanned_tree_is_config_drift() {
    let report = analyze_sources(&sources(&[("other.rs", "fn f() {}\n")]), &hot_config());
    assert_eq!(report.error_count(), 1);
    assert_eq!(report.diagnostics[0].rule, "config-drift");
    assert_eq!(report.diagnostics[0].file, "hot.rs");
}

// ---------------------------------------------------------------- waiver lifecycle

#[test]
fn a_justified_waiver_suppresses_and_survives_into_the_artifact() {
    let report = analyze_sources(
        &sources(&[(
            "hot.rs",
            "fn step(&mut self) {\n\
             let d = q.pop_front().expect(\"front checked\"); \
             // analyze: allow(panic-freedom) — pop follows a front() check\n\
             drop(d);\n\
             }\n",
        )]),
        &hot_config(),
    );
    assert_eq!(report.error_count(), 0);
    assert_eq!(report.waived_count(), 1);
    let waived = &report.diagnostics[0];
    assert!(waived.waived);
    assert_eq!(
        waived.justification.as_deref(),
        Some("pop follows a front() check")
    );
}

#[test]
fn an_own_line_waiver_covers_the_next_code_line() {
    let report = analyze_sources(
        &sources(&[(
            "hot.rs",
            "fn step(&mut self) {\n\
             // analyze: allow(hotpath-alloc) — scratch built once at run entry\n\
             let ring = vec![0u8; 64];\n\
             drop(ring);\n\
             }\n",
        )]),
        &hot_config(),
    );
    assert_eq!(report.error_count(), 0, "{:?}", report.diagnostics);
    assert_eq!(report.waived_count(), 1);
}

#[test]
fn a_stale_waiver_is_an_error_so_waivers_cannot_outlive_their_code() {
    let report = analyze_sources(
        &sources(&[(
            "hot.rs",
            "fn step(&mut self) {\n\
             // analyze: allow(panic-freedom) — the unwrap this excused is gone\n\
             let d = q.pop_front();\n\
             drop(d);\n\
             }\n",
        )]),
        &hot_config(),
    );
    assert_eq!(report.error_count(), 1);
    assert_eq!(report.diagnostics[0].rule, "unused-waiver");
    assert_eq!(report.diagnostics[0].line, 2);
}

#[test]
fn a_waiver_without_a_justification_is_malformed() {
    let report = analyze_sources(
        &sources(&[(
            "hot.rs",
            "fn step(&mut self) {\n\
             let a = x.unwrap(); // analyze: allow(panic-freedom)\n\
             }\n",
        )]),
        &hot_config(),
    );
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.rule == "malformed-waiver" && d.severity == Severity::Error));
}

#[test]
fn a_waiver_only_covers_the_rules_it_names() {
    // The waiver names hotpath-alloc, but the line holds a panic-freedom
    // violation: nothing is suppressed and the waiver itself goes stale.
    let report = analyze_sources(
        &sources(&[(
            "hot.rs",
            "fn step(&mut self) {\n\
             let a = x.unwrap(); // analyze: allow(hotpath-alloc) — wrong rule\n\
             }\n",
        )]),
        &hot_config(),
    );
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.rule == "panic-freedom" && !d.waived));
    assert!(report.diagnostics.iter().any(|d| d.rule == "unused-waiver"));
}

// ---------------------------------------------------------------- JSON artifact

#[test]
fn the_json_artifact_round_trips_through_the_vendored_serde_json() {
    let report = analyze_sources(
        &sources(&[(
            "hot.rs",
            "fn step(&mut self) {\n\
             let a = x.unwrap();\n\
             let b = q.pop().expect(\"q\"); // analyze: allow(panic-freedom) — guarded\n\
             }\n",
        )]),
        &hot_config(),
    );
    assert_eq!(report.error_count(), 1);
    assert_eq!(report.waived_count(), 1);
    let json = report.to_json();
    let restored = AnalysisReport::from_json(&json).expect("artifact parses back");
    assert_eq!(restored, report);
    // The derived counts are recomputed, not trusted, on the way back in.
    assert_eq!(restored.error_count(), 1);
    assert_eq!(restored.waived_count(), 1);
}
