//! Dimensioning parameters of the RADS and CFDS memory architectures.

use crate::error::ConfigError;
use crate::rate::LineRate;
use crate::time::Nanoseconds;
use serde::{de, Deserialize, Deserializer, Serialize, Serializer};

/// DRAM timing parameters relevant to the buffer design.
///
/// Only the *random access time* matters for worst-case dimensioning: it is the
/// spacing that RADS must leave between any two accesses, and the per-bank busy
/// time that CFDS must respect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramTiming {
    /// Random access (activate + read/write + precharge) time of one bank.
    pub random_access: Nanoseconds,
    /// Time needed to broadcast a new address / command on the bus. Limits how
    /// often a new bank access can be *initiated* even when banks are free.
    pub address_cycle: Nanoseconds,
}

impl DramTiming {
    /// The paper's assumed commodity DRAM: 48 ns random access time, with an
    /// address bus fast enough not to be the bottleneck at the studied rates.
    pub fn commodity_2003() -> Self {
        DramTiming {
            random_access: Nanoseconds::new(48.0),
            address_cycle: Nanoseconds::new(3.2),
        }
    }

    /// A conservative 102.4 ns device (= 32 slots at OC-3072, 8 slots at
    /// OC-768), matching the granularity values `B = 32` and `B = 8` that the
    /// paper uses for its two design points.
    pub fn paper_design_point() -> Self {
        DramTiming {
            random_access: Nanoseconds::new(102.4),
            address_cycle: Nanoseconds::new(3.2),
        }
    }

    /// RADS granularity `B` (slots per DRAM access) at `rate`.
    pub fn rads_granularity(&self, rate: LineRate) -> usize {
        let slot = rate.slot_duration().as_ns();
        (self.random_access.as_ns() / slot).ceil() as usize
    }

    /// Bank busy time expressed in slots at `rate`.
    pub fn busy_slots(&self, rate: LineRate) -> u64 {
        self.rads_granularity(rate) as u64
    }
}

impl Default for DramTiming {
    fn default() -> Self {
        DramTiming::paper_design_point()
    }
}

/// Derived sizing summary shared by RADS and CFDS front ends.
///
/// Produced by the sizing routines in the `mma` and `cfds` crates; collected
/// here so that the reporting/benchmark layer can treat both designs uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct BufferSizing {
    /// Head (and tail) SRAM capacity in cells.
    pub sram_cells: usize,
    /// Lookahead shift-register length in slots.
    pub lookahead_slots: usize,
    /// Additional latency-register length in slots (zero for RADS).
    pub latency_slots: usize,
    /// Requests-register entries (zero for RADS).
    pub rr_entries: usize,
}

impl BufferSizing {
    /// Total scheduler-visible delay in slots (lookahead plus reorder latency).
    pub fn total_delay_slots(&self) -> usize {
        self.lookahead_slots + self.latency_slots
    }
}

/// Configuration of the Random Access DRAM System (RADS) baseline (§3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadsConfig {
    /// Line rate of the interface this buffer serves.
    pub line_rate: LineRate,
    /// Number of VOQs `Q`.
    pub num_queues: usize,
    /// DRAM access granularity `B` in cells.
    pub granularity: usize,
    /// Lookahead length in slots. `None` selects the ECQF minimum
    /// `Q·(B − 1) + 1`.
    pub lookahead: Option<usize>,
    /// DRAM timing assumptions.
    pub dram: DramTiming,
}

impl RadsConfig {
    /// Builds the paper's design point for a line rate: `B` follows from the
    /// DRAM random access time (8 at OC-768, 32 at OC-3072 with the 102.4 ns
    /// device), lookahead defaults to the ECQF minimum.
    pub fn for_line_rate(line_rate: LineRate, num_queues: usize) -> Self {
        let dram = DramTiming::paper_design_point();
        RadsConfig {
            line_rate,
            num_queues,
            granularity: dram.rads_granularity(line_rate),
            lookahead: None,
            dram,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any parameter is zero or the lookahead is
    /// below the ECQF zero-miss minimum.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_queues == 0 {
            return Err(ConfigError::ZeroParameter("num_queues"));
        }
        if self.granularity == 0 {
            return Err(ConfigError::ZeroParameter("granularity"));
        }
        if let Some(l) = self.lookahead {
            let min = self.min_lookahead();
            if l < min {
                return Err(ConfigError::LookaheadTooShort {
                    requested: l,
                    minimum: min,
                });
            }
        }
        Ok(())
    }

    /// ECQF minimum lookahead `Q·(B − 1) + 1` (§3).
    pub fn min_lookahead(&self) -> usize {
        self.num_queues * (self.granularity - 1) + 1
    }

    /// Effective lookahead: the explicit value or the ECQF minimum.
    pub fn effective_lookahead(&self) -> usize {
        self.lookahead.unwrap_or_else(|| self.min_lookahead())
    }
}

/// Configuration of the Conflict-Free DRAM System (CFDS) — the paper's
/// contribution (§5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CfdsConfig {
    /// Line rate of the interface this buffer serves.
    pub line_rate: LineRate,
    /// Number of *logical* VOQs `Q`.
    pub num_queues: usize,
    /// Oversubscription factor `k`: number of physical queues is
    /// `k × num_queues` (§6). The DRAM scheduler manages reads and writes, so
    /// the effective number of queue streams seen by the DSS is `2 ×` this.
    pub physical_queue_factor: usize,
    /// CFDS per-access granularity `b` in cells (must divide `B`).
    pub granularity: usize,
    /// RADS granularity `B` in cells, i.e. the DRAM random access time in
    /// slots.
    pub rads_granularity: usize,
    /// Number of DRAM banks `M`.
    pub num_banks: usize,
    /// Lookahead length in slots. `None` selects the ECQF minimum computed with
    /// granularity `b`.
    pub lookahead: Option<usize>,
    /// DRAM timing assumptions.
    pub dram: DramTiming,
}

impl CfdsConfig {
    /// Starts a builder pre-loaded with the paper's OC-3072 defaults.
    pub fn builder() -> CfdsConfigBuilder {
        CfdsConfigBuilder::new()
    }

    /// Number of banks per group, `B/b`.
    pub fn banks_per_group(&self) -> usize {
        self.rads_granularity / self.granularity
    }

    /// Number of bank groups `G = M / (B/b)`.
    pub fn num_groups(&self) -> usize {
        self.num_banks / self.banks_per_group()
    }

    /// Number of physical queues (`k × Q`).
    pub fn num_physical_queues(&self) -> usize {
        self.physical_queue_factor * self.num_queues
    }

    /// Physical queues assigned to each group (ceiling).
    pub fn queues_per_group(&self) -> usize {
        let g = self.num_groups();
        self.num_physical_queues().div_ceil(g)
    }

    /// ECQF minimum lookahead computed with the CFDS granularity `b`.
    pub fn min_lookahead(&self) -> usize {
        self.num_queues * (self.granularity - 1) + 1
    }

    /// Effective lookahead: the explicit value or the ECQF minimum.
    pub fn effective_lookahead(&self) -> usize {
        self.lookahead.unwrap_or_else(|| self.min_lookahead())
    }

    /// Validates divisibility and positivity constraints.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when `b` does not divide `B`, `B/b` does not
    /// divide `M`, any parameter is zero, or the lookahead is below the
    /// zero-miss minimum.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (v, name) in [
            (self.num_queues, "num_queues"),
            (self.physical_queue_factor, "physical_queue_factor"),
            (self.granularity, "granularity"),
            (self.rads_granularity, "rads_granularity"),
            (self.num_banks, "num_banks"),
        ] {
            if v == 0 {
                return Err(ConfigError::ZeroParameter(name));
            }
        }
        if !self.rads_granularity.is_multiple_of(self.granularity) {
            return Err(ConfigError::GranularityNotDivisor {
                b: self.granularity,
                big_b: self.rads_granularity,
            });
        }
        let bpg = self.banks_per_group();
        if !self.num_banks.is_multiple_of(bpg) {
            return Err(ConfigError::BanksNotDivisible {
                banks: self.num_banks,
                banks_per_group: bpg,
            });
        }
        if let Some(l) = self.lookahead {
            let min = self.min_lookahead();
            if l < min {
                return Err(ConfigError::LookaheadTooShort {
                    requested: l,
                    minimum: min,
                });
            }
        }
        Ok(())
    }

    /// The RADS configuration this CFDS instance is refining (same `Q`, same
    /// DRAM, granularity `B`). Useful for side-by-side comparisons.
    pub fn equivalent_rads(&self) -> RadsConfig {
        RadsConfig {
            line_rate: self.line_rate,
            num_queues: self.num_queues,
            granularity: self.rads_granularity,
            lookahead: None,
            dram: self.dram,
        }
    }
}

/// Optional knobs a declarative experiment spec can turn without rebuilding a
/// whole configuration — the hook the `sim` spec layer applies on top of the
/// parameters it sweeps explicitly.
///
/// Every field is `None` by default, meaning "keep the configuration's own
/// value". `dram_capacity_cells` is a *buffer-level* limit (it bounds the DRAM
/// store rather than the dimensioning maths), so [`ConfigOverrides::apply_rads`]
/// and [`ConfigOverrides::apply_cfds`] ignore it; the buffer construction site
/// is expected to honour it where the design supports a capacity limit.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ConfigOverrides {
    /// Explicit lookahead length in slots (default: the ECQF minimum).
    pub lookahead: Option<usize>,
    /// CFDS physical-queue oversubscription factor `k` (§6).
    pub physical_queue_factor: Option<usize>,
    /// DRAM random access time in nanoseconds.
    pub dram_random_access_ns: Option<f64>,
    /// DRAM address/command cycle time in nanoseconds.
    pub dram_address_cycle_ns: Option<f64>,
    /// Total DRAM capacity in cells (buffer-level; CFDS only today).
    pub dram_capacity_cells: Option<u64>,
}

impl ConfigOverrides {
    /// Overrides nothing.
    pub fn none() -> Self {
        ConfigOverrides::default()
    }

    /// Whether every knob is left at "keep the configuration's value".
    pub fn is_none(&self) -> bool {
        *self == ConfigOverrides::default()
    }

    /// `base` with any overridden DRAM timing parameters substituted.
    pub fn dram_timing(&self, base: DramTiming) -> DramTiming {
        DramTiming {
            random_access: self
                .dram_random_access_ns
                .map_or(base.random_access, Nanoseconds::new),
            address_cycle: self
                .dram_address_cycle_ns
                .map_or(base.address_cycle, Nanoseconds::new),
        }
    }

    /// Applies the relevant knobs to a RADS configuration.
    ///
    /// The result is *not* revalidated here — callers that accept untrusted
    /// specs should run [`RadsConfig::validate`] afterwards.
    pub fn apply_rads(&self, mut cfg: RadsConfig) -> RadsConfig {
        if let Some(l) = self.lookahead {
            cfg.lookahead = Some(l);
        }
        cfg.dram = self.dram_timing(cfg.dram);
        cfg
    }

    /// Applies the relevant knobs to a CFDS configuration builder (so that the
    /// result is revalidated by [`CfdsConfigBuilder::build`]).
    pub fn apply_cfds(&self, mut builder: CfdsConfigBuilder) -> CfdsConfigBuilder {
        if let Some(l) = self.lookahead {
            builder = builder.lookahead(l);
        }
        if let Some(k) = self.physical_queue_factor {
            builder = builder.physical_queue_factor(k);
        }
        let base = builder.dram;
        builder.dram(self.dram_timing(base))
    }
}

// Hand-written serde: an overrides object serialises only the knobs that are
// set, and rejects unknown keys when read back (typos in spec files should
// fail loudly, not silently override nothing).
impl Serialize for ConfigOverrides {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let len = usize::from(self.lookahead.is_some())
            + usize::from(self.physical_queue_factor.is_some())
            + usize::from(self.dram_random_access_ns.is_some())
            + usize::from(self.dram_address_cycle_ns.is_some())
            + usize::from(self.dram_capacity_cells.is_some());
        let mut st = serializer.serialize_struct("ConfigOverrides", len)?;
        if let Some(v) = self.lookahead {
            st.serialize_field("lookahead", &v)?;
        }
        if let Some(v) = self.physical_queue_factor {
            st.serialize_field("physical_queue_factor", &v)?;
        }
        if let Some(v) = self.dram_random_access_ns {
            st.serialize_field("dram_random_access_ns", &v)?;
        }
        if let Some(v) = self.dram_address_cycle_ns {
            st.serialize_field("dram_address_cycle_ns", &v)?;
        }
        if let Some(v) = self.dram_capacity_cells {
            st.serialize_field("dram_capacity_cells", &v)?;
        }
        st.end()
    }
}

impl<'de> Deserialize<'de> for ConfigOverrides {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = ConfigOverrides;
            fn expecting(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                f.write_str("a configuration-overrides object")
            }
            fn visit_unit<E: de::Error>(self) -> Result<Self::Value, E> {
                Ok(ConfigOverrides::none())
            }
            fn visit_map<A: de::MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = ConfigOverrides::none();
                while let Some(key) = map.next_key::<String>()? {
                    match key.as_str() {
                        "lookahead" => out.lookahead = Some(map.next_value()?),
                        "physical_queue_factor" => {
                            out.physical_queue_factor = Some(map.next_value()?);
                        }
                        "dram_random_access_ns" => {
                            out.dram_random_access_ns = Some(map.next_value()?);
                        }
                        "dram_address_cycle_ns" => {
                            out.dram_address_cycle_ns = Some(map.next_value()?);
                        }
                        "dram_capacity_cells" => out.dram_capacity_cells = Some(map.next_value()?),
                        other => {
                            return Err(de::Error::custom(format_args!(
                                "unknown override {other:?} (expected lookahead, \
                                 physical_queue_factor, dram_random_access_ns, \
                                 dram_address_cycle_ns or dram_capacity_cells)"
                            )))
                        }
                    }
                }
                Ok(out)
            }
        }
        deserializer.deserialize_any(V)
    }
}

/// Builder for [`CfdsConfig`].
///
/// Defaults correspond to the paper's OC-3072 evaluation: `Q = 512`,
/// `B = 32`, `b = 4`, `M = 256`, one physical queue per logical queue and the
/// ECQF minimum lookahead.
#[derive(Debug, Clone)]
pub struct CfdsConfigBuilder {
    line_rate: LineRate,
    num_queues: usize,
    physical_queue_factor: usize,
    granularity: usize,
    rads_granularity: Option<usize>,
    num_banks: usize,
    lookahead: Option<usize>,
    dram: DramTiming,
}

impl Default for CfdsConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CfdsConfigBuilder {
    /// Creates a builder with the paper's OC-3072 defaults.
    pub fn new() -> Self {
        CfdsConfigBuilder {
            line_rate: LineRate::Oc3072,
            num_queues: 512,
            physical_queue_factor: 1,
            granularity: 4,
            rads_granularity: None,
            num_banks: 256,
            lookahead: None,
            dram: DramTiming::paper_design_point(),
        }
    }

    /// Sets the line rate.
    pub fn line_rate(mut self, rate: LineRate) -> Self {
        self.line_rate = rate;
        self
    }

    /// Sets the number of logical VOQs `Q`.
    pub fn num_queues(mut self, q: usize) -> Self {
        self.num_queues = q;
        self
    }

    /// Sets the physical-queue oversubscription factor `k`.
    pub fn physical_queue_factor(mut self, k: usize) -> Self {
        self.physical_queue_factor = k;
        self
    }

    /// Sets the CFDS granularity `b` (cells per DRAM access).
    pub fn granularity(mut self, b: usize) -> Self {
        self.granularity = b;
        self
    }

    /// Overrides the RADS granularity `B`. By default it is derived from the
    /// DRAM random access time and the line rate.
    pub fn rads_granularity(mut self, big_b: usize) -> Self {
        self.rads_granularity = Some(big_b);
        self
    }

    /// Sets the number of DRAM banks `M`.
    pub fn num_banks(mut self, m: usize) -> Self {
        self.num_banks = m;
        self
    }

    /// Sets an explicit lookahead length (slots).
    pub fn lookahead(mut self, slots: usize) -> Self {
        self.lookahead = Some(slots);
        self
    }

    /// Sets the DRAM timing assumptions.
    pub fn dram(mut self, dram: DramTiming) -> Self {
        self.dram = dram;
        self
    }

    /// Finalises and validates the configuration.
    ///
    /// # Errors
    ///
    /// Propagates any [`ConfigError`] from [`CfdsConfig::validate`].
    pub fn build(self) -> Result<CfdsConfig, ConfigError> {
        let rads_granularity = self
            .rads_granularity
            .unwrap_or_else(|| self.dram.rads_granularity(self.line_rate));
        let cfg = CfdsConfig {
            line_rate: self.line_rate,
            num_queues: self.num_queues,
            physical_queue_factor: self.physical_queue_factor,
            granularity: self.granularity,
            rads_granularity,
            num_banks: self.num_banks,
            lookahead: self.lookahead,
            dram: self.dram,
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_timing_granularities() {
        let d = DramTiming::paper_design_point();
        assert_eq!(d.rads_granularity(LineRate::Oc3072), 32);
        assert_eq!(d.rads_granularity(LineRate::Oc768), 8);
        assert_eq!(d.busy_slots(LineRate::Oc3072), 32);
        let c = DramTiming::commodity_2003();
        assert_eq!(c.rads_granularity(LineRate::Oc3072), 15);
        assert_eq!(DramTiming::default(), DramTiming::paper_design_point());
    }

    #[test]
    fn rads_min_lookahead_formula() {
        let cfg = RadsConfig::for_line_rate(LineRate::Oc3072, 512);
        assert_eq!(cfg.granularity, 32);
        assert_eq!(cfg.min_lookahead(), 512 * 31 + 1);
        assert_eq!(cfg.effective_lookahead(), 512 * 31 + 1);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn rads_rejects_short_lookahead() {
        let mut cfg = RadsConfig::for_line_rate(LineRate::Oc768, 128);
        cfg.lookahead = Some(10);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::LookaheadTooShort { .. })
        ));
        cfg.lookahead = Some(cfg.min_lookahead());
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn rads_rejects_zero_parameters() {
        let mut cfg = RadsConfig::for_line_rate(LineRate::Oc768, 128);
        cfg.num_queues = 0;
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::ZeroParameter("num_queues"))
        );
        let mut cfg = RadsConfig::for_line_rate(LineRate::Oc768, 128);
        cfg.granularity = 0;
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::ZeroParameter("granularity"))
        );
    }

    #[test]
    fn cfds_builder_defaults_match_paper() {
        let cfg = CfdsConfig::builder().build().unwrap();
        assert_eq!(cfg.num_queues, 512);
        assert_eq!(cfg.rads_granularity, 32);
        assert_eq!(cfg.granularity, 4);
        assert_eq!(cfg.num_banks, 256);
        assert_eq!(cfg.banks_per_group(), 8);
        assert_eq!(cfg.num_groups(), 32);
        assert_eq!(cfg.queues_per_group(), 16);
        assert_eq!(cfg.min_lookahead(), 512 * 3 + 1);
    }

    #[test]
    fn cfds_divisibility_checks() {
        let err = CfdsConfig::builder().granularity(5).build().unwrap_err();
        assert!(matches!(err, ConfigError::GranularityNotDivisor { .. }));

        let err = CfdsConfig::builder()
            .granularity(4)
            .num_banks(100)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::BanksNotDivisible { .. }));
    }

    #[test]
    fn cfds_allows_fewer_queues_than_groups() {
        // B/b = 2, G = 128 groups but only 4 physical queues: some groups are
        // simply unused, which is legal (and what the degenerate b = B RADS
        // configuration looks like).
        let cfg = CfdsConfig::builder()
            .num_queues(4)
            .granularity(16)
            .num_banks(256)
            .build()
            .unwrap();
        assert_eq!(cfg.num_groups(), 128);
        assert_eq!(cfg.queues_per_group(), 1);
    }

    #[test]
    fn cfds_lookahead_validation() {
        let err = CfdsConfig::builder().lookahead(3).build().unwrap_err();
        assert!(matches!(err, ConfigError::LookaheadTooShort { .. }));
        let ok = CfdsConfig::builder().lookahead(2000).build().unwrap();
        assert_eq!(ok.effective_lookahead(), 2000);
    }

    #[test]
    fn cfds_equivalent_rads_shares_parameters() {
        let cfds = CfdsConfig::builder().build().unwrap();
        let rads = cfds.equivalent_rads();
        assert_eq!(rads.num_queues, cfds.num_queues);
        assert_eq!(rads.granularity, cfds.rads_granularity);
        assert_eq!(rads.line_rate, cfds.line_rate);
    }

    #[test]
    fn cfds_oversubscription() {
        let cfg = CfdsConfig::builder()
            .physical_queue_factor(2)
            .build()
            .unwrap();
        assert_eq!(cfg.num_physical_queues(), 1024);
        assert_eq!(cfg.queues_per_group(), 32);
    }

    #[test]
    fn buffer_sizing_total_delay() {
        let s = BufferSizing {
            sram_cells: 100,
            lookahead_slots: 50,
            latency_slots: 20,
            rr_entries: 8,
        };
        assert_eq!(s.total_delay_slots(), 70);
        assert_eq!(BufferSizing::default().total_delay_slots(), 0);
    }

    #[test]
    fn overrides_default_to_keeping_everything() {
        let ov = ConfigOverrides::none();
        assert!(ov.is_none());
        let rads = RadsConfig::for_line_rate(LineRate::Oc3072, 512);
        assert_eq!(ov.apply_rads(rads), rads);
        let cfds = ov.apply_cfds(CfdsConfig::builder()).build().unwrap();
        assert_eq!(cfds, CfdsConfig::builder().build().unwrap());
    }

    #[test]
    fn overrides_apply_each_knob() {
        let ov = ConfigOverrides {
            lookahead: Some(20_000),
            physical_queue_factor: Some(2),
            dram_random_access_ns: Some(48.0),
            dram_address_cycle_ns: Some(1.6),
            dram_capacity_cells: Some(4_096),
        };
        assert!(!ov.is_none());
        let rads = ov.apply_rads(RadsConfig::for_line_rate(LineRate::Oc3072, 512));
        assert_eq!(rads.lookahead, Some(20_000));
        assert_eq!(rads.dram.random_access, Nanoseconds::new(48.0));
        assert_eq!(rads.dram.address_cycle, Nanoseconds::new(1.6));
        // The 48 ns override changes the derived `B` (ceil(48/3.2) = 15), so
        // pin `B = 32` explicitly to keep the divisibility constraints happy.
        let cfds = ov
            .apply_cfds(CfdsConfig::builder().rads_granularity(32))
            .build()
            .unwrap();
        assert_eq!(cfds.lookahead, Some(20_000));
        assert_eq!(cfds.physical_queue_factor, 2);
        assert_eq!(cfds.dram.random_access, Nanoseconds::new(48.0));
    }

    #[test]
    fn zero_parameter_detection_in_cfds() {
        let mut cfg = CfdsConfig::builder().build().unwrap();
        cfg.num_banks = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroParameter("num_banks")));
        let mut cfg = CfdsConfig::builder().build().unwrap();
        cfg.physical_queue_factor = 0;
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::ZeroParameter("physical_queue_factor"))
        );
    }
}
