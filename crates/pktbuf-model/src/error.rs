//! Error types for configuration and model-level invariant violations.

use std::error::Error;
use std::fmt;

/// Error raised while validating a buffer configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A parameter that must be strictly positive was zero.
    ZeroParameter(&'static str),
    /// The CFDS granularity `b` does not divide the RADS granularity `B`.
    GranularityNotDivisor {
        /// CFDS per-access granularity `b` (cells).
        b: usize,
        /// RADS granularity `B` (cells).
        big_b: usize,
    },
    /// The number of banks per group (`B/b`) does not divide the number of
    /// banks `M`.
    BanksNotDivisible {
        /// Total number of DRAM banks `M`.
        banks: usize,
        /// Banks required per group (`B/b`).
        banks_per_group: usize,
    },
    /// Lookahead shorter than the minimum required by the MMA for zero miss.
    LookaheadTooShort {
        /// Requested lookahead (slots).
        requested: usize,
        /// Minimum lookahead (slots).
        minimum: usize,
    },
    /// Any other parameter inconsistency.
    Invalid(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroParameter(name) => {
                write!(f, "parameter `{name}` must be strictly positive")
            }
            ConfigError::GranularityNotDivisor { b, big_b } => write!(
                f,
                "CFDS granularity b={b} must evenly divide RADS granularity B={big_b}"
            ),
            ConfigError::BanksNotDivisible {
                banks,
                banks_per_group,
            } => write!(
                f,
                "number of banks M={banks} must be a multiple of banks per group B/b={banks_per_group}"
            ),
            ConfigError::LookaheadTooShort { requested, minimum } => write!(
                f,
                "lookahead of {requested} slots is below the zero-miss minimum of {minimum} slots"
            ),
            ConfigError::Invalid(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl Error for ConfigError {}

/// Errors raised by model-level helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A queue index was out of the configured range.
    QueueOutOfRange {
        /// Offending index.
        index: u32,
        /// Number of configured queues.
        num_queues: usize,
    },
    /// Wrapped configuration error.
    Config(ConfigError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::QueueOutOfRange { index, num_queues } => {
                write!(f, "queue index {index} out of range (Q = {num_queues})")
            }
            ModelError::Config(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for ModelError {
    fn from(e: ConfigError) -> Self {
        ModelError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ConfigError::GranularityNotDivisor { b: 3, big_b: 32 };
        assert!(e.to_string().contains("b=3"));
        assert!(e.to_string().contains("B=32"));

        let e = ConfigError::LookaheadTooShort {
            requested: 10,
            minimum: 100,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("100"));

        let e = ConfigError::ZeroParameter("num_queues");
        assert!(e.to_string().contains("num_queues"));
    }

    #[test]
    fn model_error_wraps_config_error() {
        let inner = ConfigError::Invalid("oops".into());
        let e: ModelError = inner.clone().into();
        assert_eq!(e, ModelError::Config(inner));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("oops"));
    }

    #[test]
    fn queue_out_of_range_message() {
        let e = ModelError::QueueOutOfRange {
            index: 99,
            num_queues: 64,
        };
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains("64"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
