//! The fixed-size cell: the unit of storage and transfer inside the buffer.

use crate::queue::LogicalQueueId;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of bytes in a cell.
///
/// The paper fragments IP packets internally into fixed-length 64-byte units
/// (§2, "Basic time-slot"). All bandwidth and timing computations in the
/// workspace derive from this constant.
pub const CELL_BYTES: usize = 64;

/// Optional payload carried by a [`Cell`].
///
/// Simulation experiments usually do not care about the actual bytes, so the
/// payload is optional and cheap to clone ([`Bytes`] is reference counted).
/// When present it must be exactly [`CELL_BYTES`] long; shorter payloads are
/// zero-padded by [`CellPayload::from_slice`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct CellPayload(Option<Bytes>);

impl CellPayload {
    /// An empty payload (metadata-only simulation).
    pub fn empty() -> Self {
        CellPayload(None)
    }

    /// Builds a payload from a byte slice, zero-padding or truncating to
    /// [`CELL_BYTES`].
    pub fn from_slice(data: &[u8]) -> Self {
        let mut buf = vec![0u8; CELL_BYTES];
        let n = data.len().min(CELL_BYTES);
        buf[..n].copy_from_slice(&data[..n]);
        CellPayload(Some(Bytes::from(buf)))
    }

    /// Returns the payload bytes, if any.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        self.0.as_deref()
    }

    /// Whether the payload carries actual bytes.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }
}

/// A fixed-size cell travelling through the packet buffer.
///
/// Cells are handled as independent units: they are written to the tail SRAM,
/// batched into DRAM, read back into the head SRAM and finally granted to the
/// switch-fabric arbiter. The `(queue, seq)` pair is the identity used by the
/// verification layer to check FIFO order and zero-miss delivery.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cell {
    /// Logical VOQ this cell belongs to.
    queue: LogicalQueueId,
    /// Per-queue arrival sequence number (0, 1, 2, …).
    seq: u64,
    /// Slot at which the cell arrived at the line interface.
    arrival_slot: u64,
    /// Optional payload bytes.
    payload: CellPayload,
}

impl Cell {
    /// Creates a new metadata-only cell.
    pub fn new(queue: LogicalQueueId, seq: u64, arrival_slot: u64) -> Self {
        Cell {
            queue,
            seq,
            arrival_slot,
            payload: CellPayload::empty(),
        }
    }

    /// Creates a cell carrying payload bytes.
    pub fn with_payload(
        queue: LogicalQueueId,
        seq: u64,
        arrival_slot: u64,
        payload: CellPayload,
    ) -> Self {
        Cell {
            queue,
            seq,
            arrival_slot,
            payload,
        }
    }

    /// Logical VOQ of the cell.
    pub fn queue(&self) -> LogicalQueueId {
        self.queue
    }

    /// Per-queue FIFO sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Arrival slot at the line interface.
    pub fn arrival_slot(&self) -> u64 {
        self.arrival_slot
    }

    /// Payload accessor.
    pub fn payload(&self) -> &CellPayload {
        &self.payload
    }

    /// Decomposes the cell into `(queue, seq, arrival_slot, payload)`.
    ///
    /// Structure-of-arrays stores (e.g. the tail-SRAM arena in `pktbuf`) use
    /// this to scatter a cell into parallel columns without cloning the
    /// payload.
    pub fn into_parts(self) -> (LogicalQueueId, u64, u64, CellPayload) {
        (self.queue, self.seq, self.arrival_slot, self.payload)
    }

    /// Size of the cell on the wire, in bits.
    pub fn size_bits() -> u64 {
        (CELL_BYTES as u64) * 8
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell(q={}, seq={})", self.queue.index(), self.seq)
    }
}

impl Serialize for Cell {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut s = serializer.serialize_struct("Cell", 3)?;
        s.serialize_field("queue", &self.queue)?;
        s.serialize_field("seq", &self.seq)?;
        s.serialize_field("arrival_slot", &self.arrival_slot)?;
        s.end()
    }
}

impl<'de> Deserialize<'de> for Cell {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        #[derive(Deserialize)]
        struct Raw {
            queue: LogicalQueueId,
            seq: u64,
            arrival_slot: u64,
        }
        let raw = Raw::deserialize(deserializer)?;
        Ok(Cell::new(raw.queue, raw.seq, raw.arrival_slot))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_bytes_is_64() {
        assert_eq!(CELL_BYTES, 64);
        assert_eq!(Cell::size_bits(), 512);
    }

    #[test]
    fn payload_pads_and_truncates() {
        let short = CellPayload::from_slice(&[1, 2, 3]);
        assert_eq!(short.as_bytes().unwrap().len(), CELL_BYTES);
        assert_eq!(&short.as_bytes().unwrap()[..3], &[1, 2, 3]);
        assert_eq!(short.as_bytes().unwrap()[3], 0);

        let long = CellPayload::from_slice(&[7u8; 200]);
        assert_eq!(long.as_bytes().unwrap().len(), CELL_BYTES);
        assert!(long.as_bytes().unwrap().iter().all(|&b| b == 7));
    }

    #[test]
    fn empty_payload_is_empty() {
        assert!(CellPayload::empty().is_empty());
        assert!(CellPayload::empty().as_bytes().is_none());
        assert!(CellPayload::default().is_empty());
    }

    #[test]
    fn cell_accessors() {
        let q = LogicalQueueId::new(5);
        let c = Cell::new(q, 42, 100);
        assert_eq!(c.queue(), q);
        assert_eq!(c.seq(), 42);
        assert_eq!(c.arrival_slot(), 100);
        assert!(c.payload().is_empty());
        assert_eq!(format!("{c}"), "cell(q=5, seq=42)");
    }

    #[test]
    fn cell_with_payload_round_trips() {
        let q = LogicalQueueId::new(1);
        let p = CellPayload::from_slice(b"hello");
        let c = Cell::with_payload(q, 0, 0, p.clone());
        assert_eq!(c.payload(), &p);
    }

    #[test]
    fn cell_equality_ignores_nothing() {
        let q = LogicalQueueId::new(2);
        assert_eq!(Cell::new(q, 1, 3), Cell::new(q, 1, 3));
        assert_ne!(Cell::new(q, 1, 3), Cell::new(q, 2, 3));
    }
}
