//! Line rates and derived per-cell timing.

use crate::cell::CELL_BYTES;
use crate::time::SlotDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// SONET/SDH line rates considered by the paper, plus a custom escape hatch.
///
/// The basic time-slot of the buffer is the transmission time of one 64-byte
/// cell at the line rate; e.g. 3.2 ns at OC-3072 (§2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum LineRate {
    /// OC-192, 10 Gb/s.
    Oc192,
    /// OC-768, 40 Gb/s.
    Oc768,
    /// OC-3072, 160 Gb/s — the paper's headline target.
    #[default]
    Oc3072,
    /// Arbitrary rate in gigabits per second.
    CustomGbps(f64),
}

impl LineRate {
    /// Line rate in bits per second.
    ///
    /// The paper uses the rounded "10 / 40 / 160 Gb/s" figures rather than the
    /// exact SONET payload rates, and so do we.
    pub fn bits_per_second(self) -> f64 {
        match self {
            LineRate::Oc192 => 10e9,
            LineRate::Oc768 => 40e9,
            LineRate::Oc3072 => 160e9,
            LineRate::CustomGbps(g) => g * 1e9,
        }
    }

    /// Line rate in gigabits per second.
    pub fn gbps(self) -> f64 {
        self.bits_per_second() / 1e9
    }

    /// Duration of one time slot: the transmission time of a 64-byte cell.
    ///
    /// OC-768 → 12.8 ns, OC-3072 → 3.2 ns.
    pub fn slot_duration(self) -> SlotDuration {
        let bits = (CELL_BYTES * 8) as f64;
        SlotDuration::from_ns(bits / self.bits_per_second() * 1e9)
    }

    /// Packet-buffer bandwidth required for an input-queued architecture:
    /// twice the line rate (each cell is written once and read once).
    pub fn required_buffer_bandwidth_bps(self) -> f64 {
        2.0 * self.bits_per_second()
    }

    /// Rule-of-thumb buffer capacity: round-trip-time × line rate (§2).
    ///
    /// `rtt_seconds` defaults to 0.2 s in the paper, giving 4 GB at OC-3072.
    pub fn buffer_capacity_bytes(self, rtt_seconds: f64) -> f64 {
        self.bits_per_second() * rtt_seconds / 8.0
    }

    /// The RADS data granularity `B`: number of cells that must be transferred
    /// per DRAM access so that one batch is produced/consumed per DRAM random
    /// access time (`ceil(t_rc / slot)`).
    pub fn rads_granularity(self, dram_random_access_ns: f64) -> usize {
        let slot_ns = self.slot_duration().as_ns();
        (dram_random_access_ns / slot_ns).ceil() as usize
    }
}

impl fmt::Display for LineRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LineRate::Oc192 => write!(f, "OC-192 (10 Gb/s)"),
            LineRate::Oc768 => write!(f, "OC-768 (40 Gb/s)"),
            LineRate::Oc3072 => write!(f, "OC-3072 (160 Gb/s)"),
            LineRate::CustomGbps(g) => write!(f, "custom ({g} Gb/s)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * b.abs().max(1.0)
    }

    #[test]
    fn slot_durations_match_paper() {
        assert!(close(LineRate::Oc3072.slot_duration().as_ns(), 3.2));
        assert!(close(LineRate::Oc768.slot_duration().as_ns(), 12.8));
        assert!(close(LineRate::Oc192.slot_duration().as_ns(), 51.2));
    }

    #[test]
    fn rads_granularity_matches_paper_design_points() {
        // The paper assumes 48 ns DRAM random access time and sets B = 8 for
        // OC-768 and B = 32 for OC-3072 (§7). ceil(48/12.8) = 4 would be the
        // exact value; the paper conservatively doubles it to 8 — our helper
        // reports the exact ceiling, so check the OC-3072 point where they
        // agree up to the same rounding.
        assert_eq!(LineRate::Oc3072.rads_granularity(48.0), 15);
        assert_eq!(LineRate::Oc3072.rads_granularity(102.4), 32);
        assert_eq!(LineRate::Oc768.rads_granularity(102.4), 8);
    }

    #[test]
    fn buffer_capacity_rule_of_thumb() {
        // 160 Gb/s * 0.2 s / 8 = 4 GB.
        let bytes = LineRate::Oc3072.buffer_capacity_bytes(0.2);
        assert!(close(bytes, 4e9));
    }

    #[test]
    fn required_bandwidth_is_twice_line_rate() {
        assert!(close(LineRate::Oc768.required_buffer_bandwidth_bps(), 80e9));
    }

    #[test]
    fn custom_rate() {
        let r = LineRate::CustomGbps(1.0);
        assert!(close(r.bits_per_second(), 1e9));
        assert!(close(r.slot_duration().as_ns(), 512.0));
        assert_eq!(r.to_string(), "custom (1 Gb/s)");
    }

    #[test]
    fn display_named_rates() {
        assert_eq!(LineRate::Oc3072.to_string(), "OC-3072 (160 Gb/s)");
        assert_eq!(LineRate::default(), LineRate::Oc3072);
    }
}
