//! Line rates and derived per-cell timing.

use crate::cell::CELL_BYTES;
use crate::time::SlotDuration;
use serde::{de, Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;
use std::str::FromStr;

/// SONET/SDH line rates considered by the paper, plus a custom escape hatch.
///
/// The basic time-slot of the buffer is the transmission time of one 64-byte
/// cell at the line rate; e.g. 3.2 ns at OC-3072 (§2).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LineRate {
    /// OC-192, 10 Gb/s.
    Oc192,
    /// OC-768, 40 Gb/s.
    Oc768,
    /// OC-3072, 160 Gb/s — the paper's headline target.
    #[default]
    Oc3072,
    /// Arbitrary rate in gigabits per second.
    CustomGbps(f64),
}

impl LineRate {
    /// Line rate in bits per second.
    ///
    /// The paper uses the rounded "10 / 40 / 160 Gb/s" figures rather than the
    /// exact SONET payload rates, and so do we.
    pub fn bits_per_second(self) -> f64 {
        match self {
            LineRate::Oc192 => 10e9,
            LineRate::Oc768 => 40e9,
            LineRate::Oc3072 => 160e9,
            LineRate::CustomGbps(g) => g * 1e9,
        }
    }

    /// Line rate in gigabits per second.
    pub fn gbps(self) -> f64 {
        self.bits_per_second() / 1e9
    }

    /// Duration of one time slot: the transmission time of a 64-byte cell.
    ///
    /// OC-768 → 12.8 ns, OC-3072 → 3.2 ns.
    pub fn slot_duration(self) -> SlotDuration {
        let bits = (CELL_BYTES * 8) as f64;
        SlotDuration::from_ns(bits / self.bits_per_second() * 1e9)
    }

    /// Packet-buffer bandwidth required for an input-queued architecture:
    /// twice the line rate (each cell is written once and read once).
    pub fn required_buffer_bandwidth_bps(self) -> f64 {
        2.0 * self.bits_per_second()
    }

    /// Rule-of-thumb buffer capacity: round-trip-time × line rate (§2).
    ///
    /// `rtt_seconds` defaults to 0.2 s in the paper, giving 4 GB at OC-3072.
    pub fn buffer_capacity_bytes(self, rtt_seconds: f64) -> f64 {
        self.bits_per_second() * rtt_seconds / 8.0
    }

    /// The RADS data granularity `B`: number of cells that must be transferred
    /// per DRAM access so that one batch is produced/consumed per DRAM random
    /// access time (`ceil(t_rc / slot)`).
    pub fn rads_granularity(self, dram_random_access_ns: f64) -> usize {
        let slot_ns = self.slot_duration().as_ns();
        (dram_random_access_ns / slot_ns).ceil() as usize
    }
}

impl fmt::Display for LineRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LineRate::Oc192 => write!(f, "OC-192 (10 Gb/s)"),
            LineRate::Oc768 => write!(f, "OC-768 (40 Gb/s)"),
            LineRate::Oc3072 => write!(f, "OC-3072 (160 Gb/s)"),
            LineRate::CustomGbps(g) => write!(f, "custom ({g} Gb/s)"),
        }
    }
}

/// Error returned when a line-rate string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLineRateError {
    input: String,
}

impl fmt::Display for ParseLineRateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot parse {:?} as a line rate (try \"oc192\", \"oc768\", \"oc3072\", or a \
             number of Gb/s like \"2.5\")",
            self.input
        )
    }
}

impl std::error::Error for ParseLineRateError {}

impl FromStr for LineRate {
    type Err = ParseLineRateError;

    /// Parses both the CLI short forms (`oc3072`, `oc-768`, `2.5`, `2.5gbps`)
    /// and this type's own [`fmt::Display`] output (`OC-3072 (160 Gb/s)`,
    /// `custom (2.5 Gb/s)`), so rates round-trip through reports, JSON and
    /// command lines.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseLineRateError {
            input: s.to_owned(),
        };
        let lower = s.trim().to_ascii_lowercase();
        if let Some(rest) = lower.strip_prefix("oc") {
            let rest = rest.strip_prefix('-').unwrap_or(rest);
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            // Whatever follows the digits must be nothing, or the
            // parenthesised Gb/s tail the `Display` form appends — reject
            // trailing garbage like "oc768xyz" or "oc3072 Tb/s".
            let tail = rest[digits.len()..].trim();
            if !(tail.is_empty() || (tail.starts_with('(') && tail.contains("gb/s"))) {
                return Err(err());
            }
            return match digits.as_str() {
                "192" => Ok(LineRate::Oc192),
                "768" => Ok(LineRate::Oc768),
                "3072" => Ok(LineRate::Oc3072),
                _ => Err(err()),
            };
        }
        // "custom (2.5 Gb/s)" → the number between '(' and "gb/s" or ')'.
        let number_part = if let Some(open) = lower.find('(') {
            let inner = &lower[open + 1..];
            let end = inner
                .find("gb/s")
                .or_else(|| inner.find(')'))
                .unwrap_or(inner.len());
            inner[..end].trim().to_owned()
        } else {
            // "2.5", "2.5g", "2.5gbps", "2.5 gb/s" — strip at most one unit
            // suffix, so "2.5ggg" stays garbage instead of parsing as 2.5.
            let stripped = ["gb/s", "gbps", "g"]
                .iter()
                .find_map(|unit| lower.strip_suffix(unit))
                .unwrap_or(&lower);
            stripped.trim().to_owned()
        };
        let gbps: f64 = number_part.parse().map_err(|_| err())?;
        if gbps.is_finite() && gbps > 0.0 {
            Ok(LineRate::CustomGbps(gbps))
        } else {
            Err(err())
        }
    }
}

// Hand-written serde impls (the vendored derive cannot encode enum payloads):
// a line rate is a JSON string in its `Display` form, and `FromStr` accepts
// that form back; bare JSON numbers are accepted as Gb/s.
impl Serialize for LineRate {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> Deserialize<'de> for LineRate {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = LineRate;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a line rate string or a number of Gb/s")
            }
            fn visit_str<E: de::Error>(self, v: &str) -> Result<LineRate, E> {
                v.parse().map_err(|e: ParseLineRateError| E::custom(e))
            }
            fn visit_f64<E: de::Error>(self, v: f64) -> Result<LineRate, E> {
                if v.is_finite() && v > 0.0 {
                    Ok(LineRate::CustomGbps(v))
                } else {
                    Err(E::custom(format_args!("{v} Gb/s is not a valid line rate")))
                }
            }
        }
        deserializer.deserialize_any(V)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * b.abs().max(1.0)
    }

    #[test]
    fn slot_durations_match_paper() {
        assert!(close(LineRate::Oc3072.slot_duration().as_ns(), 3.2));
        assert!(close(LineRate::Oc768.slot_duration().as_ns(), 12.8));
        assert!(close(LineRate::Oc192.slot_duration().as_ns(), 51.2));
    }

    #[test]
    fn rads_granularity_matches_paper_design_points() {
        // The paper assumes 48 ns DRAM random access time and sets B = 8 for
        // OC-768 and B = 32 for OC-3072 (§7). ceil(48/12.8) = 4 would be the
        // exact value; the paper conservatively doubles it to 8 — our helper
        // reports the exact ceiling, so check the OC-3072 point where they
        // agree up to the same rounding.
        assert_eq!(LineRate::Oc3072.rads_granularity(48.0), 15);
        assert_eq!(LineRate::Oc3072.rads_granularity(102.4), 32);
        assert_eq!(LineRate::Oc768.rads_granularity(102.4), 8);
    }

    #[test]
    fn buffer_capacity_rule_of_thumb() {
        // 160 Gb/s * 0.2 s / 8 = 4 GB.
        let bytes = LineRate::Oc3072.buffer_capacity_bytes(0.2);
        assert!(close(bytes, 4e9));
    }

    #[test]
    fn required_bandwidth_is_twice_line_rate() {
        assert!(close(LineRate::Oc768.required_buffer_bandwidth_bps(), 80e9));
    }

    #[test]
    fn custom_rate() {
        let r = LineRate::CustomGbps(1.0);
        assert!(close(r.bits_per_second(), 1e9));
        assert!(close(r.slot_duration().as_ns(), 512.0));
        assert_eq!(r.to_string(), "custom (1 Gb/s)");
    }

    #[test]
    fn display_named_rates() {
        assert_eq!(LineRate::Oc3072.to_string(), "OC-3072 (160 Gb/s)");
        assert_eq!(LineRate::default(), LineRate::Oc3072);
    }

    #[test]
    fn from_str_round_trips_display_for_every_variant() {
        for rate in [
            LineRate::Oc192,
            LineRate::Oc768,
            LineRate::Oc3072,
            LineRate::CustomGbps(2.5),
            LineRate::CustomGbps(160.0),
            LineRate::CustomGbps(0.125),
        ] {
            let text = rate.to_string();
            assert_eq!(text.parse::<LineRate>().unwrap(), rate, "{text}");
        }
    }

    #[test]
    fn from_str_accepts_cli_short_forms() {
        assert_eq!("oc192".parse::<LineRate>().unwrap(), LineRate::Oc192);
        assert_eq!("OC-768".parse::<LineRate>().unwrap(), LineRate::Oc768);
        assert_eq!("oc3072".parse::<LineRate>().unwrap(), LineRate::Oc3072);
        assert_eq!(
            "2.5".parse::<LineRate>().unwrap(),
            LineRate::CustomGbps(2.5)
        );
        assert_eq!(
            "40gbps".parse::<LineRate>().unwrap(),
            LineRate::CustomGbps(40.0)
        );
        assert_eq!(
            " 10 Gb/s ".parse::<LineRate>().unwrap(),
            LineRate::CustomGbps(10.0)
        );
    }

    #[test]
    fn from_str_rejects_nonsense() {
        for bad in [
            "",
            "oc9999",
            "fast",
            "-3",
            "0",
            "nan",
            "custom ()",
            // Trailing garbage must not be silently ignored.
            "oc768xyz",
            "oc3072 Tb/s",
            "2.5ggg",
            "40gbpss",
        ] {
            assert!(bad.parse::<LineRate>().is_err(), "accepted {bad:?}");
        }
    }
}
