//! Time-base types: slots and physical durations.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A discrete slot index on the buffer's synchronous time base.
///
/// One slot is the transmission time of one cell at the line rate. All state
/// machines in the workspace advance one slot at a time.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Slot(pub u64);

impl Slot {
    /// Slot zero (simulation start).
    pub const ZERO: Slot = Slot(0);

    /// Creates a slot from a raw index.
    pub fn new(index: u64) -> Self {
        Slot(index)
    }

    /// Raw slot index.
    pub fn index(self) -> u64 {
        self.0
    }

    /// The next slot.
    #[must_use]
    pub fn next(self) -> Slot {
        Slot(self.0 + 1)
    }

    /// Number of slots elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: Slot) -> u64 {
        self.0
            .checked_sub(earlier.0)
            .expect("Slot::since called with a later slot")
    }
}

impl Add<u64> for Slot {
    type Output = Slot;
    fn add(self, rhs: u64) -> Slot {
        Slot(self.0 + rhs)
    }
}

impl AddAssign<u64> for Slot {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Slot> for Slot {
    type Output = u64;
    fn sub(self, rhs: Slot) -> u64 {
        self.since(rhs)
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot {}", self.0)
    }
}

/// A physical duration in nanoseconds.
///
/// Used by the technology model (the `cacti_lite` crate) and by the conversion between
/// DRAM timing parameters and slot counts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Nanoseconds(pub f64);

impl Nanoseconds {
    /// Creates a duration from nanoseconds.
    pub fn new(ns: f64) -> Self {
        Nanoseconds(ns)
    }

    /// Value in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0
    }

    /// Value in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 * 1e-9
    }

    /// Value in microseconds.
    pub fn as_us(self) -> f64 {
        self.0 * 1e-3
    }
}

impl fmt::Display for Nanoseconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ns", self.0)
    }
}

/// Duration of one time slot.
///
/// Thin wrapper distinguishing "a slot length" from other nanosecond
/// quantities; converts slot counts to wall-clock delays.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SlotDuration(Nanoseconds);

impl SlotDuration {
    /// Creates a slot duration from nanoseconds.
    pub fn from_ns(ns: f64) -> Self {
        SlotDuration(Nanoseconds(ns))
    }

    /// Duration in nanoseconds.
    pub fn as_ns(self) -> f64 {
        self.0.as_ns()
    }

    /// Wall-clock duration of `n` slots.
    pub fn times(self, n: u64) -> Nanoseconds {
        Nanoseconds(self.as_ns() * n as f64)
    }

    /// Number of whole slots needed to cover `duration` (ceiling).
    pub fn slots_to_cover(self, duration: Nanoseconds) -> u64 {
        (duration.as_ns() / self.as_ns()).ceil() as u64
    }
}

impl fmt::Display for SlotDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} per slot", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_arithmetic() {
        let s = Slot::new(10);
        assert_eq!(s.next(), Slot::new(11));
        assert_eq!(s + 5, Slot::new(15));
        assert_eq!(Slot::new(15) - s, 5);
        assert_eq!(Slot::new(15).since(s), 5);
        let mut t = Slot::ZERO;
        t += 3;
        assert_eq!(t.index(), 3);
        assert_eq!(t.to_string(), "slot 3");
    }

    #[test]
    #[should_panic(expected = "later slot")]
    fn since_panics_when_reversed() {
        let _ = Slot::new(1).since(Slot::new(2));
    }

    #[test]
    fn nanoseconds_conversions() {
        let ns = Nanoseconds::new(3200.0);
        assert!((ns.as_secs() - 3.2e-6).abs() < 1e-18);
        assert!((ns.as_us() - 3.2).abs() < 1e-12);
        assert_eq!(ns.to_string(), "3200.000 ns");
    }

    #[test]
    fn slot_duration_cover_and_times() {
        let d = SlotDuration::from_ns(3.2);
        assert_eq!(d.slots_to_cover(Nanoseconds::new(48.0)), 15);
        assert_eq!(d.slots_to_cover(Nanoseconds::new(3.2)), 1);
        assert!((d.times(10).as_ns() - 32.0).abs() < 1e-9);
        assert!(d.to_string().contains("per slot"));
    }
}
