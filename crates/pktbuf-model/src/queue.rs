//! Queue identifiers.
//!
//! The paper distinguishes *logical* VOQ names (`Q^l_i`, used by the
//! switch-fabric scheduler) from *physical* queue names (`Q^p_j`, used
//! internally by the CFDS memory organisation after renaming, §6). Keeping the
//! two as distinct new-types prevents accidentally indexing a DRAM group with a
//! logical name that has not been renamed.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a *logical* Virtual Output Queue.
///
/// A logical queue corresponds to an (output interface, class of service)
/// pair; the scheduler requests cells in terms of logical queues.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct LogicalQueueId(u32);

/// Identifier of a *physical* queue inside the DRAM organisation.
///
/// Physical queues are statically assigned to DRAM bank groups; the renaming
/// layer maps logical queues onto (chains of) physical queues.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct PhysicalQueueId(u32);

/// Whether an identifier names a logical or a physical queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueueKind {
    /// Scheduler-visible VOQ name.
    Logical,
    /// Internal, group-local queue name.
    Physical,
}

macro_rules! impl_queue_id {
    ($ty:ident, $kind:expr, $prefix:literal) => {
        impl $ty {
            /// Creates an identifier from a dense index.
            pub fn new(index: u32) -> Self {
                $ty(index)
            }

            /// Dense index of this queue (0-based).
            pub fn index(self) -> u32 {
                self.0
            }

            /// Dense index as `usize`, convenient for table lookups.
            pub fn as_usize(self) -> usize {
                self.0 as usize
            }

            /// The kind of this identifier.
            pub fn kind(self) -> QueueKind {
                $kind
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $ty {
            fn from(v: u32) -> Self {
                $ty(v)
            }
        }

        impl From<$ty> for u32 {
            fn from(v: $ty) -> u32 {
                v.0
            }
        }

        impl From<$ty> for usize {
            fn from(v: $ty) -> usize {
                v.0 as usize
            }
        }
    };
}

impl_queue_id!(LogicalQueueId, QueueKind::Logical, "Ql");
impl_queue_id!(PhysicalQueueId, QueueKind::Physical, "Qp");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_and_physical_are_distinct_types() {
        let l = LogicalQueueId::new(3);
        let p = PhysicalQueueId::new(3);
        assert_eq!(l.index(), p.index());
        assert_eq!(l.kind(), QueueKind::Logical);
        assert_eq!(p.kind(), QueueKind::Physical);
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(LogicalQueueId::new(7).to_string(), "Ql7");
        assert_eq!(PhysicalQueueId::new(7).to_string(), "Qp7");
    }

    #[test]
    fn conversions_round_trip() {
        let l: LogicalQueueId = 9u32.into();
        let back: u32 = l.into();
        assert_eq!(back, 9);
        let as_usize: usize = l.into();
        assert_eq!(as_usize, 9);
        assert_eq!(l.as_usize(), 9);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(LogicalQueueId::new(1) < LogicalQueueId::new(2));
        assert!(PhysicalQueueId::new(10) > PhysicalQueueId::new(2));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(LogicalQueueId::default().index(), 0);
        assert_eq!(PhysicalQueueId::default().index(), 0);
    }
}
