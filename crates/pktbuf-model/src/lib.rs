//! Fundamental types shared by every crate of the *future-packet-buffers*
//! workspace.
//!
//! This crate models the vocabulary of the paper *"Design and Implementation of
//! High-Performance Memory Systems for Future Packet Buffers"* (García, Corbal,
//! Cerdà, Valero — MICRO 2003):
//!
//! * [`Cell`] — the fixed 64-byte unit into which packets are segmented (§2).
//! * [`LogicalQueueId`] / [`PhysicalQueueId`] — Virtual Output Queue identifiers.
//!   Logical names are what the switch-fabric scheduler uses; physical names are
//!   what the CFDS renaming layer maps them onto (§6).
//! * [`LineRate`] — OC-192 / OC-768 / OC-3072 line rates and the derived
//!   time-slot duration (§2).
//! * [`Slot`] — the synchronous time base of the buffer (one cell transmission
//!   time at the line rate).
//! * [`RadsConfig`] / [`CfdsConfig`] — dimensioning parameters of the two memory
//!   architectures (Table 1 of the paper).
//!
//! # Example
//!
//! ```
//! use pktbuf_model::{CfdsConfig, LineRate, RadsConfig};
//!
//! // The paper's OC-3072 design point: Q = 512 queues, B = 32 cells.
//! let rads = RadsConfig::for_line_rate(LineRate::Oc3072, 512);
//! assert_eq!(rads.granularity, 32);
//!
//! // A CFDS refinement with b = 4 and M = 256 banks.
//! let cfds = CfdsConfig::builder()
//!     .line_rate(LineRate::Oc3072)
//!     .num_queues(512)
//!     .granularity(4)
//!     .num_banks(256)
//!     .build()
//!     .expect("valid configuration");
//! assert_eq!(cfds.banks_per_group(), 8);
//! assert_eq!(cfds.num_groups(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cell;
mod config;
mod error;
mod queue;
mod rate;
mod time;

pub use cell::{Cell, CellPayload, CELL_BYTES};
pub use config::{
    BufferSizing, CfdsConfig, CfdsConfigBuilder, ConfigOverrides, DramTiming, RadsConfig,
};
pub use error::{ConfigError, ModelError};
pub use queue::{LogicalQueueId, PhysicalQueueId, QueueKind};
pub use rate::{LineRate, ParseLineRateError};
pub use time::{Nanoseconds, Slot, SlotDuration};
