//! Property tests for the histogram algebra the reports depend on: merging
//! per-worker partials must be associative and commutative, and any
//! partitioning of a sample stream must merge back to the single-stream
//! histogram.

use obs::Log2Histogram;
use proptest::collection::vec;
use proptest::prelude::*;

fn hist_of(samples: &[u64]) -> Log2Histogram {
    let mut h = Log2Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `merge` is commutative: a ⊎ b == b ⊎ a.
    #[test]
    fn merge_is_commutative(
        a in vec(0u64..1 << 20, 0..200),
        b in vec(0u64..1 << 20, 0..200),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb;
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// `merge` is associative: (a ⊎ b) ⊎ c == a ⊎ (b ⊎ c).
    #[test]
    fn merge_is_associative(
        a in vec(0u64..1 << 20, 0..200),
        b in vec(0u64..1 << 20, 0..200),
        c in vec(0u64..1 << 20, 0..200),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut right_tail = hb;
        right_tail.merge(&hc);
        let mut right = ha;
        right.merge(&right_tail);
        prop_assert_eq!(left, right);
    }

    /// Any partitioning of a sample stream into per-worker shards merges back
    /// to the single-worker histogram, percentiles included.
    #[test]
    fn partition_merge_equals_single_stream(
        samples in vec(0u64..1 << 24, 1..400),
        workers in 1usize..=5,
    ) {
        let whole = hist_of(&samples);
        let mut shards = vec![Log2Histogram::new(); workers];
        for (i, &v) in samples.iter().enumerate() {
            shards[i % workers].record(v);
        }
        let mut merged = Log2Histogram::new();
        for shard in &shards {
            merged.merge(shard);
        }
        prop_assert_eq!(&merged, &whole);
        prop_assert_eq!(merged.p50(), whole.p50());
        prop_assert_eq!(merged.p95(), whole.p95());
        prop_assert_eq!(merged.p99(), whole.p99());
        prop_assert_eq!(merged.max(), whole.max());
    }
}
