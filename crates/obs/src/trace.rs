//! Cell-lifecycle flight recorder.
//!
//! A [`FlightRecorder`] is a bounded, preallocated ring of typed
//! [`TraceEvent`]s stamped with slot time only — no wall clocks anywhere, so
//! a replayed run traces identically. Each pipeline stage owns its own
//! recorder (single-writer, like every other per-stage structure); at dump
//! time the per-stage rings are merged and sorted by
//! [`TraceEvent::sort_key`], which is a total order, so the merged timeline
//! is independent of worker count.
//!
//! [`chrome_trace_json`] renders a merged timeline in the Chrome trace-event
//! format (`chrome://tracing`, Perfetto): stages map to `pid`, switches to
//! `tid`, slots to `ts`.

/// What happened to a cell (or a fault window) at a given slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A cell entered the fabric at an ingress external port.
    Inject,
    /// A cell was queued into a virtual output queue.
    VoqEnqueue,
    /// The arbiter granted a VOQ head toward an output.
    Grant,
    /// A cell arrived over an inter-stage link at the consuming stage.
    LinkTraverse,
    /// The transport layer re-sent a previously injected cell.
    Retransmit,
    /// A cell left the fabric at an egress external port.
    EgressTransmit,
    /// A scheduled fault window opened.
    FaultOpen,
    /// A scheduled fault window closed.
    FaultClose,
}

impl EventKind {
    /// Stable event name used in trace dumps.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Inject => "inject",
            Self::VoqEnqueue => "voq-enqueue",
            Self::Grant => "grant",
            Self::LinkTraverse => "link-traverse",
            Self::Retransmit => "retransmit",
            Self::EgressTransmit => "egress-transmit",
            Self::FaultOpen => "fault-open",
            Self::FaultClose => "fault-close",
        }
    }
}

/// One flight-recorder event. All coordinates are integers so dumps need no
/// string escaping and sort keys are total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Slot at which the event happened.
    pub slot: u64,
    /// Event type.
    pub kind: EventKind,
    /// Pipeline stage index (0 = ingress, 1 = middle, 2 = egress).
    pub stage: u8,
    /// Switch index within the stage.
    pub switch: u32,
    /// Port (input, output or link index — whichever the event concerns).
    pub port: u32,
    /// Source external port of the cell's flow (0 for fault events).
    pub src: u32,
    /// Destination external port of the cell's flow (0 for fault events).
    pub dest: u32,
    /// Flow sequence number of the cell (0 for fault events).
    pub seq: u64,
}

impl TraceEvent {
    /// Total order for merging per-stage rings into one deterministic
    /// timeline.
    #[must_use]
    pub fn sort_key(&self) -> (u64, u8, u8, u32, u32, u32, u32, u64) {
        (
            self.slot,
            self.stage,
            self.kind as u8,
            self.switch,
            self.port,
            self.src,
            self.dest,
            self.seq,
        )
    }
}

/// Arming filter for a [`FlightRecorder`]: restrict recording to selected
/// flows and/or a slot window (e.g. a fault window plus margin).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFilter {
    /// Record only these `(src, dest)` flows; empty records every flow.
    pub flows: Vec<(u32, u32)>,
    /// First slot (inclusive) to record.
    pub from_slot: u64,
    /// Last slot (inclusive) to record.
    pub to_slot: u64,
}

impl Default for TraceFilter {
    fn default() -> Self {
        Self {
            flows: Vec::new(),
            from_slot: 0,
            to_slot: u64::MAX,
        }
    }
}

impl TraceFilter {
    /// Does an event for `(src, dest)` at `slot` pass the filter?
    #[inline]
    #[must_use]
    pub fn admits(&self, slot: u64, src: u32, dest: u32) -> bool {
        slot >= self.from_slot
            && slot <= self.to_slot
            && (self.flows.is_empty() || self.flows.contains(&(src, dest)))
    }
}

/// Bounded ring of [`TraceEvent`]s. Preallocated at arm time; once full,
/// further events only bump a drop counter (the earliest `capacity` admitted
/// events are kept, deterministically).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecorder {
    filter: TraceFilter,
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder holding up to `capacity` events passing `filter`.
    #[must_use]
    pub fn new(capacity: usize, filter: TraceFilter) -> Self {
        Self {
            filter,
            events: Vec::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// Record `event` if it passes the filter and the ring has room.
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        if !self.filter.admits(event.slot, event.src, event.dest) {
            return;
        }
        if self.events.len() < self.events.capacity() {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// Events recorded so far, in arrival order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events that passed the filter after the ring filled.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consume the recorder, returning its events.
    #[must_use]
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

/// Merge per-stage event batches into one timeline ordered by
/// [`TraceEvent::sort_key`].
#[must_use]
pub fn merge_events(parts: Vec<Vec<TraceEvent>>) -> Vec<TraceEvent> {
    let mut all: Vec<TraceEvent> = parts.into_iter().flatten().collect();
    all.sort_unstable_by_key(TraceEvent::sort_key);
    all
}

/// Render events as Chrome trace-event JSON (load in `chrome://tracing` or
/// Perfetto). Slots become microsecond timestamps; stages become processes
/// and switches become threads. All values are integers or fixed names, so
/// the output needs no escaping and is byte-deterministic.
#[must_use]
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(64 + events.len() * 128);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{},\
             \"args\":{{\"slot\":{},\"port\":{},\"src\":{},\"dest\":{},\"seq\":{}}}}}",
            ev.kind.name(),
            ev.slot,
            ev.stage,
            ev.switch,
            ev.slot,
            ev.port,
            ev.src,
            ev.dest,
            ev.seq
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::{
        chrome_trace_json, merge_events, EventKind, FlightRecorder, TraceEvent, TraceFilter,
    };

    fn ev(slot: u64, kind: EventKind, stage: u8) -> TraceEvent {
        TraceEvent {
            slot,
            kind,
            stage,
            switch: 1,
            port: 2,
            src: 3,
            dest: 4,
            seq: 5,
        }
    }

    #[test]
    fn filter_admits_by_flow_and_window() {
        let f = TraceFilter {
            flows: vec![(3, 4)],
            from_slot: 10,
            to_slot: 20,
        };
        assert!(f.admits(10, 3, 4));
        assert!(!f.admits(9, 3, 4));
        assert!(!f.admits(21, 3, 4));
        assert!(!f.admits(15, 3, 5));
        assert!(TraceFilter::default().admits(0, 0, 0));
    }

    #[test]
    fn ring_bounds_and_drop_count() {
        let mut r = FlightRecorder::new(2, TraceFilter::default());
        for slot in 0..5 {
            r.record(ev(slot, EventKind::Inject, 0));
        }
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.dropped(), 3);
    }

    #[test]
    fn merged_timeline_is_order_independent() {
        let a = vec![ev(5, EventKind::Grant, 1), ev(1, EventKind::Inject, 0)];
        let b = vec![
            ev(5, EventKind::VoqEnqueue, 0),
            ev(3, EventKind::LinkTraverse, 2),
        ];
        let m1 = merge_events(vec![a.clone(), b.clone()]);
        let m2 = merge_events(vec![b, a]);
        assert_eq!(m1, m2);
        assert_eq!(m1[0].slot, 1);
        assert_eq!(m1.last().map(|e| e.slot), Some(5));
    }

    #[test]
    fn chrome_trace_is_wellformed_json() {
        let json = chrome_trace_json(&[ev(7, EventKind::FaultOpen, 1)]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"fault-open\""));
        assert!(json.contains("\"ts\":7"));
        assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"));
        assert_eq!(
            chrome_trace_json(&[]),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"
        );
    }
}
