//! Deterministic, zero-dependency instrumentation for the packet-buffer
//! stack.
//!
//! Three probe families, all clocked by slot time only (no wall clocks, no
//! RNG, no allocation after arm time):
//!
//! - [`Log2Histogram`] — fixed-shape latency/occupancy histograms whose merge
//!   is associative and commutative, so per-worker partials combine into
//!   byte-identical reports regardless of worker count;
//! - [`SeriesRing`] — slot-sampled time-series of per-stage throughput,
//!   occupancy and stall causes in preallocated rings;
//! - [`FlightRecorder`] — a bounded ring of typed cell-lifecycle events
//!   ([`TraceEvent`]) renderable as Chrome trace-event JSON via
//!   [`chrome_trace_json`].
//!
//! Everything sits behind [`ObsConfig`]. The default, [`ObsConfig::off`],
//! arms nothing: consumers keep instrumentation state in `Option`s that stay
//! `None`, so the off path is byte-identical to an uninstrumented build (the
//! same discipline `fabric::faults` applies to empty fault plans).

mod hist;
mod series;
mod trace;

pub use hist::{bucket_of, bucket_upper_bound, Log2Histogram, HIST_BUCKETS};
pub use series::{SeriesRing, SeriesSample};
pub use trace::{
    chrome_trace_json, merge_events, EventKind, FlightRecorder, TraceEvent, TraceFilter,
};

/// Which probes to arm. [`ObsConfig::off`] (the `Default`) arms nothing and
/// is guaranteed overhead-free; [`ObsConfig::standard`] is the
/// histogram+series preset the benchmarks use to measure instrumentation
/// overhead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsConfig {
    /// Arm log2 latency histograms at egress ports (and first-injection
    /// latency at closed-loop sources when transport is enabled).
    pub latency_hist: bool,
    /// Arm per-VOQ backlog and per-link credit-occupancy histograms.
    pub occupancy_hist: bool,
    /// Time-series sampling stride in slots; 0 disables the series probes.
    pub series_stride: u64,
    /// Maximum samples kept per stage series ring.
    pub series_capacity: usize,
    /// Flight-recorder ring capacity per stage; 0 disables the recorder.
    pub trace_capacity: usize,
    /// Restrict the flight recorder to these `(src, dest)` flows; empty
    /// records every flow.
    pub trace_flows: Vec<(u32, u32)>,
    /// First slot (inclusive) the flight recorder is armed for.
    pub trace_from_slot: u64,
    /// Last slot (inclusive) the flight recorder is armed for.
    pub trace_to_slot: u64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self::off()
    }
}

impl ObsConfig {
    /// Arm nothing. Consumers must keep the off path byte-identical to an
    /// uninstrumented run.
    #[must_use]
    pub const fn off() -> Self {
        Self {
            latency_hist: false,
            occupancy_hist: false,
            series_stride: 0,
            series_capacity: 0,
            trace_capacity: 0,
            trace_flows: Vec::new(),
            trace_from_slot: 0,
            trace_to_slot: u64::MAX,
        }
    }

    /// The histogram + series preset used by the overhead benchmarks: both
    /// histogram families on, series sampled every 64 slots, recorder off.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            latency_hist: true,
            occupancy_hist: true,
            series_stride: 64,
            series_capacity: 1024,
            ..Self::off()
        }
    }

    /// True when no probe is armed.
    #[must_use]
    pub fn is_off(&self) -> bool {
        !self.latency_hist
            && !self.occupancy_hist
            && !self.series_enabled()
            && !self.trace_enabled()
    }

    /// True when the time-series probes are armed.
    #[must_use]
    pub fn series_enabled(&self) -> bool {
        self.series_stride > 0 && self.series_capacity > 0
    }

    /// True when the flight recorder is armed.
    #[must_use]
    pub fn trace_enabled(&self) -> bool {
        self.trace_capacity > 0
    }

    /// The recorder filter this configuration describes.
    #[must_use]
    pub fn trace_filter(&self) -> TraceFilter {
        TraceFilter {
            flows: self.trace_flows.clone(),
            from_slot: self.trace_from_slot,
            to_slot: self.trace_to_slot,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::ObsConfig;

    #[test]
    fn off_is_default_and_arms_nothing() {
        let off = ObsConfig::default();
        assert_eq!(off, ObsConfig::off());
        assert!(off.is_off());
        assert!(!off.series_enabled());
        assert!(!off.trace_enabled());
    }

    #[test]
    fn standard_arms_histograms_and_series_only() {
        let std = ObsConfig::standard();
        assert!(!std.is_off());
        assert!(std.latency_hist && std.occupancy_hist);
        assert!(std.series_enabled());
        assert!(!std.trace_enabled());
    }
}
