//! Log2-bucketed histograms over integer slot counts.
//!
//! Every probe in the stack funnels into [`Log2Histogram`]: a fixed array of
//! 65 buckets where value `v` lands in bucket `bit_length(v)` (bucket 0 holds
//! exactly the zeros, bucket `i >= 1` holds `[2^(i-1), 2^i - 1]`). The shape
//! is chosen for two properties the reports depend on:
//!
//! - **Associative, commutative merge.** A merge is element-wise addition of
//!   bucket counts plus min/max/sum folds, so per-worker partial histograms
//!   combine into the same bytes regardless of worker count or merge order.
//! - **No allocation after construction.** The bucket array is inline; the
//!   hot-path `record` is a shift, a few adds and a compare.
//!
//! Percentiles are integer-rank over bucket counts and therefore
//! deterministic: `percentile(p)` answers with the upper bound of the bucket
//! containing the `ceil(p/100 * count)`-th smallest sample, clamped to the
//! exact observed maximum.

/// Number of buckets in a [`Log2Histogram`]: one per possible bit length of a
/// `u64` (0 through 64).
pub const HIST_BUCKETS: usize = 65;

/// Fixed-shape log2 histogram of `u64` samples (slot counts, queue depths).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a sample: its bit length (`0` for zero).
#[inline]
#[must_use]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Largest value that lands in `bucket` (inclusive upper bound).
#[inline]
#[must_use]
pub fn bucket_upper_bound(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= 64 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

impl Log2Histogram {
    /// An empty histogram. Does not allocate.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Fold another histogram into this one. Element-wise over buckets, so the
    /// operation is associative and commutative: merging per-worker partials
    /// in any order yields byte-identical state.
    pub fn merge(&mut self, other: &Self) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or 0 when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True when no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Raw bucket counts; index `i` counts samples of bit length `i`.
    #[must_use]
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Integer-rank percentile (`pct` in `0..=100`): the upper bound of the
    /// bucket holding the `ceil(pct/100 * count)`-th smallest sample, clamped
    /// to the observed maximum so reported tails never exceed reality.
    /// Returns 0 for an empty histogram.
    #[must_use]
    pub fn percentile(&self, pct: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (pct.min(100) * self.count).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`Log2Histogram::percentile`]).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.percentile(50)
    }

    /// 95th percentile (see [`Log2Histogram::percentile`]).
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.percentile(95)
    }

    /// 99th percentile (see [`Log2Histogram::percentile`]).
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.percentile(99)
    }
}

#[cfg(test)]
mod tests {
    use super::{bucket_of, bucket_upper_bound, Log2Histogram, HIST_BUCKETS};

    #[test]
    fn bucket_boundaries_follow_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(255), 8);
        assert_eq!(bucket_of(256), 9);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(8), 255);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn percentiles_are_integer_rank_and_clamped_to_max() {
        let mut h = Log2Histogram::new();
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.p50(), 1);
        // The 10th-smallest sample is 100; bucket 7 upper bound is 127 but the
        // answer clamps to the observed max.
        assert_eq!(h.percentile(100), 100);
        assert_eq!(h.max(), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(Log2Histogram::new().p99(), 0);
    }

    #[test]
    fn merge_matches_single_stream() {
        let mut all = Log2Histogram::new();
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        for v in 0..1000u64 {
            all.record(v * 7 % 513);
            if v % 2 == 0 {
                a.record(v * 7 % 513);
            } else {
                b.record(v * 7 % 513);
            }
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
        let mut flipped = b;
        flipped.merge(&a);
        assert_eq!(flipped, all);
    }

    #[test]
    fn bucket_count_is_stable() {
        assert_eq!(HIST_BUCKETS, 65);
        let h = Log2Histogram::new();
        assert_eq!(h.buckets().len(), HIST_BUCKETS);
    }
}
