//! Slot-sampled time-series rings.
//!
//! A [`SeriesRing`] captures one sample every `stride` slots: the throughput
//! and stall counts accumulated over the window plus an occupancy reading
//! taken at the window boundary. Storage is preallocated at arm time
//! (hot-path-alloc clean); once `capacity` samples are stored further windows
//! only bump a drop counter, which keeps long runs bounded while staying
//! deterministic — the *first* `capacity` windows are always the ones kept.
//!
//! Idle fast-forward support: the engine may skip whole windows in which
//! nothing can move. [`SeriesRing::advance_idle`] synthesizes the samples
//! those windows would have produced (zero throughput and stalls, constant
//! occupancy), so a fast-forwarded serial run and a fully stepped
//! multi-worker run emit byte-identical series.

/// One sample of a per-stage time-series window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesSample {
    /// Last slot of the sampled window.
    pub slot: u64,
    /// Cells transmitted (crossbar departures) during the window.
    pub transmitted: u64,
    /// Backlog at the window boundary: queued VOQ tags plus link-resident
    /// cells for the stage being sampled.
    pub occupancy: u64,
    /// Slots within the window in which at least one output was blocked on
    /// exhausted link credit (the stage's stall cause).
    pub stalls: u64,
}

/// Bounded, preallocated ring of [`SeriesSample`]s sampled every `stride`
/// slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesRing {
    stride: u64,
    next_sample: u64,
    transmitted_accum: u64,
    stall_accum: u64,
    samples: Vec<SeriesSample>,
    dropped: u64,
}

impl SeriesRing {
    /// A ring sampling every `stride` slots (clamped to at least 1), keeping
    /// the first `capacity` samples. All storage is allocated here.
    #[must_use]
    pub fn new(stride: u64, capacity: usize) -> Self {
        let stride = stride.max(1);
        Self {
            stride,
            next_sample: stride - 1,
            transmitted_accum: 0,
            stall_accum: 0,
            samples: Vec::with_capacity(capacity),
            dropped: 0,
        }
    }

    /// Sampling stride in slots.
    #[must_use]
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Count a transmitted cell toward the current window.
    #[inline]
    pub fn add_transmitted(&mut self, n: u64) {
        self.transmitted_accum += n;
    }

    /// Count credit-stall slots toward the current window.
    #[inline]
    pub fn add_stalls(&mut self, n: u64) {
        self.stall_accum += n;
    }

    /// True when `slot` closes the current window and a sample is due.
    #[inline]
    #[must_use]
    pub fn due(&self, slot: u64) -> bool {
        slot == self.next_sample
    }

    /// Close the window ending at `slot` with the given boundary occupancy.
    /// Call only when [`SeriesRing::due`] returned true for `slot`.
    pub fn sample(&mut self, slot: u64, occupancy: u64) {
        let sample = SeriesSample {
            slot,
            transmitted: self.transmitted_accum,
            occupancy,
            stalls: self.stall_accum,
        };
        self.transmitted_accum = 0;
        self.stall_accum = 0;
        if self.samples.len() < self.samples.capacity() {
            self.samples.push(sample);
        } else {
            self.dropped += 1;
        }
        self.next_sample += self.stride;
    }

    /// Synthesize the samples for `slots` idle slots starting at `from_slot`:
    /// windows closing inside the span record zero throughput/stalls (beyond
    /// anything already accumulated) and the constant idle `occupancy`.
    pub fn advance_idle(&mut self, from_slot: u64, slots: u64, occupancy: u64) {
        let end = from_slot + slots;
        while self.next_sample < end {
            let at = self.next_sample;
            self.sample(at, occupancy);
        }
    }

    /// Samples captured so far, oldest first.
    #[must_use]
    pub fn samples(&self) -> &[SeriesSample] {
        &self.samples
    }

    /// Windows discarded after the ring filled.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::SeriesRing;

    #[test]
    fn samples_close_every_stride_slots() {
        let mut ring = SeriesRing::new(4, 8);
        for slot in 0..10u64 {
            ring.add_transmitted(1);
            if ring.due(slot) {
                ring.sample(slot, 42);
            }
        }
        let s = ring.samples();
        assert_eq!(s.len(), 2);
        assert_eq!((s[0].slot, s[0].transmitted, s[0].occupancy), (3, 4, 42));
        assert_eq!((s[1].slot, s[1].transmitted), (7, 4));
    }

    #[test]
    fn idle_synthesis_matches_stepping() {
        let mut stepped = SeriesRing::new(3, 16);
        for slot in 0..12u64 {
            if stepped.due(slot) {
                stepped.sample(slot, 5);
            }
        }
        let mut jumped = SeriesRing::new(3, 16);
        jumped.advance_idle(0, 12, 5);
        assert_eq!(stepped, jumped);
    }

    #[test]
    fn full_ring_counts_drops_deterministically() {
        let mut ring = SeriesRing::new(1, 2);
        for slot in 0..5u64 {
            if ring.due(slot) {
                ring.sample(slot, 0);
            }
        }
        assert_eq!(ring.samples().len(), 2);
        assert_eq!(ring.dropped(), 3);
        assert_eq!(ring.samples()[1].slot, 1);
    }
}
