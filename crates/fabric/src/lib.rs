//! `fabric`: an `N×N` virtual-output-queued switch that composes the
//! workspace's packet buffers into a whole router.
//!
//! Every experiment below this crate simulates **one** packet buffer in
//! isolation. A router line card, however, is one of `N` ingress ports
//! feeding a crossbar: each ingress keeps a *virtual output queue* (VOQ) per
//! egress port, a scheduler matches VOQs to egress ports every slot, and the
//! interesting behaviour — head-of-line-free throughput, incast contention,
//! end-to-end latency — only appears when the independently-correct buffers
//! contend for shared outputs.
//!
//! This crate provides that system layer:
//!
//! * [`VoqSwitch`] — the fabric: one [`pktbuf::PacketBuffer`] per ingress
//!   port (any design; [`PortBuffer`] mixes them per port), a crossbar
//!   arbiter and rate-limited egress ports, advanced slot-synchronously with
//!   chunked arrival generation and an idle fast-forward.
//! * [`CrossbarArbiter`] — iSLIP-style iterative matching
//!   ([`ArbiterKind::Islip`]) and a greedy maximal-matching baseline
//!   ([`ArbiterKind::Maximal`]).
//! * [`EgressPort`] — credit-throttled output lines with end-to-end latency
//!   accounting.
//! * [`FabricRunReport`] — per-port, per-output and traffic-matrix-level
//!   results, with a built-in cell-conservation check.
//! * [`faults`] — deterministic, slot-scheduled fault injection for the
//!   Clos fabric ([`FaultPlan`]), with every fault's impact accounted in a
//!   per-fault [`FaultLedger`] so conservation still closes under failure.
//! * [`transport`] — end-to-end reliable delivery over the Clos: egress
//!   ports ack and deduplicate, closed-loop sources
//!   ([`traffic::ClosedLoopSource`]) retransmit what the fault layer killed,
//!   and [`RecoveryReport`] measures how fast goodput returns to baseline.
//! * observability — deterministic probes armed via
//!   [`ClosFabric::arm_obs`] with an [`obs::ObsConfig`]: end-to-end latency
//!   and occupancy histograms, slot-sampled per-stage time-series and a
//!   cell-lifecycle flight recorder, reported in [`ClosObsReport`]. Off by
//!   default, and the off path is byte-identical to an unarmed run.
//!
//! # Example
//!
//! ```
//! use fabric::{FabricConfig, VoqSwitch};
//! use pktbuf::RadsBuffer;
//! use pktbuf_model::{LineRate, RadsConfig};
//! use traffic::{stream_seed, UniformArrivals};
//!
//! let ports = 4;
//! let buffers: Vec<RadsBuffer> = (0..ports)
//!     .map(|_| {
//!         RadsBuffer::new(RadsConfig {
//!             line_rate: LineRate::Oc3072,
//!             num_queues: ports,
//!             granularity: 4,
//!             lookahead: None,
//!             dram: Default::default(),
//!         })
//!     })
//!     .collect();
//! let mut arrivals: Vec<UniformArrivals> = (0..ports)
//!     .map(|p| UniformArrivals::new(ports, 0.6, stream_seed(1, p as u64)))
//!     .collect();
//! let mut switch = VoqSwitch::new(FabricConfig::new(ports), buffers);
//! let report = switch.run(&mut arrivals, 2_000);
//! assert!(report.zero_loss);
//! assert!(report.conservation_holds());
//! assert_eq!(report.transmitted + report.resident_cells, report.arrivals);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arbiter;
pub mod clos;
mod egress;
pub mod faults;
mod port;
mod report;
mod switch;
pub mod transport;

pub use arbiter::{ArbiterKind, CrossbarArbiter};
pub use clos::{
    ClosConfig, ClosFabric, ClosObsReport, ClosRunReport, ClosStage, ClosStageObsReport,
    ClosStageReport, DispatchPolicy, SeriesReport, TraceReport,
};
pub use egress::EgressPort;
pub use faults::{
    FaultEvent, FaultImpact, FaultKind, FaultLedger, FaultPlan, FaultPlanError, LinkBoundary,
};
pub use port::PortBuffer;
pub use report::{EgressReport, FabricRunReport, HistogramReport, PortReport};
pub use switch::{FabricConfig, NullSink, StageSink, VoqSwitch, FABRIC_CHUNK_SLOTS};
pub use transport::{RecoveryReport, TransportConfig, TransportReport};
