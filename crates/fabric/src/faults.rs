//! Deterministic, slot-scheduled fault injection for the Clos fabric.
//!
//! A [`FaultPlan`] is a list of [`FaultEvent`]s, each naming a fault kind,
//! the slot it starts at and an optional duration (omitted = permanent).
//! The plan is pure data: armed into a [`crate::ClosFabric`] via
//! [`crate::ClosFabric::arm_faults`] *before* the run, it makes every fault
//! fire at exactly its scheduled slot on every execution schedule, so a
//! faulted run stays byte-identical across worker counts and bit-identical
//! to the skip-free reference — chaos you can replay.
//!
//! # Fault taxonomy
//!
//! * [`FaultKind::MiddleDeath`] — a middle switch goes dark: it stops
//!   accepting cells from its inbound links, stops arbitrating and stops
//!   transmitting. Its link credits stop returning, so the ingress stage
//!   starves away from it (see the credit-rerouting notes in
//!   [`crate::clos`]); on revival the switch resumes where it froze.
//! * [`FaultKind::LinkFlap`] — one inter-stage link stops delivering:
//!   cells already on the wire (and any pushed while it is down, up to the
//!   credit bound) wait; when the flap ends they pop in order. Stall, never
//!   drop. A flap must have a finite duration — a permanently dark link is
//!   a death, not a flap.
//! * [`FaultKind::EgressSlowdown`] — one external output line degrades to
//!   transmitting at most every `factor` slots, modelling a receiver that
//!   stopped keeping up.
//! * [`FaultKind::IngressPortDeath`] — one external ingress line dies:
//!   cells offered there are refused at the line (counted, never entering
//!   any switch).
//! * [`FaultKind::DropOnFull`] — disables credit flow control fabric-wide
//!   so a cell arriving at a full link FIFO is dropped (and ledgered).
//!   This is PR 7's deliberately-lossy link discipline folded into the
//!   fault framework; it is whole-run (`start = 0`, no duration), because
//!   credit state cannot be meaningfully re-synchronised mid-run.
//!
//! # The fault ledger
//!
//! Every fault's impact is *accounted*: the run report carries a
//! [`FaultLedger`] with one [`FaultImpact`] row per event — cells refused
//! at dead ingress lines, cells dropped at full links, cells stranded in a
//! dead switch's egress FIFOs at end of run, cell-slots spent stalled
//! behind a flap or a dead stage, and transmit opportunities denied by a
//! slowdown. The Clos conservation check consumes the ledger: under any
//! injected fault, arrivals must still equal delivered + resident +
//! stranded + every accounted loss (see
//! [`crate::ClosRunReport::conservation_holds`]).

use crate::clos::ClosStage;
use serde::{de, Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;

/// Which inter-stage boundary a link fault sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkBoundary {
    /// A link from an ingress switch up to a middle switch.
    IngressMiddle,
    /// A link from a middle switch down to an egress switch.
    MiddleEgress,
}

impl LinkBoundary {
    /// Stable lower-case label for specs and reports.
    pub fn label(self) -> &'static str {
        match self {
            LinkBoundary::IngressMiddle => "ingress-middle",
            LinkBoundary::MiddleEgress => "middle-egress",
        }
    }
}

/// What goes wrong. See the module docs for each fault's exact semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Middle switch `switch` goes dark for the event's window.
    MiddleDeath {
        /// Index of the middle switch, `0 ≤ switch < m`.
        switch: usize,
    },
    /// The link from `switch`'s output `output` across `boundary` stops
    /// delivering for the event's window (which must be finite).
    LinkFlap {
        /// Which stage boundary the link crosses.
        boundary: LinkBoundary,
        /// Upstream switch index (ingress switch for
        /// [`LinkBoundary::IngressMiddle`], middle switch for
        /// [`LinkBoundary::MiddleEgress`]).
        switch: usize,
        /// Upstream output index (= downstream switch index).
        output: usize,
    },
    /// External output line `port` transmits at most every `factor` slots.
    EgressSlowdown {
        /// External output port, `0 ≤ port < r·N`.
        port: usize,
        /// Slowdown factor, `≥ 2` (1 would be a no-op).
        factor: u64,
    },
    /// External ingress line `port` refuses every offered cell.
    IngressPortDeath {
        /// External ingress port, `0 ≤ port < r·N`.
        port: usize,
    },
    /// Credit flow control is disabled fabric-wide; full link FIFOs drop.
    DropOnFull,
}

impl FaultKind {
    /// Stable lower-case label for specs, reports and the ledger.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::MiddleDeath { .. } => "middle-death",
            FaultKind::LinkFlap { .. } => "link-flap",
            FaultKind::EgressSlowdown { .. } => "egress-slowdown",
            FaultKind::IngressPortDeath { .. } => "port-death",
            FaultKind::DropOnFull => "drop-on-full",
        }
    }

    /// Human-readable description of what the fault targets.
    pub fn target(&self) -> String {
        match self {
            FaultKind::MiddleDeath { switch } => format!("middle[{switch}]"),
            FaultKind::LinkFlap {
                boundary,
                switch,
                output,
            } => format!("link {} {switch}:{output}", boundary.label()),
            FaultKind::EgressSlowdown { port, factor } => {
                format!("output port {port} /{factor}")
            }
            FaultKind::IngressPortDeath { port } => format!("ingress port {port}"),
            FaultKind::DropOnFull => "every link".to_owned(),
        }
    }
}

/// One scheduled fault: a kind, the slot it starts at and how long it lasts
/// (`None` = until the end of the run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// What goes wrong.
    pub kind: FaultKind,
    /// First slot the fault is active.
    pub start: u64,
    /// Slots the fault lasts; `None` means it never recovers.
    pub duration: Option<u64>,
}

impl FaultEvent {
    /// A fault active from `start` for `duration` slots.
    pub fn windowed(kind: FaultKind, start: u64, duration: u64) -> Self {
        FaultEvent {
            kind,
            start,
            duration: Some(duration),
        }
    }

    /// A fault active from `start` until the end of the run.
    pub fn permanent(kind: FaultKind, start: u64) -> Self {
        FaultEvent {
            kind,
            start,
            duration: None,
        }
    }

    /// The event's active window.
    pub(crate) fn window(&self) -> Window {
        Window {
            start: self.start,
            end: self
                .duration
                .map_or(u64::MAX, |d| self.start.saturating_add(d)),
        }
    }
}

/// A half-open slot interval `[start, end)`; `end == u64::MAX` = forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Window {
    pub(crate) start: u64,
    pub(crate) end: u64,
}

impl Window {
    /// Whether the window covers `slot`.
    #[inline]
    pub(crate) fn contains(self, slot: u64) -> bool {
        self.start <= slot && slot < self.end
    }
}

/// Why a fault plan cannot be armed against a given Clos geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultPlanError {
    /// A `MiddleDeath` names a switch `≥ m`.
    BadMiddleSwitch(usize, usize),
    /// A `LinkFlap` names an upstream switch outside its boundary's range.
    BadLinkSwitch(usize, usize),
    /// A `LinkFlap` names an output outside its boundary's range.
    BadLinkOutput(usize, usize),
    /// A `LinkFlap` has no duration; flaps must recover.
    PermanentFlap,
    /// An event names an external port `≥ r·N`.
    BadPort(usize, usize),
    /// An `EgressSlowdown` factor below 2 (1 is a no-op).
    BadFactor(u64),
    /// An event has `duration = Some(0)` (an empty window).
    EmptyWindow,
    /// A `DropOnFull` that is not whole-run (`start = 0`, no duration).
    WindowedDropOnFull,
    /// More than one `DropOnFull` event in the plan.
    DuplicateDropOnFull,
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::BadMiddleSwitch(s, m) => {
                write!(f, "middle-death targets switch {s}, but m = {m}")
            }
            FaultPlanError::BadLinkSwitch(s, n) => {
                write!(
                    f,
                    "link-flap targets upstream switch {s}, but only {n} exist"
                )
            }
            FaultPlanError::BadLinkOutput(o, n) => {
                write!(f, "link-flap targets output {o}, but only {n} are wired")
            }
            FaultPlanError::PermanentFlap => {
                write!(f, "a link flap must have a finite duration")
            }
            FaultPlanError::BadPort(p, ext) => {
                write!(f, "fault targets external port {p}, but only {ext} exist")
            }
            FaultPlanError::BadFactor(factor) => {
                write!(f, "egress-slowdown factor must be >= 2, got {factor}")
            }
            FaultPlanError::EmptyWindow => write!(f, "a fault duration must be >= 1 slot"),
            FaultPlanError::WindowedDropOnFull => {
                write!(f, "drop-on-full is whole-run: start 0, no duration")
            }
            FaultPlanError::DuplicateDropOnFull => {
                write!(f, "at most one drop-on-full event per plan")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A deterministic, slot-scheduled list of [`FaultEvent`]s. Serializes as
/// a bare JSON array of events; an empty plan arms nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled events, in plan (= ledger) order.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (arms nothing; runs stay byte-identical to fault-free).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan over the given events.
    pub fn new(events: impl IntoIterator<Item = FaultEvent>) -> Self {
        FaultPlan {
            events: events.into_iter().collect(),
        }
    }

    /// Whether the plan schedules no fault at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether the plan disables credit flow control ([`FaultKind::DropOnFull`]).
    pub fn has_drop_on_full(&self) -> bool {
        self.events.iter().any(|e| e.kind == FaultKind::DropOnFull)
    }

    /// Checks every event against a Clos geometry (`radix` = N,
    /// `ingress_switches` = r, `middle_switches` = m).
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultPlanError`] found.
    pub fn validate(
        &self,
        radix: usize,
        ingress_switches: usize,
        middle_switches: usize,
    ) -> Result<(), FaultPlanError> {
        let ext = radix * ingress_switches;
        let mut drop_events = 0usize;
        for event in &self.events {
            if event.duration == Some(0) {
                return Err(FaultPlanError::EmptyWindow);
            }
            match event.kind {
                FaultKind::MiddleDeath { switch } => {
                    if switch >= middle_switches {
                        return Err(FaultPlanError::BadMiddleSwitch(switch, middle_switches));
                    }
                }
                FaultKind::LinkFlap {
                    boundary,
                    switch,
                    output,
                } => {
                    if event.duration.is_none() {
                        return Err(FaultPlanError::PermanentFlap);
                    }
                    let (switches, outputs) = match boundary {
                        LinkBoundary::IngressMiddle => (ingress_switches, middle_switches),
                        LinkBoundary::MiddleEgress => (middle_switches, ingress_switches),
                    };
                    if switch >= switches {
                        return Err(FaultPlanError::BadLinkSwitch(switch, switches));
                    }
                    if output >= outputs {
                        return Err(FaultPlanError::BadLinkOutput(output, outputs));
                    }
                }
                FaultKind::EgressSlowdown { port, factor } => {
                    if port >= ext {
                        return Err(FaultPlanError::BadPort(port, ext));
                    }
                    if factor < 2 {
                        return Err(FaultPlanError::BadFactor(factor));
                    }
                }
                FaultKind::IngressPortDeath { port } => {
                    if port >= ext {
                        return Err(FaultPlanError::BadPort(port, ext));
                    }
                }
                FaultKind::DropOnFull => {
                    if event.start != 0 || event.duration.is_some() {
                        return Err(FaultPlanError::WindowedDropOnFull);
                    }
                    drop_events += 1;
                    if drop_events > 1 {
                        return Err(FaultPlanError::DuplicateDropOnFull);
                    }
                }
            }
        }
        Ok(())
    }

    /// Every slot at which some fault turns on or (finitely) off, sorted.
    /// The drain uses these: as long as a transition lies ahead, stuck
    /// cells may still recover, so stepping must continue.
    pub(crate) fn edges(&self) -> Vec<u64> {
        let mut edges: Vec<u64> = Vec::new();
        for event in &self.events {
            let w = event.window();
            edges.push(w.start);
            if w.end != u64::MAX {
                edges.push(w.end);
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// The largest egress-slowdown factor in the plan (1 if none), a bound
    /// on how many slots a degraded output may sit between transmissions.
    pub(crate) fn max_slow_factor(&self) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::EgressSlowdown { factor, .. } => Some(factor),
                _ => None,
            })
            .max()
            .unwrap_or(1)
    }

    /// Compiles the plan into one stage's runtime fault state (the geometry
    /// was validated first). Link faults land on the *downstream* stage (the
    /// receiver stops popping; credits do the upstream backpressure).
    pub(crate) fn compile(
        &self,
        stage: ClosStage,
        radix: usize,
        ingress_switches: usize,
        middle_switches: usize,
    ) -> StageFaults {
        let r = ingress_switches;
        let mut f = StageFaults {
            drop_event: None,
            dead_switches: Vec::new(),
            dead_paths: Vec::new(),
            dead_inputs: Vec::new(),
            stalled_in: Vec::new(),
            slowed_out: Vec::new(),
            impact: vec![ImpactCounters::default(); self.events.len()],
        };
        for (e, event) in self.events.iter().enumerate() {
            let w = event.window();
            match event.kind {
                FaultKind::MiddleDeath { switch } => match stage {
                    // The ingress stage sees middle deaths as dead *paths*
                    // (dispatch must steer around them); the middle stage
                    // sees them as its own switches going dark.
                    ClosStage::Ingress => f.dead_paths.push((e, switch, w)),
                    ClosStage::Middle => f.dead_switches.push((e, switch, w)),
                    ClosStage::Egress => {}
                },
                FaultKind::LinkFlap {
                    boundary,
                    switch,
                    output,
                } => {
                    // In-link flat index at the receiver, from the link-id
                    // decode in `Stage::apply_fwd`: the link from upstream
                    // switch `s`, output `o` lands at (switch o, input s).
                    match (boundary, stage) {
                        (LinkBoundary::IngressMiddle, ClosStage::Middle) => {
                            f.stalled_in.push((e, output * r + switch, w));
                        }
                        (LinkBoundary::MiddleEgress, ClosStage::Egress) => {
                            f.stalled_in.push((e, output * radix + switch, w));
                        }
                        _ => {}
                    }
                }
                FaultKind::EgressSlowdown { port, factor } => {
                    if stage == ClosStage::Egress {
                        // External port p is output p % N of egress switch
                        // p / N, so its flat (switch, output) index is p.
                        f.slowed_out.push((e, port, factor, w));
                    }
                }
                FaultKind::IngressPortDeath { port } => {
                    if stage == ClosStage::Ingress {
                        f.dead_inputs.push((e, port, w));
                    }
                }
                FaultKind::DropOnFull => {
                    let _ = middle_switches;
                    f.drop_event = Some(e);
                }
            }
        }
        f
    }

    /// Renders the plan as pretty JSON (an array of event objects).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("a fault plan always serializes")
    }
}

/// One event's accumulated impact counters (one set per stage, merged into
/// the ledger at report time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct ImpactCounters {
    /// Cells refused at a dead external ingress line.
    pub(crate) refused_cells: u64,
    /// Cells dropped at a full link FIFO (`DropOnFull` only).
    pub(crate) dropped_cells: u64,
    /// Cells stuck in a dead switch's egress FIFOs at end of run.
    pub(crate) stranded_cells: u64,
    /// Cell-slots spent ready-but-held on a flapped link or on a dead
    /// switch's inbound links (overlapping events each count their own).
    pub(crate) stalled_cell_slots: u64,
    /// Slots a slowed output sat gated with cells queued behind it.
    pub(crate) slowed_slots: u64,
}

impl ImpactCounters {
    pub(crate) fn merge(&mut self, other: &ImpactCounters) {
        self.refused_cells += other.refused_cells;
        self.dropped_cells += other.dropped_cells;
        self.stranded_cells += other.stranded_cells;
        self.stalled_cell_slots += other.stalled_cell_slots;
        self.slowed_slots += other.slowed_slots;
    }
}

/// One stage's compiled runtime fault state. Tiny scan-per-slot vectors —
/// plans hold a handful of events, and a stage with no armed plan carries
/// `None` instead, so the fault-free hot path pays nothing.
#[derive(Debug)]
pub(crate) struct StageFaults {
    /// Index of the plan's `DropOnFull` event, if any (whole-run).
    pub(crate) drop_event: Option<usize>,
    /// `(event, switch)` — this stage's switch is dark during the window.
    pub(crate) dead_switches: Vec<(usize, usize, Window)>,
    /// Ingress only: `(event, middle)` — dispatch must avoid the path.
    pub(crate) dead_paths: Vec<(usize, usize, Window)>,
    /// Ingress only: `(event, external port)` — the line refuses cells.
    pub(crate) dead_inputs: Vec<(usize, usize, Window)>,
    /// `(event, in-link flat index)` — the inbound link stops delivering.
    pub(crate) stalled_in: Vec<(usize, usize, Window)>,
    /// Egress only: `(event, out flat index, factor)` — output slowed.
    pub(crate) slowed_out: Vec<(usize, usize, u64, Window)>,
    /// Per-plan-event counters (this stage's contributions only).
    pub(crate) impact: Vec<ImpactCounters>,
}

impl StageFaults {
    /// Whether this stage's switch `s` is dark at `slot`.
    #[inline]
    pub(crate) fn switch_dead(&self, s: usize, slot: u64) -> bool {
        self.dead_switches
            .iter()
            .any(|&(_, sw, w)| sw == s && w.contains(slot))
    }

    /// Whether middle switch `p` is an unusable dispatch target at `slot`.
    #[inline]
    pub(crate) fn path_dead(&self, p: usize, slot: u64) -> bool {
        self.dead_paths
            .iter()
            .any(|&(_, sw, w)| sw == p && w.contains(slot))
    }

    /// Whether any dispatch path is dead at `slot` (switches the ingress
    /// spray into its credit-occupancy-aware mode).
    #[inline]
    pub(crate) fn reroutes_paths(&self, slot: u64) -> bool {
        self.dead_paths.iter().any(|&(_, _, w)| w.contains(slot))
    }

    /// The event refusing cells at external ingress `port` at `slot`.
    #[inline]
    pub(crate) fn dead_input_event(&self, port: usize, slot: u64) -> Option<usize> {
        self.dead_inputs
            .iter()
            .find(|&&(_, p, w)| p == port && w.contains(slot))
            .map(|&(e, _, _)| e)
    }

    /// Whether inbound link `li` is flap-stalled at `slot`.
    #[inline]
    pub(crate) fn in_stalled(&self, li: usize, slot: u64) -> bool {
        self.stalled_in
            .iter()
            .any(|&(_, l, w)| l == li && w.contains(slot))
    }

    /// Whether any fault gates this stage's switch `s`'s outputs at `slot`
    /// (an active egress slowdown on one of its output lines).
    #[inline]
    pub(crate) fn gates_switch(&self, s: usize, radix: usize, slot: u64) -> bool {
        self.slowed_out
            .iter()
            .any(|&(_, idx, _, w)| idx / radix == s && w.contains(slot))
    }
}

/// One fault's accounted impact, as reported in the [`FaultLedger`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultImpact {
    /// Index of the event in the plan (= ledger order).
    pub index: usize,
    /// Fault kind label (`"middle-death"`, `"link-flap"`, ...).
    pub fault: &'static str,
    /// Human-readable target (`"middle[2]"`, `"ingress port 7"`, ...).
    pub target: String,
    /// First slot the fault was active.
    pub start: u64,
    /// Slots the fault lasted; `None` = permanent.
    pub duration: Option<u64>,
    /// Cells refused at a dead external ingress line (accounted loss).
    pub refused_cells: u64,
    /// Cells dropped at full link FIFOs (accounted loss).
    pub dropped_cells: u64,
    /// Cells stuck in a dead switch's egress FIFOs when the run ended
    /// (not lost — recoverable on repair — but out of circulation).
    pub stranded_cells: u64,
    /// Cell-slots spent ready-but-held behind this fault (added latency).
    pub stalled_cell_slots: u64,
    /// Slots the degraded output sat gated with cells queued behind it
    /// (the degraded-throughput window, as observed).
    pub slowed_slots: u64,
}

impl Serialize for FaultImpact {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("FaultImpact", 10)?;
        st.serialize_field("index", &self.index)?;
        st.serialize_field("fault", &self.fault)?;
        st.serialize_field("target", &self.target)?;
        st.serialize_field("start", &self.start)?;
        st.serialize_field("duration", &self.duration)?;
        st.serialize_field("refused_cells", &self.refused_cells)?;
        st.serialize_field("dropped_cells", &self.dropped_cells)?;
        st.serialize_field("stranded_cells", &self.stranded_cells)?;
        st.serialize_field("stalled_cell_slots", &self.stalled_cell_slots)?;
        st.serialize_field("slowed_slots", &self.slowed_slots)?;
        st.end()
    }
}

/// The per-fault accounting attached to a faulted run's report: one
/// [`FaultImpact`] per plan event plus fabric-wide totals. The conservation
/// check balances against these totals — see the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultLedger {
    /// Per-event impact, in plan order.
    pub events: Vec<FaultImpact>,
    /// Total cells refused at dead external ingress lines.
    pub refused_cells: u64,
    /// Total cells dropped at full link FIFOs.
    pub dropped_cells: u64,
    /// Total cells stranded in dead switches' egress FIFOs at end of run.
    pub stranded_cells: u64,
    /// Total cell-slots spent ready-but-held behind faults.
    pub stalled_cell_slots: u64,
    /// Total gated-with-backlog slots across slowed outputs.
    pub slowed_slots: u64,
}

impl FaultLedger {
    /// Builds the ledger from the plan's events and the merged per-event
    /// counters.
    pub(crate) fn from_events(events: &[FaultEvent], merged: &[ImpactCounters]) -> Self {
        let rows: Vec<FaultImpact> = events
            .iter()
            .zip(merged)
            .enumerate()
            .map(|(index, (event, c))| FaultImpact {
                index,
                fault: event.kind.label(),
                target: event.kind.target(),
                start: event.start,
                duration: event.duration,
                refused_cells: c.refused_cells,
                dropped_cells: c.dropped_cells,
                stranded_cells: c.stranded_cells,
                stalled_cell_slots: c.stalled_cell_slots,
                slowed_slots: c.slowed_slots,
            })
            .collect();
        FaultLedger {
            refused_cells: rows.iter().map(|r| r.refused_cells).sum(),
            dropped_cells: rows.iter().map(|r| r.dropped_cells).sum(),
            stranded_cells: rows.iter().map(|r| r.stranded_cells).sum(),
            stalled_cell_slots: rows.iter().map(|r| r.stalled_cell_slots).sum(),
            slowed_slots: rows.iter().map(|r| r.slowed_slots).sum(),
            events: rows,
        }
    }
}

impl Serialize for FaultLedger {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("FaultLedger", 6)?;
        st.serialize_field("refused_cells", &self.refused_cells)?;
        st.serialize_field("dropped_cells", &self.dropped_cells)?;
        st.serialize_field("stranded_cells", &self.stranded_cells)?;
        st.serialize_field("stalled_cell_slots", &self.stalled_cell_slots)?;
        st.serialize_field("slowed_slots", &self.slowed_slots)?;
        st.serialize_field("events", &self.events)?;
        st.end()
    }
}

// Hand-written serde: an event is a flat object tagged by its "fault"
// label; a plan is a bare array of events. Unknown fields are rejected.
impl Serialize for FaultEvent {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("FaultEvent", 6)?;
        st.serialize_field("fault", &self.kind.label())?;
        match &self.kind {
            FaultKind::MiddleDeath { switch } => {
                st.serialize_field("switch", switch)?;
            }
            FaultKind::LinkFlap {
                boundary,
                switch,
                output,
            } => {
                st.serialize_field("boundary", &boundary.label())?;
                st.serialize_field("switch", switch)?;
                st.serialize_field("output", output)?;
            }
            FaultKind::EgressSlowdown { port, factor } => {
                st.serialize_field("port", port)?;
                st.serialize_field("factor", factor)?;
            }
            FaultKind::IngressPortDeath { port } => {
                st.serialize_field("port", port)?;
            }
            FaultKind::DropOnFull => {}
        }
        st.serialize_field("start", &self.start)?;
        if let Some(duration) = &self.duration {
            st.serialize_field("duration", duration)?;
        }
        st.end()
    }
}

impl<'de> Deserialize<'de> for FaultEvent {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct V;
        impl<'de> de::Visitor<'de> for V {
            type Value = FaultEvent;
            fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("a fault-event object with a \"fault\" label")
            }
            fn visit_map<A: de::MapAccess<'de>>(self, mut map: A) -> Result<FaultEvent, A::Error> {
                let mut fault: Option<String> = None;
                let mut boundary: Option<String> = None;
                let mut switch: Option<usize> = None;
                let mut output: Option<usize> = None;
                let mut port: Option<usize> = None;
                let mut factor: Option<u64> = None;
                let mut start = 0u64;
                let mut duration: Option<u64> = None;
                while let Some(key) = map.next_key::<String>()? {
                    match key.as_str() {
                        "fault" => fault = Some(map.next_value()?),
                        "boundary" => boundary = Some(map.next_value()?),
                        "switch" => switch = Some(map.next_value()?),
                        "output" => output = Some(map.next_value()?),
                        "port" => port = Some(map.next_value()?),
                        "factor" => factor = Some(map.next_value()?),
                        "start" => start = map.next_value()?,
                        "duration" => duration = Some(map.next_value()?),
                        other => {
                            return Err(de::Error::custom(format_args!(
                                "unknown fault-event field {other:?}"
                            )))
                        }
                    }
                }
                let fault = fault.ok_or_else(|| de::Error::custom("missing field \"fault\""))?;
                let need = |field: &'static str, value: Option<usize>| {
                    value.ok_or_else(|| {
                        de::Error::custom(format_args!("{fault:?} needs field {field:?}"))
                    })
                };
                let kind = match fault.as_str() {
                    "middle-death" => FaultKind::MiddleDeath {
                        switch: need("switch", switch)?,
                    },
                    "link-flap" => {
                        let boundary = match boundary.as_deref() {
                            Some("ingress-middle") => LinkBoundary::IngressMiddle,
                            Some("middle-egress") => LinkBoundary::MiddleEgress,
                            Some(other) => {
                                return Err(de::Error::custom(format_args!(
                                    "unknown link boundary {other:?}"
                                )))
                            }
                            None => {
                                return Err(de::Error::custom(
                                    "\"link-flap\" needs field \"boundary\"",
                                ))
                            }
                        };
                        FaultKind::LinkFlap {
                            boundary,
                            switch: need("switch", switch)?,
                            output: need("output", output)?,
                        }
                    }
                    "egress-slowdown" => FaultKind::EgressSlowdown {
                        port: need("port", port)?,
                        factor: factor.ok_or_else(|| {
                            de::Error::custom("\"egress-slowdown\" needs field \"factor\"")
                        })?,
                    },
                    "port-death" => FaultKind::IngressPortDeath {
                        port: need("port", port)?,
                    },
                    "drop-on-full" => FaultKind::DropOnFull,
                    other => {
                        return Err(de::Error::custom(format_args!(
                            "unknown fault kind {other:?}"
                        )))
                    }
                };
                Ok(FaultEvent {
                    kind,
                    start,
                    duration,
                })
            }
        }
        deserializer.deserialize_any(V)
    }
}

impl Serialize for FaultPlan {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.events.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for FaultPlan {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(FaultPlan {
            events: Vec::<FaultEvent>::deserialize(deserializer)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        FaultPlan::new([
            FaultEvent::permanent(FaultKind::MiddleDeath { switch: 1 }, 500),
            FaultEvent::windowed(
                FaultKind::LinkFlap {
                    boundary: LinkBoundary::IngressMiddle,
                    switch: 0,
                    output: 2,
                },
                200,
                150,
            ),
            FaultEvent::windowed(FaultKind::EgressSlowdown { port: 3, factor: 4 }, 100, 900),
            FaultEvent::permanent(FaultKind::IngressPortDeath { port: 7 }, 1_000),
        ])
    }

    #[test]
    fn plans_round_trip_through_json() {
        let plan = sample_plan();
        let json = plan.to_json();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.to_json(), json);
        // The empty plan is a bare empty array.
        let empty: FaultPlan = serde_json::from_str("[]").unwrap();
        assert!(empty.is_empty());
        // Unknown kinds and fields are rejected.
        assert!(serde_json::from_str::<FaultPlan>("[{\"fault\": \"gremlin\"}]").is_err());
        assert!(
            serde_json::from_str::<FaultPlan>("[{\"fault\": \"drop-on-full\", \"x\": 1}]").is_err()
        );
        // Kind-specific fields are required.
        assert!(serde_json::from_str::<FaultPlan>("[{\"fault\": \"middle-death\"}]").is_err());
        assert!(serde_json::from_str::<FaultPlan>(
            "[{\"fault\": \"link-flap\", \"switch\": 0, \"output\": 1, \"duration\": 5}]"
        )
        .is_err());
    }

    #[test]
    fn validation_checks_geometry_and_windows() {
        let plan = sample_plan();
        assert!(plan.validate(3, 3, 3).is_ok());
        // middle-death switch 1 needs m >= 2.
        assert_eq!(
            plan.validate(3, 3, 1),
            Err(FaultPlanError::BadMiddleSwitch(1, 1))
        );
        // link-flap output 2 targets middle switch 2: needs m >= 3... but
        // the death check fires first only for smaller m; isolate it.
        let flap = FaultPlan::new([FaultEvent::windowed(
            FaultKind::LinkFlap {
                boundary: LinkBoundary::MiddleEgress,
                switch: 1,
                output: 5,
            },
            0,
            10,
        )]);
        assert_eq!(
            flap.validate(3, 3, 2),
            Err(FaultPlanError::BadLinkOutput(5, 3))
        );
        let permanent_flap = FaultPlan::new([FaultEvent::permanent(
            FaultKind::LinkFlap {
                boundary: LinkBoundary::IngressMiddle,
                switch: 0,
                output: 0,
            },
            10,
        )]);
        assert_eq!(
            permanent_flap.validate(3, 3, 2),
            Err(FaultPlanError::PermanentFlap)
        );
        let empty_window = FaultPlan::new([FaultEvent::windowed(
            FaultKind::MiddleDeath { switch: 0 },
            5,
            0,
        )]);
        assert_eq!(
            empty_window.validate(3, 3, 2),
            Err(FaultPlanError::EmptyWindow)
        );
        let slow = FaultPlan::new([FaultEvent::permanent(
            FaultKind::EgressSlowdown { port: 0, factor: 1 },
            0,
        )]);
        assert_eq!(slow.validate(3, 3, 2), Err(FaultPlanError::BadFactor(1)));
        let late_drop = FaultPlan::new([FaultEvent::permanent(FaultKind::DropOnFull, 5)]);
        assert_eq!(
            late_drop.validate(3, 3, 2),
            Err(FaultPlanError::WindowedDropOnFull)
        );
        let twice = FaultPlan::new([
            FaultEvent::permanent(FaultKind::DropOnFull, 0),
            FaultEvent::permanent(FaultKind::DropOnFull, 0),
        ]);
        assert_eq!(
            twice.validate(3, 3, 2),
            Err(FaultPlanError::DuplicateDropOnFull)
        );
        let bad_port = FaultPlan::new([FaultEvent::permanent(
            FaultKind::IngressPortDeath { port: 9 },
            0,
        )]);
        assert_eq!(
            bad_port.validate(3, 3, 2),
            Err(FaultPlanError::BadPort(9, 9))
        );
    }

    #[test]
    fn windows_and_edges_are_half_open() {
        let event = FaultEvent::windowed(FaultKind::MiddleDeath { switch: 0 }, 10, 5);
        let w = event.window();
        assert!(!w.contains(9));
        assert!(w.contains(10));
        assert!(w.contains(14));
        assert!(!w.contains(15));
        let forever = FaultEvent::permanent(FaultKind::MiddleDeath { switch: 0 }, 3).window();
        assert!(forever.contains(u64::MAX - 1));
        let plan = sample_plan();
        assert_eq!(plan.edges(), vec![100, 200, 350, 500, 1_000]);
        assert_eq!(plan.max_slow_factor(), 4);
    }

    #[test]
    fn compile_places_faults_on_the_right_stages() {
        let plan = sample_plan();
        let (n, r, m) = (3, 3, 3);
        let ingress = plan.compile(ClosStage::Ingress, n, r, m);
        let middle = plan.compile(ClosStage::Middle, r, r, m);
        let egress = plan.compile(ClosStage::Egress, n, r, m);
        assert_eq!(ingress.dead_paths.len(), 1);
        assert_eq!(ingress.dead_inputs.len(), 1);
        assert!(ingress.dead_switches.is_empty());
        assert_eq!(middle.dead_switches.len(), 1);
        // Flap ingress-middle switch 0 output 2 → middle switch 2, input 0
        // → flat in-link index 2·r + 0.
        assert_eq!(middle.stalled_in, vec![(1, 2 * r, plan.events[1].window())]);
        assert!(middle.slowed_out.is_empty());
        // Slowdown on external port 3 → egress switch 1, output 0 → flat 3.
        assert_eq!(egress.slowed_out.len(), 1);
        assert_eq!(egress.slowed_out[0].1, 3);
        assert!(egress.gates_switch(1, n, 150));
        assert!(!egress.gates_switch(0, n, 150));
        assert!(!egress.gates_switch(1, n, 1_500));
        assert!(middle.switch_dead(1, 700));
        assert!(!middle.switch_dead(1, 400));
        assert!(ingress.path_dead(1, 700));
        assert!(ingress.reroutes_paths(700));
        assert!(!ingress.reroutes_paths(400));
        assert_eq!(ingress.dead_input_event(7, 1_200), Some(3));
        assert_eq!(ingress.dead_input_event(7, 900), None);
        assert!(middle.in_stalled(2 * r, 300));
        assert!(!middle.in_stalled(2 * r, 360));
    }

    #[test]
    fn ledger_merges_and_totals_per_event_counters() {
        let plan = sample_plan();
        let mut a = vec![ImpactCounters::default(); plan.events.len()];
        let mut b = vec![ImpactCounters::default(); plan.events.len()];
        a[0].stalled_cell_slots = 7;
        a[0].stranded_cells = 2;
        b[1].stalled_cell_slots = 5;
        b[3].refused_cells = 11;
        for (x, y) in a.iter_mut().zip(&b) {
            x.merge(y);
        }
        let ledger = FaultLedger::from_events(&plan.events, &a);
        assert_eq!(ledger.events.len(), 4);
        assert_eq!(ledger.events[0].fault, "middle-death");
        assert_eq!(ledger.events[0].target, "middle[1]");
        assert_eq!(ledger.events[0].stranded_cells, 2);
        assert_eq!(ledger.stalled_cell_slots, 12);
        assert_eq!(ledger.refused_cells, 11);
        assert_eq!(ledger.stranded_cells, 2);
    }
}
