//! Structured results of one fabric run: per-port, per-output and
//! matrix-level accounting.

use obs::Log2Histogram;
use pktbuf::BufferStats;
use serde::{Serialize, Serializer};

/// Serializable summary of a [`Log2Histogram`]: sample count, exact extrema,
/// integer-rank percentiles and the raw log2 bucket counts. Derived at report
/// time; absent from reports when the corresponding probe was not armed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramReport {
    /// Recorded samples.
    pub count: u64,
    /// Smallest recorded sample (0 when empty).
    pub min: u64,
    /// Largest recorded sample.
    pub max: u64,
    /// Integer-rank median (see `obs::Log2Histogram::percentile`).
    pub p50: u64,
    /// Integer-rank 95th percentile.
    pub p95: u64,
    /// Integer-rank 99th percentile.
    pub p99: u64,
    /// Log2 bucket counts; index `i` counts samples of bit length `i`.
    pub buckets: Vec<u64>,
}

impl HistogramReport {
    /// Summarizes a histogram for inclusion in a report.
    pub fn from_hist(hist: &Log2Histogram) -> Self {
        HistogramReport {
            count: hist.count(),
            min: hist.min(),
            max: hist.max(),
            p50: hist.p50(),
            p95: hist.p95(),
            p99: hist.p99(),
            buckets: hist.buckets().to_vec(),
        }
    }
}

impl Serialize for HistogramReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("HistogramReport", 7)?;
        st.serialize_field("count", &self.count)?;
        st.serialize_field("min", &self.min)?;
        st.serialize_field("max", &self.max)?;
        st.serialize_field("p50", &self.p50)?;
        st.serialize_field("p95", &self.p95)?;
        st.serialize_field("p99", &self.p99)?;
        st.serialize_field("buckets", &self.buckets)?;
        st.end()
    }
}

/// One ingress port's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct PortReport {
    /// Design of the port's buffer ("RADS", "CFDS", "DRAM-only").
    pub design: &'static str,
    /// Cells offered on this port's line (the buffer accepts these minus
    /// its tail drops).
    pub arrivals: u64,
    /// Cells granted out of this port's buffer (departed the ingress side).
    pub grants: u64,
    /// Cells still inside the buffer when the run ended (a residual partial
    /// tail batch, never lost — see cell conservation).
    pub resident_cells: u64,
    /// The buffer's own statistics.
    pub stats: BufferStats,
}

impl Serialize for PortReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("PortReport", 5)?;
        st.serialize_field("design", &self.design)?;
        st.serialize_field("arrivals", &self.arrivals)?;
        st.serialize_field("grants", &self.grants)?;
        st.serialize_field("resident_cells", &self.resident_cells)?;
        st.serialize_field("stats", &self.stats)?;
        st.end()
    }
}

/// One egress port's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct EgressReport {
    /// Cells transmitted onto the output line.
    pub transmitted: u64,
    /// Deepest the transmit FIFO has been.
    pub peak_queue_depth: u64,
    /// Largest end-to-end latency (arrival to transmission) observed, slots.
    pub max_latency_slots: u64,
    /// Mean end-to-end latency over transmitted cells, slots.
    pub mean_latency_slots: f64,
    /// Histogram-derived median latency in slots; present only when the
    /// port's latency histogram was armed (`ObsConfig` latency probes).
    pub latency_p50_slots: Option<u64>,
    /// Histogram-derived 95th-percentile latency, when armed.
    pub latency_p95_slots: Option<u64>,
    /// Histogram-derived 99th-percentile latency, when armed.
    pub latency_p99_slots: Option<u64>,
}

impl Serialize for EgressReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("EgressReport", 4)?;
        st.serialize_field("transmitted", &self.transmitted)?;
        st.serialize_field("peak_queue_depth", &self.peak_queue_depth)?;
        st.serialize_field("max_latency_slots", &self.max_latency_slots)?;
        st.serialize_field("mean_latency_slots", &self.mean_latency_slots)?;
        // Instrumented-only fields are omitted (not null) when unarmed so the
        // off path serializes byte-identically to the pre-obs schema.
        if let Some(p50) = &self.latency_p50_slots {
            st.serialize_field("latency_p50_slots", p50)?;
        }
        if let Some(p95) = &self.latency_p95_slots {
            st.serialize_field("latency_p95_slots", p95)?;
        }
        if let Some(p99) = &self.latency_p99_slots {
            st.serialize_field("latency_p99_slots", p99)?;
        }
        st.end()
    }
}

/// The result of one whole fabric run.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricRunReport {
    /// Number of ports.
    pub ports: usize,
    /// Arbiter label ("islip" / "maximal").
    pub arbiter: &'static str,
    /// Slots simulated, including the drain phase.
    pub slots: u64,
    /// Slots of the live-arrival phase.
    pub active_slots: u64,
    /// Cells offered across all ingress lines (includes cells a dropping
    /// design refused at its tail SRAM).
    pub arrivals: u64,
    /// Crossbar matches made (= requests issued to ingress buffers).
    pub matches: u64,
    /// Cells granted out of the ingress buffers.
    pub grants: u64,
    /// Cells transmitted on the output lines.
    pub transmitted: u64,
    /// Cells lost (drops + misses + order violations over every port); the
    /// smoke gates require 0.
    pub lost_cells: u64,
    /// Cells still resident in ingress buffers when the run ended.
    pub resident_cells: u64,
    /// Matches made *during the active phase* per port-slot of the active
    /// phase — how much of the crossbar's capacity the scheduler actually
    /// sustained while traffic was offered (an admissible load `ρ` sustains
    /// utilisation `≈ ρ`; drain-phase matches are excluded, so a saturated
    /// scheduler that only catches up during the drain scores low).
    pub crossbar_utilization: f64,
    /// Mean end-to-end latency over all transmitted cells, slots.
    pub mean_latency_slots: f64,
    /// Largest end-to-end latency observed on any output, slots.
    pub max_latency_slots: u64,
    /// Merged end-to-end latency histogram over every output (count, min,
    /// max, p50/p95/p99, log2 buckets); present only when the latency
    /// probes were armed.
    pub latency_histogram: Option<HistogramReport>,
    /// Whether every worst-case guarantee held on every port.
    pub zero_loss: bool,
    /// Per-ingress-port outcomes.
    pub per_port: Vec<PortReport>,
    /// Per-egress-port outcomes.
    pub per_output: Vec<EgressReport>,
    /// Row-major `ports × ports` traffic matrix: arrivals at input `i`
    /// destined to output `j`.
    pub arrivals_matrix: Vec<u64>,
    /// Row-major `ports × ports`: departures from input `i`'s VOQ `j`.
    pub departures_matrix: Vec<u64>,
}

impl FabricRunReport {
    /// Checks cell conservation end to end: per flow `(i, j)`, departures
    /// never exceed arrivals; per port, offered arrivals = departures +
    /// residents + tail drops; per output, transmissions equal the
    /// departures aimed at it (egress FIFOs are flushed before a report is
    /// built); and fabric-wide, arrivals = transmitted + resident + dropped.
    pub fn conservation_holds(&self) -> bool {
        self.conservation_deficit() == Some(0)
    }

    /// The same check, but tolerating cells granted to an egress FIFO and
    /// never transmitted — exactly what a mid-run switch death freezes in
    /// place. Returns `None` when some balance is outright wrong (counts
    /// that no fault can explain), otherwise `Some(deficit)` where
    /// `deficit` is the number of frozen egress cells: per output
    /// `transmitted ≤ aimed` with the shortfalls summed, and fabric-wide
    /// `arrivals = transmitted + resident + dropped + deficit`. A healthy
    /// run has deficit 0 ([`FabricRunReport::conservation_holds`]); a
    /// faulted Clos run must account every deficit cell as stranded in its
    /// fault ledger.
    pub fn conservation_deficit(&self) -> Option<u64> {
        let p = self.ports;
        let flows_ok = self
            .arrivals_matrix
            .iter()
            .zip(&self.departures_matrix)
            .all(|(a, d)| d <= a);
        let ports_ok = self.per_port.iter().enumerate().all(|(i, port)| {
            let arrivals: u64 = self.arrivals_matrix[i * p..(i + 1) * p].iter().sum();
            let departures: u64 = self.departures_matrix[i * p..(i + 1) * p].iter().sum();
            arrivals == port.arrivals
                && departures == port.grants
                && port.arrivals == port.grants + port.resident_cells + port.stats.drops
        });
        let mut deficit = 0u64;
        let outputs_ok = self.per_output.iter().enumerate().all(|(j, output)| {
            let aimed: u64 = (0..p).map(|i| self.departures_matrix[i * p + j]).sum();
            deficit += aimed.saturating_sub(output.transmitted);
            output.transmitted <= aimed
        });
        let dropped: u64 = self.per_port.iter().map(|port| port.stats.drops).sum();
        let balanced = flows_ok
            && ports_ok
            && outputs_ok
            && self.arrivals == self.transmitted + self.resident_cells + dropped + deficit;
        balanced.then_some(deficit)
    }
}

impl Serialize for FabricRunReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("FabricRunReport", 18)?;
        st.serialize_field("ports", &self.ports)?;
        st.serialize_field("arbiter", &self.arbiter)?;
        st.serialize_field("slots", &self.slots)?;
        st.serialize_field("active_slots", &self.active_slots)?;
        st.serialize_field("arrivals", &self.arrivals)?;
        st.serialize_field("matches", &self.matches)?;
        st.serialize_field("grants", &self.grants)?;
        st.serialize_field("transmitted", &self.transmitted)?;
        st.serialize_field("lost_cells", &self.lost_cells)?;
        st.serialize_field("resident_cells", &self.resident_cells)?;
        st.serialize_field("crossbar_utilization", &self.crossbar_utilization)?;
        st.serialize_field("mean_latency_slots", &self.mean_latency_slots)?;
        st.serialize_field("max_latency_slots", &self.max_latency_slots)?;
        st.serialize_field("zero_loss", &self.zero_loss)?;
        st.serialize_field("per_port", &self.per_port)?;
        st.serialize_field("per_output", &self.per_output)?;
        st.serialize_field("arrivals_matrix", &self.arrivals_matrix)?;
        st.serialize_field("departures_matrix", &self.departures_matrix)?;
        // Omitted entirely when the latency probes were not armed, keeping
        // uninstrumented reports byte-identical to the pre-obs schema.
        if let Some(latency) = &self.latency_histogram {
            st.serialize_field("latency_histogram", latency)?;
        }
        st.end()
    }
}
