//! End-to-end reliable transport over the Clos fabric: ack/dedup sink
//! state, the transport-level report, and the recovery metric.
//!
//! The fabric carries cells; it never *recovers* them — PR 8's fault layer
//! accounts every loss in a ledger but nothing retries. This module is the
//! delivery half of the closed-loop transport (the sending half is
//! [`traffic::ClosedLoopSource`]): egress ports acknowledge every delivered
//! cell on the existing credit-return path and deduplicate retransmitted
//! copies, so the run as a whole provides exactly-once delivery on top of a
//! lossy fabric.
//!
//! End-to-end conservation nests the PR-8 fault ledger one level up. The
//! fabric-level identity (arrivals = delivered + resident + drops + …) still
//! closes per run; the transport identity closes over the *retry loop*:
//!
//! ```text
//! injected = acked + in_flight + retransmissions_outstanding + gave_up
//! acked    = delivered_unique       (every unique delivery acks exactly once)
//! delivered (fabric) = delivered_unique + duplicates_filtered
//! duplicate_deliveries == 0
//! ```
//!
//! checked by `ClosRunReport::transport_conservation_holds`. Every
//! retransmission is attributable: a copy is only ever sent after a timer
//! fires (`retransmitted ≤ timeouts`), and a timer only fires when the
//! original was lost, stranded, refused (all ledgered by the fault layer) or
//! late.
//!
//! [`RecoveryReport`] turns "the fabric healed" into a number: slots from
//! the close of the last finite fault window until goodput regains ≥95% of a
//! fault-free twin run's, bucket by bucket.
//!
//! # Cut-through buffers required
//!
//! Closed-loop runs need fabric buffers whose accepted cells always become
//! requestable — for RADS buffers, granularity 1. Batched writeback
//! (granularity > 1) parks a sub-batch tail as a *permanent resident*: the
//! open-loop drain correctly reports it as resident-not-lost, but a reliable
//! sender keeps retransmitting it until the stale copies themselves fill a
//! DRAM batch, which turns every trickle flow into a timeout storm.

use serde::ser::SerializeStruct as _;
use serde::{Serialize, Serializer};
use std::collections::BTreeSet;

/// Parameters of the reliable transport layered over a Clos run.
///
/// The sender-side fields mirror [`traffic::ClosedLoopConfig`] (see
/// [`TransportConfig::source_params`]); `goodput_bucket` is the sink-side
/// histogram resolution used by the recovery metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransportConfig {
    /// Initial / minimum retransmission timeout, in slots.
    pub rto_initial: u64,
    /// Upper bound on any backed-off RTO, in slots.
    pub rto_cap: u64,
    /// Retransmission attempts before a cell is abandoned.
    pub max_retries: u32,
    /// Initial AIMD congestion window, in cells.
    pub cwnd_init: u64,
    /// Maximum AIMD congestion window, in cells.
    pub cwnd_max: u64,
    /// Goodput histogram bucket width, in slots (clamped to ≥ 1).
    pub goodput_bucket: u64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            rto_initial: 32,
            rto_cap: 1024,
            max_retries: 32,
            cwnd_init: 2,
            cwnd_max: 32,
            goodput_bucket: 200,
        }
    }
}

impl TransportConfig {
    /// The sender-side slice of this config, for building
    /// [`traffic::ClosedLoopSource`]s.
    pub fn source_params(&self) -> traffic::ClosedLoopConfig {
        traffic::ClosedLoopConfig {
            rto_initial: self.rto_initial,
            rto_cap: self.rto_cap,
            max_retries: self.max_retries,
            cwnd_init: self.cwnd_init,
            cwnd_max: self.cwnd_max,
        }
        .normalized()
    }
}

/// Receiver-side transport state attached to the egress stage: per-flow
/// dedup (cumulative prefix + out-of-order set) and the goodput histogram.
#[derive(Debug, Clone)]
pub(crate) struct SinkState {
    ext_ports: usize,
    bucket: u64,
    /// `cum[flow]` = all seqs `< cum` delivered, where
    /// `flow = src * ext_ports + dest`.
    cum: Vec<u64>,
    /// Out-of-order delivered seqs (`≥ cum`) per flow.
    ooo: Vec<BTreeSet<u64>>,
    delivered_unique: u64,
    duplicates_filtered: u64,
    /// Unique deliveries per `bucket`-slot window, indexed by `slot/bucket`.
    goodput: Vec<u64>,
}

impl SinkState {
    pub(crate) fn new(ext_ports: usize, goodput_bucket: u64) -> Self {
        SinkState {
            ext_ports,
            bucket: goodput_bucket.max(1),
            cum: vec![0; ext_ports * ext_ports],
            ooo: vec![BTreeSet::new(); ext_ports * ext_ports],
            delivered_unique: 0,
            duplicates_filtered: 0,
            goodput: Vec::new(),
        }
    }

    /// Accepts one delivery; returns `true` if the cell was new (first
    /// delivery of this `(src, dest, seq)`), `false` for a filtered
    /// duplicate.
    pub(crate) fn deliver(&mut self, src: u32, dest: u32, seq: u64, slot: u64) -> bool {
        let flow = src as usize * self.ext_ports + dest as usize;
        if seq < self.cum[flow] || self.ooo[flow].contains(&seq) {
            self.duplicates_filtered += 1;
            return false;
        }
        if seq == self.cum[flow] {
            self.cum[flow] += 1;
            while self.ooo[flow].remove(&self.cum[flow]) {
                self.cum[flow] += 1;
            }
        } else {
            self.ooo[flow].insert(seq);
        }
        self.delivered_unique += 1;
        let b = (slot / self.bucket) as usize;
        if b >= self.goodput.len() {
            self.goodput.resize(b + 1, 0);
        }
        self.goodput[b] += 1;
        true
    }

    pub(crate) fn delivered_unique(&self) -> u64 {
        self.delivered_unique
    }

    pub(crate) fn duplicates_filtered(&self) -> u64 {
        self.duplicates_filtered
    }

    /// Deliveries the dedup state cannot account for: any accepted-as-unique
    /// cell not present in the per-flow structures. Always 0 unless the
    /// sink itself is buggy — reported so the invariant is *checked*, not
    /// assumed.
    pub(crate) fn duplicate_deliveries(&self) -> u64 {
        let accounted: u64 = self
            .cum
            .iter()
            .zip(&self.ooo)
            .map(|(c, o)| c + o.len() as u64)
            .sum();
        self.delivered_unique.saturating_sub(accounted)
    }

    pub(crate) fn goodput(&self) -> &[u64] {
        &self.goodput
    }

    pub(crate) fn bucket(&self) -> u64 {
        self.bucket
    }
}

/// Transport-level results of a closed-loop Clos run, attached to
/// `ClosRunReport` when the transport is enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportReport {
    /// Initial/minimum RTO the sources ran with, in slots.
    pub rto_initial: u64,
    /// RTO backoff cap, in slots.
    pub rto_cap: u64,
    /// Retry budget per cell.
    pub max_retries: u32,
    /// Initial congestion window, in cells.
    pub cwnd_init: u64,
    /// Maximum congestion window, in cells.
    pub cwnd_max: u64,
    /// Goodput histogram bucket width, in slots.
    pub goodput_bucket: u64,
    /// Fresh cells injected across all sources (first transmissions).
    pub injected_cells: u64,
    /// Retransmission copies sent across all sources.
    pub retransmitted_cells: u64,
    /// Retransmission timers fired across all sources.
    pub timeouts_fired: u64,
    /// Unique cells acknowledged back to their source.
    pub acked_cells: u64,
    /// Unique cells the sinks delivered (first copies).
    pub delivered_unique: u64,
    /// Retransmitted copies the sinks filtered as duplicates.
    pub duplicates_filtered: u64,
    /// Deliveries that escaped dedup — the exactly-once violation count,
    /// gated to 0.
    pub duplicate_deliveries: u64,
    /// Cells whose retry budget was exhausted without an ack.
    pub gave_up_cells: u64,
    /// Cells still carrying a live retransmission timer at end of run.
    pub in_flight_at_end: u64,
    /// Cells queued for retransmission (timer fired, copy not yet sent) at
    /// end of run.
    pub retransmissions_outstanding_at_end: u64,
    /// Unique deliveries per `goodput_bucket`-slot window.
    pub goodput: Vec<u64>,
    /// Transport-layer latency (first injection to ack) merged over every
    /// source, when the latency probes were armed via `ClosFabric::arm_obs`.
    /// Unlike the fabric-level latency histogram — which times each
    /// *delivered copy* from its last injection — this spans retransmissions
    /// and resurrections, so recovery tails are not under-counted.
    pub first_injection_latency: Option<crate::HistogramReport>,
}

impl Serialize for TransportReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("TransportReport", 17)?;
        st.serialize_field("rto_initial", &self.rto_initial)?;
        st.serialize_field("rto_cap", &self.rto_cap)?;
        st.serialize_field("max_retries", &self.max_retries)?;
        st.serialize_field("cwnd_init", &self.cwnd_init)?;
        st.serialize_field("cwnd_max", &self.cwnd_max)?;
        st.serialize_field("goodput_bucket", &self.goodput_bucket)?;
        st.serialize_field("injected_cells", &self.injected_cells)?;
        st.serialize_field("retransmitted_cells", &self.retransmitted_cells)?;
        st.serialize_field("timeouts_fired", &self.timeouts_fired)?;
        st.serialize_field("acked_cells", &self.acked_cells)?;
        st.serialize_field("delivered_unique", &self.delivered_unique)?;
        st.serialize_field("duplicates_filtered", &self.duplicates_filtered)?;
        st.serialize_field("duplicate_deliveries", &self.duplicate_deliveries)?;
        st.serialize_field("gave_up_cells", &self.gave_up_cells)?;
        st.serialize_field("in_flight_at_end", &self.in_flight_at_end)?;
        st.serialize_field(
            "retransmissions_outstanding_at_end",
            &self.retransmissions_outstanding_at_end,
        )?;
        st.serialize_field("goodput", &self.goodput)?;
        // Omitted when the latency probes were not armed, keeping
        // uninstrumented transport reports byte-identical.
        if let Some(latency) = &self.first_injection_latency {
            st.serialize_field("first_injection_latency", latency)?;
        }
        st.end()
    }
}

/// Time-to-recover: how long after the last fault window closed did the
/// faulted run's goodput regain ≥95% of the fault-free twin's?
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Slot at which the last finite fault window closed.
    pub fault_close_slot: u64,
    /// Goodput bucket width both runs were measured with, in slots.
    pub bucket_slots: u64,
    /// Whether goodput recovered within the measured horizon.
    pub recovered: bool,
    /// First slot (bucket boundary) at which the ≥95% criterion held, if
    /// recovery was observed.
    pub recovery_slot: Option<u64>,
    /// `recovery_slot - fault_close_slot`, if recovery was observed.
    pub slots_to_recover: Option<u64>,
    /// Faulted run's transport-layer latency median (first injection to
    /// ack), in slots; present when its latency probes were armed.
    pub latency_p50_slots: Option<u64>,
    /// Faulted run's transport-layer 95th-percentile latency, when armed.
    pub latency_p95_slots: Option<u64>,
    /// Faulted run's transport-layer 99th-percentile latency, when armed.
    pub latency_p99_slots: Option<u64>,
}

impl Serialize for RecoveryReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("RecoveryReport", 5)?;
        st.serialize_field("fault_close_slot", &self.fault_close_slot)?;
        st.serialize_field("bucket_slots", &self.bucket_slots)?;
        st.serialize_field("recovered", &self.recovered)?;
        st.serialize_field("recovery_slot", &self.recovery_slot)?;
        st.serialize_field("slots_to_recover", &self.slots_to_recover)?;
        // Omitted when the faulted run carried no latency probes, keeping
        // pre-obs recovery reports byte-identical.
        if let Some(p50) = &self.latency_p50_slots {
            st.serialize_field("latency_p50_slots", p50)?;
        }
        if let Some(p95) = &self.latency_p95_slots {
            st.serialize_field("latency_p95_slots", p95)?;
        }
        if let Some(p99) = &self.latency_p99_slots {
            st.serialize_field("latency_p99_slots", p99)?;
        }
        st.end()
    }
}

impl RecoveryReport {
    /// Measures time-to-recover from a fault-free `baseline` run and a
    /// `faulted` twin (same geometry, sources and transport config; only the
    /// fault plan differs).
    ///
    /// Returns `None` when the comparison is not meaningful: either run
    /// lacks a transport report, the goodput buckets differ, or the faulted
    /// run has no finite fault window to recover *from*.
    ///
    /// The scan starts at the first full bucket after the last finite fault
    /// window closes and accepts the first bucket where
    /// `faulted ≥ 95% · baseline`; only buckets within the baseline's
    /// recorded horizon count (a bucket past it has no reference value).
    pub fn measure(
        baseline: &crate::ClosRunReport,
        faulted: &crate::ClosRunReport,
    ) -> Option<RecoveryReport> {
        let base_t = baseline.transport.as_ref()?;
        let fault_t = faulted.transport.as_ref()?;
        if base_t.goodput_bucket != fault_t.goodput_bucket {
            return None;
        }
        let bucket = base_t.goodput_bucket.max(1);
        let close = faulted
            .faults
            .as_ref()?
            .events
            .iter()
            .filter_map(|e| e.duration.map(|d| e.start.saturating_add(d)))
            .max()?;
        let first_bucket = close.div_ceil(bucket) as usize;
        let horizon = base_t.goodput.len().min(fault_t.goodput.len());
        let hist = fault_t.first_injection_latency.as_ref();
        let mut report = RecoveryReport {
            fault_close_slot: close,
            bucket_slots: bucket,
            recovered: false,
            recovery_slot: None,
            slots_to_recover: None,
            latency_p50_slots: hist.map(|h| h.p50),
            latency_p95_slots: hist.map(|h| h.p95),
            latency_p99_slots: hist.map(|h| h.p99),
        };
        for b in first_bucket..horizon {
            if fault_t.goodput[b] * 100 >= base_t.goodput[b] * 95 {
                let slot = (b as u64 + 1) * bucket;
                report.recovered = true;
                report.recovery_slot = Some(slot);
                report.slots_to_recover = Some(slot - close);
                break;
            }
        }
        Some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_dedups_and_tracks_goodput() {
        let mut sink = SinkState::new(2, 10);
        assert!(sink.deliver(0, 1, 0, 0));
        assert!(sink.deliver(0, 1, 2, 5), "out of order is still unique");
        assert!(!sink.deliver(0, 1, 0, 7), "retransmit copy filtered");
        assert!(sink.deliver(0, 1, 1, 12), "gap fill drains the ooo set");
        assert!(!sink.deliver(0, 1, 2, 13), "late copy of ooo cell filtered");
        assert_eq!(sink.delivered_unique(), 3);
        assert_eq!(sink.duplicates_filtered(), 2);
        assert_eq!(sink.duplicate_deliveries(), 0);
        assert_eq!(sink.goodput(), &[2, 1]);
        assert_eq!(sink.bucket(), 10);
    }

    #[test]
    fn sink_keeps_flows_independent() {
        let mut sink = SinkState::new(3, 100);
        assert!(sink.deliver(0, 1, 0, 0));
        // Same seq, different (src, dest): distinct flows, both unique.
        assert!(sink.deliver(1, 0, 0, 0));
        assert!(sink.deliver(0, 2, 0, 0));
        assert_eq!(sink.delivered_unique(), 3);
        assert_eq!(sink.duplicates_filtered(), 0);
    }

    #[test]
    fn source_params_round_trips_the_sender_fields() {
        let cfg = TransportConfig {
            rto_initial: 7,
            rto_cap: 70,
            max_retries: 5,
            cwnd_init: 3,
            cwnd_max: 9,
            goodput_bucket: 50,
        };
        let p = cfg.source_params();
        assert_eq!(
            (
                p.rto_initial,
                p.rto_cap,
                p.max_retries,
                p.cwnd_init,
                p.cwnd_max
            ),
            (7, 70, 5, 3, 9)
        );
    }
}
