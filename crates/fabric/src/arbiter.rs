//! Crossbar arbiters: the per-slot matching of ingress VOQs to egress ports.
//!
//! Two algorithms are provided behind one state machine,
//! [`CrossbarArbiter`]:
//!
//! * [`ArbiterKind::Islip`] — the iterative request/grant/accept scheduler of
//!   McKeown's iSLIP: every unmatched output grants to the requesting input
//!   closest to its round-robin grant pointer, every input accepts the
//!   granting output closest to its accept pointer, and (in the first
//!   iteration only, as in the original algorithm) accepted pointers advance
//!   one past the match — the "slip" that desynchronises the outputs and
//!   yields 100% throughput under admissible uniform traffic.
//! * [`ArbiterKind::Maximal`] — a greedy maximal-matching baseline: inputs
//!   are visited in a rotating priority order and each takes the first
//!   eligible free output after its scan pointer. Cheaper and simpler, but
//!   without iSLIP's desynchronisation argument.
//!
//! Both algorithms are deterministic functions of their pointer state and the
//! eligibility matrix, which is what makes whole-fabric runs reproducible.
//! On a **contention-free** matrix — every input has traffic for at most one
//! output and every output is wanted by at most one input — both produce the
//! same (complete) matching; the unit tests pin that equivalence.

/// Which crossbar scheduling algorithm a fabric runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbiterKind {
    /// iSLIP-style iterative request/grant/accept.
    Islip {
        /// Matching iterations per slot. `0` means *auto*: `⌈log₂ ports⌉`,
        /// the classic convergence bound.
        iterations: usize,
    },
    /// Greedy maximal matching with rotating input priority.
    Maximal,
}

impl ArbiterKind {
    /// The effective iteration count for a fabric of `ports` ports.
    pub fn effective_iterations(self, ports: usize) -> usize {
        match self {
            ArbiterKind::Islip { iterations: 0 } => {
                (usize::BITS - ports.next_power_of_two().leading_zeros() - 1).max(1) as usize
            }
            ArbiterKind::Islip { iterations } => iterations,
            ArbiterKind::Maximal => 1,
        }
    }

    /// Short name for reports (`"islip"` / `"maximal"`).
    pub fn label(self) -> &'static str {
        match self {
            ArbiterKind::Islip { .. } => "islip",
            ArbiterKind::Maximal => "maximal",
        }
    }
}

/// Sentinel for "no input granted" in the per-output grant scratch.
const NO_INPUT: u32 = u32::MAX;

/// The crossbar scheduler: pointer state plus scratch, sized once per fabric.
#[derive(Debug)]
pub struct CrossbarArbiter {
    kind: ArbiterKind,
    ports: usize,
    iterations: usize,
    /// Per-output round-robin grant pointer (iSLIP).
    grant_ptr: Vec<u32>,
    /// Per-input round-robin accept pointer (iSLIP) / scan pointer (maximal).
    accept_ptr: Vec<u32>,
    /// Scratch: the input each output granted to in the current iteration.
    granted: Vec<u32>,
    /// Scratch: the eligibility matrix of the current slot, row-major
    /// (`i * ports + j`), evaluated once per [`CrossbarArbiter::schedule`]
    /// call. Matching probes the same pair several times across iterations
    /// and scans inputs in column order; evaluating the oracle in one
    /// sequential pass per input instead keeps the probes of each buffer's
    /// occupancy array together and leaves the iterations reading this
    /// cache-resident scratch.
    elig: Vec<bool>,
}

impl CrossbarArbiter {
    /// Creates an arbiter for a fabric of `ports` input and output ports.
    pub fn new(kind: ArbiterKind, ports: usize) -> Self {
        CrossbarArbiter {
            kind,
            ports,
            iterations: kind.effective_iterations(ports),
            grant_ptr: vec![0; ports],
            accept_ptr: vec![0; ports],
            granted: vec![NO_INPUT; ports],
            elig: vec![false; ports * ports],
        }
    }

    /// The algorithm this arbiter runs.
    pub fn kind(&self) -> ArbiterKind {
        self.kind
    }

    /// Computes the matching of slot `slot`.
    ///
    /// `eligible(i, j)` reports whether input `i` has a requestable cell for
    /// output `j`; `output_ready[j]` whether output `j` has an egress credit
    /// this slot. The matching lands in `match_in` (per input: the matched
    /// output) and `match_out` (per output: the matched input); both are
    /// cleared first. Returns the number of matched pairs.
    ///
    /// `eligible` must be a pure function of the slot's buffer state: it is
    /// evaluated exactly once per `(i, j)` pair, row by row, up front —
    /// iSLIP's iterations re-probe pairs and scan inputs in column order, so
    /// snapshotting the matrix both bounds the oracle calls and turns them
    /// into one sequential pass over each input's occupancy counters.
    ///
    /// A call that matches nothing leaves the arbiter bit-identical — iSLIP
    /// pointers move only on accepts, and the maximal matcher's rotating
    /// priority is derived from `slot` rather than stored — which is what
    /// lets the fabric's idle fast-forward skip provably matchless slots
    /// without observing them.
    pub fn schedule<F>(
        &mut self,
        slot: u64,
        eligible: F,
        output_ready: &[bool],
        match_in: &mut [Option<u32>],
        match_out: &mut [Option<u32>],
    ) -> u64
    where
        F: Fn(usize, usize) -> bool,
    {
        debug_assert_eq!(match_in.len(), self.ports);
        debug_assert_eq!(match_out.len(), self.ports);
        debug_assert_eq!(output_ready.len(), self.ports);
        match_in.fill(None);
        match_out.fill(None);
        let n = self.ports;
        for i in 0..n {
            for j in 0..n {
                self.elig[i * n + j] = eligible(i, j);
            }
        }
        match self.kind {
            ArbiterKind::Islip { .. } => self.islip(output_ready, match_in, match_out),
            ArbiterKind::Maximal => self.maximal(slot, output_ready, match_in, match_out),
        }
    }

    fn islip(
        &mut self,
        output_ready: &[bool],
        match_in: &mut [Option<u32>],
        match_out: &mut [Option<u32>],
    ) -> u64 {
        let n = self.ports;
        let mut matched = 0u64;
        for iteration in 0..self.iterations {
            // Grant: every unmatched ready output picks the requesting
            // unmatched input nearest (cyclically) to its grant pointer.
            self.granted.fill(NO_INPUT);
            for j in 0..n {
                if match_out[j].is_some() || !output_ready[j] {
                    continue;
                }
                let mut i = self.grant_ptr[j] as usize;
                for _ in 0..n {
                    if i >= n {
                        i = 0;
                    }
                    if match_in[i].is_none() && self.elig[i * n + j] {
                        self.granted[j] = i as u32;
                        break;
                    }
                    i += 1;
                }
            }
            // Accept: every input that received at least one grant accepts
            // the granting output nearest to its accept pointer. Pointers
            // advance only on first-iteration accepts (original iSLIP).
            let mut any = false;
            for (i, match_in_i) in match_in.iter_mut().enumerate() {
                if match_in_i.is_some() {
                    continue;
                }
                let mut j = self.accept_ptr[i] as usize;
                for _ in 0..n {
                    if j >= n {
                        j = 0;
                    }
                    if match_out[j].is_none() && self.granted[j] == i as u32 {
                        *match_in_i = Some(j as u32);
                        match_out[j] = Some(i as u32);
                        if iteration == 0 {
                            self.grant_ptr[j] = ((i + 1) % n) as u32;
                            self.accept_ptr[i] = ((j + 1) % n) as u32;
                        }
                        matched += 1;
                        any = true;
                        break;
                    }
                    j += 1;
                }
            }
            if !any {
                break;
            }
        }
        matched
    }

    fn maximal(
        &mut self,
        slot: u64,
        output_ready: &[bool],
        match_in: &mut [Option<u32>],
        match_out: &mut [Option<u32>],
    ) -> u64 {
        let n = self.ports;
        let priority = (slot % n as u64) as usize;
        let mut matched = 0u64;
        for k in 0..n {
            let i = (priority + k) % n;
            let mut j = self.accept_ptr[i] as usize;
            for _ in 0..n {
                if j >= n {
                    j = 0;
                }
                if match_out[j].is_none() && output_ready[j] && self.elig[i * n + j] {
                    match_in[i] = Some(j as u32);
                    match_out[j] = Some(i as u32);
                    self.accept_ptr[i] = ((j + 1) % n) as u32;
                    matched += 1;
                    break;
                }
                j += 1;
            }
        }
        matched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn run_matching(kind: ArbiterKind, n: usize, demand: &[Vec<bool>]) -> Vec<Option<u32>> {
        let mut arb = CrossbarArbiter::new(kind, n);
        let ready = vec![true; n];
        let mut match_in = vec![None; n];
        let mut match_out = vec![None; n];
        arb.schedule(
            0,
            |i, j| demand[i][j],
            &ready,
            &mut match_in,
            &mut match_out,
        );
        match_in
    }

    #[test]
    fn auto_iterations_scale_with_log_ports() {
        assert_eq!(
            ArbiterKind::Islip { iterations: 0 }.effective_iterations(2),
            1
        );
        assert_eq!(
            ArbiterKind::Islip { iterations: 0 }.effective_iterations(16),
            4
        );
        assert_eq!(
            ArbiterKind::Islip { iterations: 0 }.effective_iterations(17),
            5
        );
        assert_eq!(
            ArbiterKind::Islip { iterations: 3 }.effective_iterations(16),
            3
        );
        assert_eq!(ArbiterKind::Maximal.effective_iterations(16), 1);
    }

    #[test]
    fn maximal_matching_is_perfect_under_full_demand() {
        let n = 8;
        let demand = vec![vec![true; n]; n];
        let matches = run_matching(ArbiterKind::Maximal, n, &demand);
        let mut seen = vec![false; n];
        for m in &matches {
            let j = m.expect("every input matches under full demand") as usize;
            assert!(!seen[j], "output {j} matched twice");
            seen[j] = true;
        }
    }

    /// From cold (synchronised) pointers one iSLIP slot cannot match every
    /// port — that is the point of the algorithm: accepted matches *slip* the
    /// pointers apart, and once desynchronised every subsequent slot under
    /// full demand is a perfect matching.
    #[test]
    fn islip_desynchronises_into_perfect_matchings() {
        let n = 8;
        let mut arb = CrossbarArbiter::new(ArbiterKind::Islip { iterations: 0 }, n);
        let ready = vec![true; n];
        let mut match_in = vec![None; n];
        let mut match_out = vec![None; n];
        let mut matched_per_slot = Vec::new();
        for slot in 0..(4 * n as u64) {
            let matched = arb.schedule(slot, |_, _| true, &ready, &mut match_in, &mut match_out);
            matched_per_slot.push(matched);
        }
        assert!(
            *matched_per_slot.first().unwrap() < n as u64,
            "cold synchronised pointers collide by construction"
        );
        let tail = &matched_per_slot[matched_per_slot.len() - n..];
        assert!(
            tail.iter().all(|&m| m == n as u64),
            "desynchronised iSLIP must sustain perfect matchings: {matched_per_slot:?}"
        );
    }

    #[test]
    fn no_match_without_ready_outputs() {
        let n = 4;
        let mut arb = CrossbarArbiter::new(ArbiterKind::Islip { iterations: 0 }, n);
        let mut match_in = vec![None; n];
        let mut match_out = vec![None; n];
        let matched = arb.schedule(0, |_, _| true, &[false; 4], &mut match_in, &mut match_out);
        assert_eq!(matched, 0);
        assert!(match_in.iter().all(Option::is_none));
    }

    /// The satellite invariant: on contention-free matrices (a partial
    /// permutation of demands) iSLIP and the maximal-matching baseline make
    /// exactly the same — complete — matching, whatever their pointer state.
    #[test]
    fn islip_and_maximal_agree_on_contention_free_matrices() {
        let mut rng = StdRng::seed_from_u64(20_260_730);
        for _ in 0..200 {
            let n = rng.gen_range(2..10usize);
            // Random partial permutation: a shuffled output list, each input
            // keeping its output with probability 3/4.
            let mut outputs: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                outputs.swap(i, rng.gen_range(0..=i));
            }
            let mut demand = vec![vec![false; n]; n];
            let mut expected: Vec<Option<u32>> = vec![None; n];
            for i in 0..n {
                if rng.gen_range(0..4u32) < 3 {
                    demand[i][outputs[i]] = true;
                    expected[i] = Some(outputs[i] as u32);
                }
            }
            // Scramble pointer state with a few warm-up slots of full demand.
            for kind in [ArbiterKind::Islip { iterations: 0 }, ArbiterKind::Maximal] {
                let mut arb = CrossbarArbiter::new(kind, n);
                let ready = vec![true; n];
                let mut match_in = vec![None; n];
                let mut match_out = vec![None; n];
                for slot in 0..u64::from(rng.gen_range(0..5u32)) {
                    arb.schedule(slot, |_, _| true, &ready, &mut match_in, &mut match_out);
                }
                arb.schedule(
                    7,
                    |i, j| demand[i][j],
                    &ready,
                    &mut match_in,
                    &mut match_out,
                );
                assert_eq!(
                    match_in, expected,
                    "{kind:?} must match every contention-free demand"
                );
            }
        }
    }
}
