//! The virtual-output-queued switch: N ingress packet buffers, a crossbar
//! arbiter and N rate-limited egress ports, advanced slot-synchronously.
//!
//! # Slot anatomy
//!
//! Every slot the fabric (in this order): accrues egress credits, computes a
//! crossbar matching over the VOQ occupancy ([`crate::CrossbarArbiter`]),
//! steps every ingress buffer once — the matched ports with a request for
//! their matched VOQ, all ports with their line-side arrival — hands granted
//! cells to their egress FIFO, and transmits at the egress cadence.
//!
//! # Batch hot path
//!
//! Arbitration couples the ports: a slot's matching depends on every
//! buffer's state *at that slot*, so — unlike the single-buffer engine —
//! multi-slot `step_batch` fusion cannot cross an arbitration boundary.
//! What the fabric does inherit from the chunked engine:
//!
//! * arrivals are generated a whole chunk at a time per port
//!   ([`traffic::ArrivalGenerator::fill_arrivals`], register-resident RNG);
//! * chunks in which provably nothing can happen — no arrival anywhere, all
//!   buffers quiescent with nothing requestable, all egress FIFOs empty —
//!   collapse to one [`pktbuf::PacketBuffer::advance_idle`] fast-forward per
//!   port (the arbiter is unobservable on matchless slots by construction);
//! * the drain tail terminates through the same quiescence probes.
//!
//! [`VoqSwitch::run_reference`] is the skip-free per-slot reference; the
//! differential tests pin the two paths bit-identical.

use crate::arbiter::{ArbiterKind, CrossbarArbiter};
use crate::egress::EgressPort;
use crate::report::{EgressReport, FabricRunReport, PortReport};
use pktbuf::PacketBuffer;
use pktbuf_model::{Cell, LogicalQueueId};
use traffic::ArrivalGenerator;

/// Slots per arrival-generation chunk (mirrors the single-buffer engine's
/// chunk size; one ring of this length exists per ingress port).
pub const FABRIC_CHUNK_SLOTS: usize = 256;

/// Observer of the cell movements of one [`VoqSwitch::step_coupled`] slot.
///
/// A standalone switch only counts its cells; a *composed* switch (a stage
/// of a Clos — see [`crate::ClosFabric`]) must see them move: which input's
/// VOQ a grant left (to advance flow metadata riding beside the buffer),
/// which output line a cell was transmitted on (to forward it onto an
/// inter-stage link) and which arrival was refused at a full tail SRAM (to
/// roll the metadata back). All methods default to no-ops so a sink
/// implements only what it observes.
pub trait StageSink {
    /// A granted cell left input `input`'s VOQ `cell.queue()` for its egress
    /// FIFO.
    fn granted(&mut self, input: usize, cell: &Cell) {
        let _ = (input, cell);
    }
    /// A cell was transmitted on output `output`'s line this slot.
    fn transmitted(&mut self, output: usize, cell: Cell) {
        let _ = (output, cell);
    }
    /// Input `input`'s arriving cell was dropped at a full tail SRAM.
    fn dropped(&mut self, input: usize, cell: &Cell) {
        let _ = (input, cell);
    }
}

/// The sink of a standalone switch: observes nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl StageSink for NullSink {}

/// Static configuration of a fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricConfig {
    /// Number of ingress (= egress) ports.
    pub ports: usize,
    /// Slots per transmitted cell at each egress port (1 = full line rate).
    pub egress_period: u64,
    /// Crossbar scheduling algorithm.
    pub arbiter: ArbiterKind,
}

impl FabricConfig {
    /// A full-line-rate iSLIP fabric of `ports` ports.
    pub fn new(ports: usize) -> Self {
        FabricConfig {
            ports,
            egress_period: 1,
            arbiter: ArbiterKind::Islip { iterations: 0 },
        }
    }
}

/// An `N×N` virtual-output-queued switch over any [`PacketBuffer`] design.
///
/// Ingress port `i`'s buffer holds `N` logical queues; queue `j` is the VOQ
/// of egress port `j`. Homogeneous fabrics monomorphize over the concrete
/// buffer type; mixed-design fabrics use [`crate::PortBuffer`].
#[derive(Debug)]
pub struct VoqSwitch<B: PacketBuffer> {
    ports: usize,
    buffers: Vec<B>,
    arbiter: CrossbarArbiter,
    egress: Vec<EgressPort>,
    clock: u64,
    matches: u64,
    arrivals_total: u64,
    grants_total: u64,
    /// Row-major `ports × ports`: cells arrived at input `i` for output `j`.
    arrivals_matrix: Vec<u64>,
    /// Row-major `ports × ports`: cells granted out of input `i`'s VOQ `j`.
    departures_matrix: Vec<u64>,
    // Per-slot scratch, sized once.
    match_in: Vec<Option<u32>>,
    match_out: Vec<Option<u32>>,
    output_ready: Vec<bool>,
}

impl<B: PacketBuffer> VoqSwitch<B> {
    /// Builds a fabric from one ingress buffer per port.
    ///
    /// # Panics
    ///
    /// Panics when the port count does not match the configuration or any
    /// buffer's queue count differs from the port count (VOQ shape).
    pub fn new(config: FabricConfig, buffers: Vec<B>) -> Self {
        let ports = config.ports;
        assert!(ports >= 2, "a fabric needs at least 2 ports");
        assert_eq!(buffers.len(), ports, "one ingress buffer per port");
        for (i, buffer) in buffers.iter().enumerate() {
            assert_eq!(
                buffer.num_queues(),
                ports,
                "ingress buffer {i} must hold one VOQ per egress port"
            );
        }
        VoqSwitch {
            ports,
            arbiter: CrossbarArbiter::new(config.arbiter, ports),
            egress: (0..ports)
                .map(|_| EgressPort::new(config.egress_period))
                .collect(),
            buffers,
            clock: 0,
            matches: 0,
            arrivals_total: 0,
            grants_total: 0,
            arrivals_matrix: vec![0; ports * ports],
            departures_matrix: vec![0; ports * ports],
            match_in: vec![None; ports],
            match_out: vec![None; ports],
            output_ready: vec![false; ports],
        }
    }

    /// Number of ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// The fabric clock (slots advanced so far).
    pub fn current_slot(&self) -> u64 {
        self.clock
    }

    /// Runs the fabric: `active_slots` slots with live arrivals (generator
    /// `p` feeds ingress port `p`; its queue ids are egress ports), then a
    /// drain phase until every deliverable cell has left on an output line.
    ///
    /// This is the production path: chunked arrival generation plus the idle
    /// fast-forward described in the module docs. Bit-identical to
    /// [`VoqSwitch::run_reference`] on the same inputs.
    ///
    /// # Panics
    ///
    /// Panics when the generator count or any generator's queue count does
    /// not match the port count.
    pub fn run<A: ArrivalGenerator>(
        &mut self,
        arrivals: &mut [A],
        active_slots: u64,
    ) -> FabricRunReport {
        self.check_generators(arrivals);
        let mut rings: Vec<Vec<Option<Cell>>> = vec![vec![None; FABRIC_CHUNK_SLOTS]; self.ports]; // analyze: allow(hotpath-alloc) — per-run chunk rings allocated once at run entry, before the slot loop
        let mut slot_arrivals: Vec<Option<Cell>> = vec![None; self.ports]; // analyze: allow(hotpath-alloc) — per-run scratch allocated once at run entry, before the slot loop
        let mut done = 0u64;
        while done < active_slots {
            let len = FABRIC_CHUNK_SLOTS.min((active_slots - done) as usize);
            let base = self.clock;
            let mut produced = 0usize;
            for (generator, ring) in arrivals.iter_mut().zip(rings.iter_mut()) {
                produced += generator.fill_arrivals(base, &mut ring[..len]);
            }
            if produced == 0 && self.is_idle() {
                // No arrival in the whole chunk, nothing requestable, all
                // pipelines quiescent, all egress FIFOs empty: the arbiter
                // cannot match (all-false eligibility) and a matchless
                // schedule is unobservable, so the chunk is pure idle.
                self.advance_idle(len as u64);
            } else {
                for s in 0..len {
                    for (slot_arrival, ring) in slot_arrivals.iter_mut().zip(rings.iter_mut()) {
                        *slot_arrival = ring[s].take();
                    }
                    self.step_slot(&mut slot_arrivals);
                }
            }
            done += len as u64;
        }
        let active_matches = self.matches;
        self.drain();
        self.build_report(active_slots, active_matches)
    }

    /// Runs the fabric slot by slot with no batching and no fast-forward:
    /// the reference the chunked path is differentially tested against.
    ///
    /// # Panics
    ///
    /// Panics when the generator count or any generator's queue count does
    /// not match the port count.
    pub fn run_reference<A: ArrivalGenerator>(
        &mut self,
        arrivals: &mut [A],
        active_slots: u64,
    ) -> FabricRunReport {
        self.check_generators(arrivals);
        let mut slot_arrivals: Vec<Option<Cell>> = vec![None; self.ports]; // analyze: allow(hotpath-alloc) — per-run scratch allocated once at run entry (reference engine)
        for _ in 0..active_slots {
            let t = self.clock;
            for (slot_arrival, generator) in slot_arrivals.iter_mut().zip(arrivals.iter_mut()) {
                *slot_arrival = generator.next(t);
            }
            self.step_slot(&mut slot_arrivals);
        }
        let active_matches = self.matches;
        self.drain();
        self.build_report(active_slots, active_matches)
    }

    fn check_generators<A: ArrivalGenerator>(&self, arrivals: &[A]) {
        assert_eq!(arrivals.len(), self.ports, "one arrival generator per port");
        for (p, generator) in arrivals.iter().enumerate() {
            assert_eq!(
                generator.num_queues(),
                self.ports,
                "generator {p} must target one destination per egress port"
            );
        }
    }

    /// Advances the fabric by one slot; `arrivals[p]` is port `p`'s line-side
    /// arrival. Returns the number of crossbar matches made.
    fn step_slot(&mut self, arrivals: &mut [Option<Cell>]) -> u64 {
        self.step_coupled(arrivals, &[], &mut NullSink)
    }

    /// Advances the fabric by one slot as a *stage of a larger fabric*:
    /// `arrivals[p]` is port `p`'s line-side arrival, `output_gate` gates
    /// each output line on downstream readiness and `sink` observes every
    /// cell movement (see [`StageSink`]).
    ///
    /// An empty `output_gate` leaves every output ungated (the standalone
    /// behaviour — [`VoqSwitch::run`] uses exactly this path). A gated-out
    /// output `j` neither transmits this slot (its head-of-line cell waits
    /// for downstream credit) nor accepts a crossbar match (matching more
    /// cells into a stalled FIFO would only move the congestion forward:
    /// backpressure instead holds them in the VOQs, where the arbiter can
    /// still match the same input to a different, uncongested output).
    ///
    /// Returns the number of crossbar matches made.
    ///
    /// # Panics
    ///
    /// Panics when `output_gate` is neither empty nor `ports` long.
    pub fn step_coupled<S: StageSink>(
        &mut self,
        arrivals: &mut [Option<Cell>],
        output_gate: &[bool],
        sink: &mut S,
    ) -> u64 {
        assert!(
            output_gate.is_empty() || output_gate.len() == self.ports,
            "output gate must cover every output"
        );
        let clock = self.clock;
        let ports = self.ports;
        let ungated = output_gate.is_empty();
        for (j, (ready, egress)) in self
            .output_ready
            .iter_mut()
            .zip(self.egress.iter_mut())
            .enumerate()
        {
            egress.begin_slot(clock);
            *ready = egress.ready() && (ungated || output_gate[j]);
        }
        let matched = {
            let Self {
                buffers,
                arbiter,
                match_in,
                match_out,
                output_ready,
                ..
            } = self;
            arbiter.schedule(
                clock,
                |i, j| buffers[i].requestable_cells(LogicalQueueId::new(j as u32)) > 0,
                output_ready,
                match_in,
                match_out,
            )
        };
        self.matches += matched;
        for (i, arrival_slot) in arrivals.iter_mut().enumerate() {
            let request = self.match_in[i].map(LogicalQueueId::new);
            if let Some(j) = self.match_in[i] {
                self.egress[j as usize].consume_credit();
            }
            let arrival = arrival_slot.take();
            if let Some(cell) = &arrival {
                self.arrivals_matrix[i * ports + cell.queue().as_usize()] += 1;
                self.arrivals_total += 1;
            }
            let outcome = self.buffers[i].step(arrival, request);
            if let Some(cell) = outcome.granted {
                let dst = cell.queue().as_usize();
                self.departures_matrix[i * ports + dst] += 1;
                self.grants_total += 1;
                sink.granted(i, &cell);
                self.egress[dst].push(cell);
            }
            if let Some(cell) = outcome.dropped_arrival {
                sink.dropped(i, &cell);
            }
        }
        for (j, egress) in self.egress.iter_mut().enumerate() {
            if ungated || output_gate[j] {
                if let Some(cell) = egress.end_slot(clock) {
                    sink.transmitted(j, cell);
                }
            }
        }
        self.clock += 1;
        matched
    }

    /// Whether an idle slot provably changes nothing observable: every
    /// ingress pipeline quiescent with an empty requestable set (so the
    /// eligibility matrix is all-false and frozen) and every egress FIFO
    /// empty.
    pub fn is_idle(&self) -> bool {
        self.egress.iter().all(EgressPort::is_empty)
            && self
                .buffers
                .iter()
                .all(|b| b.is_quiescent() && b.requestable_total() == 0)
    }

    /// Total requestable cells over every VOQ of every ingress buffer.
    pub fn requestable_total(&self) -> u64 {
        self.buffers
            .iter()
            .map(PacketBuffer::requestable_total)
            .sum()
    }

    /// Whether every ingress buffer's pipeline is quiescent.
    pub fn buffers_quiescent(&self) -> bool {
        self.buffers.iter().all(PacketBuffer::is_quiescent)
    }

    /// The largest head-pipeline delay of any ingress buffer, in slots.
    pub fn max_pipeline_delay(&self) -> usize {
        self.buffers
            .iter()
            .map(PacketBuffer::pipeline_delay_slots)
            .max()
            .unwrap_or(0)
    }

    /// Current depth of output `output`'s transmit FIFO.
    pub fn egress_depth(&self, output: usize) -> usize {
        self.egress[output].depth()
    }

    /// Total cells waiting in the transmit FIFOs across all outputs.
    pub fn egress_backlog(&self) -> u64 {
        self.egress.iter().map(|e| e.depth() as u64).sum()
    }

    /// Crossbar matches made so far (the composed-fabric layer snapshots
    /// this at the end of the active phase for its utilisation metric).
    pub fn matches_so_far(&self) -> u64 {
        self.matches
    }

    /// Arms the per-output latency histograms (the `obs` latency probe).
    /// Call before the first slot; unarmed switches stay byte-identical to
    /// the uninstrumented path.
    pub fn arm_latency_obs(&mut self) {
        for egress in &mut self.egress {
            egress.arm_latency_hist();
        }
    }

    /// End-to-end latency histogram merged across every output, when the
    /// latency probes are armed.
    pub fn merged_latency_hist(&self) -> Option<obs::Log2Histogram> {
        let mut merged: Option<obs::Log2Histogram> = None;
        for egress in &self.egress {
            let hist = egress.latency_hist()?;
            merged
                .get_or_insert_with(obs::Log2Histogram::new)
                .merge(hist);
        }
        merged
    }

    /// Builds this switch's [`FabricRunReport`] for a run driven externally
    /// through [`VoqSwitch::step_coupled`]: `active_slots` and
    /// `active_matches` carry the composed run's active-phase boundary (see
    /// [`FabricRunReport::crossbar_utilization`]).
    pub fn snapshot_report(&self, active_slots: u64, active_matches: u64) -> FabricRunReport {
        self.build_report(active_slots, active_matches)
    }

    /// Fast-forwards `slots` provably idle slots: O(1) per buffer (their own
    /// quiescent fast-forward) plus an arithmetic egress-credit update.
    ///
    /// The caller must have checked [`VoqSwitch::is_idle`]; the composed
    /// (Clos) engine additionally checks that no cell is in flight on any
    /// inter-stage link before skipping a chunk.
    pub fn advance_idle(&mut self, slots: u64) {
        for buffer in &mut self.buffers {
            buffer.advance_idle(slots);
        }
        let clock = self.clock;
        for egress in &mut self.egress {
            egress.advance_idle(clock, slots);
        }
        self.clock += slots;
    }

    /// Drains the fabric after the active phase: keeps matching while any
    /// VOQ is requestable (tail-SRAM cells become requestable as their
    /// writebacks land), flushes the head pipelines, and empties the egress
    /// FIFOs at the line-rate cadence.
    ///
    /// Cells that can never become requestable again — a residual partial
    /// tail batch below the writeback threshold — are *residents*, not
    /// losses; the flush horizon (max pipeline delay + 4 requestless slots)
    /// bounds how long the fabric waits for stragglers, exactly like the
    /// single-buffer engine's drain rule.
    fn drain(&mut self) {
        let flush = self
            .buffers
            .iter()
            .map(|b| b.pipeline_delay_slots())
            .max()
            .unwrap_or(0) as u64
            + 4;
        let mut slot_arrivals: Vec<Option<Cell>> = vec![None; self.ports]; // analyze: allow(hotpath-alloc) — drain scratch allocated once when the run winds down
        let mut idle_streak = 0u64;
        loop {
            let requestable = self.buffers.iter().any(|b| b.requestable_total() > 0);
            if requestable {
                idle_streak = 0;
            } else {
                let quiescent = self.buffers.iter().all(PacketBuffer::is_quiescent);
                if (quiescent || idle_streak > flush)
                    && self.egress.iter().all(EgressPort::is_empty)
                {
                    break;
                }
                idle_streak += 1;
            }
            self.step_slot(&mut slot_arrivals);
        }
    }

    fn build_report(&self, active_slots: u64, active_matches: u64) -> FabricRunReport {
        let ports = self.ports;
        let per_port: Vec<PortReport> = self
            .buffers
            .iter()
            .enumerate()
            .map(|(i, buffer)| {
                let row = &self.arrivals_matrix[i * ports..(i + 1) * ports];
                let arrivals: u64 = row.iter().sum();
                let grants: u64 = self.departures_matrix[i * ports..(i + 1) * ports]
                    .iter()
                    .sum();
                // The matrix counts *offered* cells; the buffer accepts
                // offered minus tail drops (zero for the worst-case designs).
                debug_assert_eq!(
                    arrivals,
                    buffer.stats().arrivals + buffer.stats().drops,
                    "port {i}: matrix row diverged from the buffer's own count"
                );
                PortReport {
                    design: buffer.design_name(),
                    arrivals,
                    grants,
                    resident_cells: buffer.stats().arrivals - grants,
                    stats: *buffer.stats(),
                }
            })
            .collect();
        let per_output: Vec<EgressReport> = self
            .egress
            .iter()
            .map(|egress| EgressReport {
                transmitted: egress.transmitted(),
                peak_queue_depth: egress.peak_depth() as u64,
                max_latency_slots: egress.max_latency(),
                mean_latency_slots: egress.mean_latency(),
                latency_p50_slots: egress.latency_hist().map(obs::Log2Histogram::p50),
                latency_p95_slots: egress.latency_hist().map(obs::Log2Histogram::p95),
                latency_p99_slots: egress.latency_hist().map(obs::Log2Histogram::p99),
            })
            .collect();
        let transmitted: u64 = per_output.iter().map(|o| o.transmitted).sum();
        let lost_cells: u64 = per_port
            .iter()
            .map(|p| p.stats.drops + p.stats.misses + p.stats.order_violations)
            .sum();
        let resident_cells: u64 = per_port.iter().map(|p| p.resident_cells).sum();
        let weighted_latency: f64 = per_output
            .iter()
            .map(|o| o.mean_latency_slots * o.transmitted as f64)
            .sum();
        let latency_histogram = self
            .merged_latency_hist()
            .as_ref()
            .map(crate::HistogramReport::from_hist);
        FabricRunReport {
            ports,
            arbiter: self.arbiter.kind().label(),
            slots: self.clock,
            active_slots,
            arrivals: self.arrivals_total,
            matches: self.matches,
            grants: self.grants_total,
            transmitted,
            lost_cells,
            resident_cells,
            // Active-phase matches only: counting the drain's matches against
            // an active-slot denominator would collapse the metric to the
            // offered load for any conserving run (a saturated scheduler
            // that delivers everything late would still score high).
            crossbar_utilization: if active_slots == 0 {
                0.0
            } else {
                active_matches as f64 / (ports as u64 * active_slots) as f64
            },
            mean_latency_slots: if transmitted == 0 {
                0.0
            } else {
                weighted_latency / transmitted as f64
            },
            max_latency_slots: per_output
                .iter()
                .map(|o| o.max_latency_slots)
                .max()
                .unwrap_or(0),
            latency_histogram,
            zero_loss: lost_cells == 0 && per_port.iter().all(|p| p.stats.is_loss_free()),
            per_port,
            per_output,
            arrivals_matrix: self.arrivals_matrix.clone(),
            departures_matrix: self.departures_matrix.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pktbuf::RadsBuffer;
    use pktbuf_model::{LineRate, RadsConfig};
    use traffic::{stream_seed, BurstyArrivals, UniformArrivals};

    fn rads_ports(ports: usize) -> Vec<RadsBuffer> {
        (0..ports)
            .map(|_| {
                RadsBuffer::new(RadsConfig {
                    line_rate: LineRate::Oc3072,
                    num_queues: ports,
                    granularity: 4,
                    lookahead: None,
                    dram: Default::default(),
                })
            })
            .collect()
    }

    fn uniform_generators(ports: usize, load: f64, seed: u64) -> Vec<UniformArrivals> {
        (0..ports)
            .map(|p| UniformArrivals::new(ports, load, stream_seed(seed, p as u64)))
            .collect()
    }

    #[test]
    fn uniform_fabric_delivers_every_cell() {
        let ports = 4;
        let mut switch = VoqSwitch::new(FabricConfig::new(ports), rads_ports(ports));
        let mut arrivals = uniform_generators(ports, 0.7, 11);
        let report = switch.run(&mut arrivals, 3_000);
        assert!(report.zero_loss, "{report:?}");
        assert!(report.arrivals > 1_000);
        assert_eq!(report.grants, report.arrivals - report.resident_cells);
        assert_eq!(report.transmitted, report.grants);
        assert!(report.conservation_holds());
        assert!(report.crossbar_utilization > 0.5);
        assert!(report.mean_latency_slots > 0.0);
    }

    #[test]
    fn chunked_run_matches_the_reference_engine() {
        // Long idle gaps make most chunks pure-idle, exercising the
        // fast-forward against the skip-free reference.
        for arbiter in [ArbiterKind::Islip { iterations: 0 }, ArbiterKind::Maximal] {
            let ports = 3;
            let config = FabricConfig {
                ports,
                egress_period: 2,
                arbiter,
            };
            let generators = |_| -> Vec<BurstyArrivals> {
                (0..ports)
                    .map(|p| BurstyArrivals::new(ports, 12.0, 700.0, stream_seed(5, p as u64)))
                    .collect()
            };
            let mut fast = VoqSwitch::new(config, rads_ports(ports));
            let fast_report = fast.run(&mut generators(()), 6_000);
            let mut reference = VoqSwitch::new(config, rads_ports(ports));
            let reference_report = reference.run_reference(&mut generators(()), 6_000);
            assert_eq!(fast_report, reference_report, "{arbiter:?}");
            assert!(fast_report.zero_loss);
        }
    }

    #[test]
    fn egress_rate_throttles_the_crossbar() {
        let ports = 4;
        let config = FabricConfig {
            ports,
            egress_period: 2, // half line rate per output
            arbiter: ArbiterKind::Islip { iterations: 0 },
        };
        let mut switch = VoqSwitch::new(config, rads_ports(ports));
        // Offered load 0.4 per port is admissible at half-rate outputs.
        let mut arrivals = uniform_generators(ports, 0.4, 3);
        let report = switch.run(&mut arrivals, 4_000);
        assert!(report.zero_loss);
        assert!(
            report.crossbar_utilization <= 0.5 + 1e-9,
            "matches cannot outrun the egress line rate: {}",
            report.crossbar_utilization
        );
        assert!(report.conservation_holds());
    }

    #[test]
    #[should_panic(expected = "one VOQ per egress port")]
    fn mismatched_voq_shape_is_rejected() {
        let buffers = rads_ports(4);
        let _ = VoqSwitch::new(FabricConfig::new(3), buffers.into_iter().take(3).collect());
    }
}
