//! A three-stage folded Clos of [`VoqSwitch`]es: multi-chassis scale-out.
//!
//! One crossbar stops at its radix. This module composes `r` ingress
//! switches (radix `N`), `m` middle switches (radix `r`) and `r` egress
//! switches (radix `N`) into a single router with `r·N` external ports —
//! the canonical scale-out topology: every ingress switch has one link to
//! every middle switch, every middle switch one link to every egress switch,
//! and with `m ≥ N` the fabric is rearrangeably non-blocking.
//!
//! # Inter-stage links and credit flow control
//!
//! Each inter-stage link is a bounded FIFO of `link_capacity` cells with a
//! propagation latency of `link_latency` slots in **both** directions: a
//! cell transmitted at slot `t` becomes visible to the downstream switch at
//! `t + L`, and the credit returned when the downstream switch accepts it
//! becomes visible upstream at `acceptance + L`. An upstream output is
//! *gated out of arbitration* while its link has no credit, so a full link
//! propagates backpressure into the upstream VOQs and **no cell is ever
//! dropped between stages** — fabric-wide conservation is checked by
//! [`ClosRunReport::conservation_holds`]. A link shorter than its
//! round-trip (`link_capacity < 2·link_latency`) merely throttles. The
//! deliberately lossy alternative — discard a cell arriving at a full FIFO
//! — is a fault, not a configuration: arm a
//! [`crate::faults::FaultKind::DropOnFull`] plan entry via
//! [`ClosFabric::arm_faults`].
//!
//! # Fault injection
//!
//! A [`crate::faults::FaultPlan`] armed before the run injects
//! deterministic, slot-scheduled failures — middle-switch death/revival,
//! inter-stage link flaps, egress slowdown, ingress port death — without
//! touching the fault-free hot path (an unarmed stage carries no fault
//! state at all). Dead middle switches are routed around through the
//! credit machinery: a dead stage returns no credits, so spray dispatch
//! starves away from it, and while any death window is active the spray
//! becomes credit-occupancy-aware (it skips dead paths outright and picks
//! the least-committed live path) so flows never target a dead middle and
//! reordering stays bounded. Flapped links stall and recover without
//! loss. Every fault's impact is accounted in the report's
//! [`crate::faults::FaultLedger`]; see [`crate::faults`] for the taxonomy
//! and the degraded-mode conservation definition.
//!
//! # Per-hop sequencing and flow tags
//!
//! The packet buffers verify per-VOQ FIFO delivery internally (contiguous
//! sequence numbers from 0), so a cell is re-sequenced at every hop: each
//! (switch, input, VOQ) keeps a hop-local sequence counter, and the flow
//! identity — external source, destination, flow sequence — rides beside
//! the buffer in a sidecar FIFO per (input, VOQ), advanced by the
//! [`StageSink`] callbacks in exactly the order the buffer grants (which
//! the buffers' own delivery verifier pins to FIFO order).
//!
//! # Dispatch and reordering
//!
//! [`DispatchPolicy::Spray`] round-robins each external port's cells over
//! the middle switches — perfect load balance, but two cells of one flow
//! can race over different middle switches and arrive reordered; the report
//! counts exactly how many. [`DispatchPolicy::FlowHash`] pins each
//! (source, destination) flow to one middle switch — zero reordering by
//! construction (pinned by tests), at the cost of hash-collision hotspots.
//!
//! # Execution
//!
//! All link events carry slot stamps (a cell is visible when `ready ≤ t`,
//! a credit when `avail ≤ t`), so the schedule — one thread or one thread
//! per stage — cannot change what any switch observes: with `link_latency
//! ≥ 1`, a batch produced at slot `t` is observable at `t+1` or later, and
//! the pipelined drivers deliver it before the consumer steps `t+1`.
//! [`ClosFabric::run`] is therefore **byte-identical for any worker
//! count**, and bit-identical to the skip-free [`ClosFabric::run_reference`]
//! twin (differential tests pin both). The drain phase always runs
//! single-threaded after the workers join.

use crate::faults::{FaultKind, FaultLedger, FaultPlan, ImpactCounters, LinkBoundary, StageFaults};
use crate::report::{FabricRunReport, HistogramReport};
use crate::switch::{FabricConfig, StageSink, VoqSwitch, FABRIC_CHUNK_SLOTS};
use crate::transport::{SinkState, TransportConfig, TransportReport};
use crate::ArbiterKind;
use obs::{
    merge_events, EventKind, FlightRecorder, Log2Histogram, ObsConfig, SeriesRing, TraceEvent,
};
use pktbuf::PacketBuffer;
use pktbuf_model::{Cell, LogicalQueueId};
use serde::{Serialize, Serializer};
use std::collections::VecDeque;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use traffic::{ArrivalGenerator, ClosedLoopSource, MatrixTrace};

/// How the ingress stage spreads cells over the middle switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Round-robin spraying per external port: perfect balance, may reorder
    /// a flow's cells (two cells race over different middle switches).
    Spray,
    /// Flow-hash pinning: every (source, destination) pair sticks to one
    /// middle switch — zero reordering, hash-collision hotspots possible.
    FlowHash,
    /// Credit-occupancy-aware spray, always on: each cell goes to the
    /// least-committed live middle path (queued VOQ cells, plus a full-link
    /// penalty when the path's credits are exhausted), scanning from the
    /// round-robin pointer so ties keep [`DispatchPolicy::Spray`]'s fair
    /// cadence. This is the adaptive policy PR 8 used only inside
    /// middle-death fault windows, promoted to a steady-state option.
    OccupancySpray,
}

impl DispatchPolicy {
    /// Stable lower-case label for reports and specs.
    pub fn label(self) -> &'static str {
        match self {
            DispatchPolicy::Spray => "spray",
            DispatchPolicy::FlowHash => "flowhash",
            DispatchPolicy::OccupancySpray => "occupancy-spray",
        }
    }
}

/// Which stage of the Clos a switch belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClosStage {
    /// External-facing input stage (`r` switches of radix `N`).
    Ingress,
    /// Load-balancing middle stage (`m` switches of radix `r`).
    Middle,
    /// External-facing output stage (`r` switches of radix `N`).
    Egress,
}

impl ClosStage {
    /// Stable lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ClosStage::Ingress => "ingress",
            ClosStage::Middle => "middle",
            ClosStage::Egress => "egress",
        }
    }
}

/// Static configuration of a three-stage Clos.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosConfig {
    /// Radix `N` of each ingress/egress switch (external ports per switch).
    pub radix: usize,
    /// Number `r` of ingress (= egress) switches; external ports = `r·N`.
    pub ingress_switches: usize,
    /// Number `m` of middle switches (`1 ≤ m ≤ N`); `m = N` is
    /// rearrangeably non-blocking.
    pub middle_switches: usize,
    /// Ingress load-balancing policy.
    pub dispatch: DispatchPolicy,
    /// Cells each inter-stage link FIFO holds (= credits per link).
    pub link_capacity: usize,
    /// One-way link propagation latency in slots (`0` is treated as `1`).
    pub link_latency: u64,
    /// Slots per transmitted cell at each *external* output line.
    pub egress_period: u64,
    /// Crossbar arbiter used by every switch of every stage.
    pub arbiter: ArbiterKind,
}

impl ClosConfig {
    /// A credit-flow-controlled spraying Clos of `ingress_switches` ingress
    /// and egress switches of radix `radix` with `middle_switches` middle
    /// switches, full-line-rate outputs and iSLIP arbitration.
    pub fn new(radix: usize, ingress_switches: usize, middle_switches: usize) -> Self {
        ClosConfig {
            radix,
            ingress_switches,
            middle_switches,
            dispatch: DispatchPolicy::Spray,
            link_capacity: 8,
            link_latency: 1,
            egress_period: 1,
            arbiter: ArbiterKind::Islip { iterations: 0 },
        }
    }

    /// External (line-side) port count: `r·N`.
    pub fn external_ports(&self) -> usize {
        self.ingress_switches * self.radix
    }
}

/// Flow identity riding beside the buffers: minted once at the external
/// ingress line, preserved hop to hop while the cell itself is re-sequenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FlowTag {
    /// External source port (`ingress switch · N + port`).
    src: u32,
    /// External destination port.
    dest: u32,
    /// Per-(src, dest) flow sequence number, assigned at injection.
    seq: u64,
}

/// One cell in flight on an inter-stage link.
#[derive(Debug)]
struct LinkCell {
    /// First slot at which the downstream switch may accept the cell.
    ready: u64,
    cell: Cell,
    tag: FlowTag,
}

/// One slot's cells crossing one stage boundary (upstream → downstream).
/// `link` is the producer-side link id: `upstream_switch · radix + output`.
#[derive(Debug, Default)]
struct FwdBatch {
    slot: u64,
    cells: Vec<(u32, Cell, FlowTag)>,
}

/// One slot's credit returns crossing one stage boundary (downstream →
/// upstream), as producer-side link ids. When the reliable transport is
/// enabled the egress stage piggybacks its acks here — the ack back-channel
/// reuses the existing credit-return path, hop by hop.
#[derive(Debug, Default)]
struct CreditBatch {
    slot: u64,
    links: Vec<u32>,
    acks: Vec<FlowTag>,
}

/// SplitMix64-style avalanche of a (src, dest) flow onto a middle switch.
#[inline]
fn flow_hash(src: u32, dest: u32) -> u64 {
    let mut x = (u64::from(src) << 32) | u64::from(dest);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

/// Delivery-side accounting owned by the egress stage: the per-flow
/// delivered matrix and the reordering tracker.
#[derive(Debug)]
struct Delivery {
    ext_ports: usize,
    /// Row-major `ext × ext`: cells delivered from external src to dest.
    delivered_matrix: Vec<u64>,
    /// Per flow: highest delivered flow sequence + 1 (0 = none yet).
    highest_plus1: Vec<u64>,
    /// Per flow: whether any cell of this flow arrived out of order.
    flow_reordered: Vec<bool>,
    reordered_cells: u64,
    /// Transport sink state (dedup + goodput); `None` unless the reliable
    /// transport is enabled, so the open-loop path carries nothing.
    transport: Option<SinkState>,
}

impl Delivery {
    fn new(ext_ports: usize) -> Self {
        Delivery {
            ext_ports,
            delivered_matrix: vec![0; ext_ports * ext_ports],
            highest_plus1: vec![0; ext_ports * ext_ports],
            flow_reordered: vec![false; ext_ports * ext_ports],
            reordered_cells: 0,
            transport: None,
        }
    }

    /// Records one cell leaving the fabric on its external output line.
    #[inline]
    fn deliver(&mut self, tag: FlowTag, slot: u64) {
        let flow = tag.src as usize * self.ext_ports + tag.dest as usize;
        self.delivered_matrix[flow] += 1;
        // `highest_plus1` stores max-delivered-seq + 1; a cell at or below
        // the running max overtook a later-injected cell somewhere.
        if tag.seq < self.highest_plus1[flow] {
            self.reordered_cells += 1;
            self.flow_reordered[flow] = true;
        } else {
            self.highest_plus1[flow] = tag.seq + 1;
        }
        if let Some(sink) = self.transport.as_mut() {
            sink.deliver(tag.src, tag.dest, tag.seq, slot);
        }
    }
}

/// Per-stage observability probes: `None` on every stage unless
/// [`ClosFabric::arm_obs`] installed them, so the uninstrumented hot path
/// carries no state at all — the same zero-overhead-off discipline the
/// fault and transport layers follow. Every probe is single-writer (owned
/// by the stage that records into it) and clocked by slot time only, so
/// instrumented runs stay byte-identical across worker counts.
#[derive(Debug)]
struct StageObs {
    /// Chrome-trace stage id: 0 = ingress, 1 = middle, 2 = egress.
    stage_no: u8,
    /// VOQ backlog depth, recorded after every sidecar enqueue.
    voq_backlog: Option<Log2Histogram>,
    /// Outbound link occupancy (`capacity − credits`), recorded at every
    /// transmit onto a link; never armed at the egress (no out links).
    link_occupancy: Option<Log2Histogram>,
    /// Slot-sampled throughput/occupancy/stall time-series.
    series: Option<SeriesRing>,
    /// Cell-lifecycle flight recorder.
    recorder: Option<FlightRecorder>,
}

impl StageObs {
    fn new(config: &ObsConfig, stage: ClosStage) -> Self {
        let has_out_links = stage != ClosStage::Egress;
        StageObs {
            stage_no: match stage {
                ClosStage::Ingress => 0,
                ClosStage::Middle => 1,
                ClosStage::Egress => 2,
            },
            voq_backlog: config.occupancy_hist.then(Log2Histogram::new),
            link_occupancy: (config.occupancy_hist && has_out_links).then(Log2Histogram::new),
            series: config
                .series_enabled()
                .then(|| SeriesRing::new(config.series_stride, config.series_capacity)),
            recorder: config
                .trace_enabled()
                .then(|| FlightRecorder::new(config.trace_capacity, config.trace_filter())),
        }
    }

    /// Records one flight-recorder event, when the recorder is armed.
    #[inline]
    fn record_event(&mut self, slot: u64, kind: EventKind, switch: u32, port: u32, tag: FlowTag) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.record(TraceEvent {
                slot,
                kind,
                stage: self.stage_no,
                switch,
                port,
                src: tag.src,
                dest: tag.dest,
                seq: tag.seq,
            });
        }
    }

    /// One cell queued into a VOQ: records the depth *after* the push and
    /// the enqueue event.
    #[inline]
    fn on_voq_enqueue(&mut self, slot: u64, switch: u32, port: u32, tag: FlowTag, depth: u64) {
        if let Some(h) = self.voq_backlog.as_mut() {
            h.record(depth);
        }
        self.record_event(slot, EventKind::VoqEnqueue, switch, port, tag);
    }

    /// One output-slot in which a queued cell sat gated awaiting a credit.
    #[inline]
    fn on_stall(&mut self) {
        if let Some(ring) = self.series.as_mut() {
            ring.add_stalls(1);
        }
    }

    /// One cell left the stage (onto a link or an external output line).
    #[inline]
    fn on_transmit(&mut self) {
        if let Some(ring) = self.series.as_mut() {
            ring.add_transmitted(1);
        }
    }

    /// Records the outbound link's occupancy right after a transmit.
    #[inline]
    fn on_link_occupancy(&mut self, occupancy: u64) {
        if let Some(h) = self.link_occupancy.as_mut() {
            h.record(occupancy);
        }
    }
}

/// Cells resident in a stage right now: queued in VOQs, staged in egress
/// FIFOs (counted by sidecar tags) or sitting in inbound link FIFOs. Read
/// only at series sample slots.
fn stage_occupancy(
    voq_tags: &[VecDeque<FlowTag>],
    out_tags: &[VecDeque<FlowTag>],
    in_links: &[VecDeque<LinkCell>],
) -> u64 {
    let queued: usize = voq_tags.iter().map(VecDeque::len).sum();
    let staged: usize = out_tags.iter().map(VecDeque::len).sum();
    let linked: usize = in_links.iter().map(VecDeque::len).sum();
    (queued + staged + linked) as u64
}

/// The [`StageSink`] wired into one switch's [`VoqSwitch::step_coupled`]:
/// advances the sidecar flow tags in grant order, debits link credits and
/// stages transmitted cells into the outbound link batch (interior stages)
/// or the delivery tracker (egress stage).
struct StageHooks<'a> {
    s: usize,
    radix: usize,
    slot: u64,
    /// Whether transmissions debit link credits (false only when a
    /// `DropOnFull` fault disabled credit flow control for the run).
    debit: bool,
    /// Link FIFO capacity (the occupancy histogram's reference point).
    link_capacity: usize,
    /// Observability probes; `None` on the uninstrumented path.
    obs: Option<&'a mut StageObs>,
    voq_tags: &'a mut [VecDeque<FlowTag>],
    out_tags: &'a mut [VecDeque<FlowTag>],
    hop_seq: &'a mut [u64],
    out_credits: &'a mut [u32],
    fwd: &'a mut FwdBatch,
    delivery: Option<&'a mut Delivery>,
    /// Egress only, transport on: every delivery (unique *and* duplicate —
    /// re-acking a filtered copy is what stops its source retrying) also
    /// pushes an ack onto the outbound credit batch.
    acks: Option<&'a mut Vec<FlowTag>>,
}

impl StageSink for StageHooks<'_> {
    #[inline]
    fn granted(&mut self, input: usize, cell: &Cell) {
        let v = cell.queue().as_usize();
        let h = (self.s * self.radix + input) * self.radix + v;
        if let Some(tag) = self.voq_tags[h].pop_front() {
            if let Some(ob) = self.obs.as_deref_mut() {
                ob.record_event(
                    self.slot,
                    EventKind::Grant,
                    self.s as u32,
                    input as u32,
                    tag,
                );
            }
            self.out_tags[self.s * self.radix + v].push_back(tag);
        } else {
            debug_assert!(false, "granted cell without a sidecar flow tag");
        }
    }

    #[inline]
    fn transmitted(&mut self, output: usize, cell: Cell) {
        let o = self.s * self.radix + output;
        let Some(tag) = self.out_tags[o].pop_front() else {
            debug_assert!(false, "transmitted cell without a sidecar flow tag");
            return;
        };
        match self.delivery.as_deref_mut() {
            Some(delivery) => {
                if let Some(acks) = self.acks.as_deref_mut() {
                    acks.push(tag);
                }
                if let Some(ob) = self.obs.as_deref_mut() {
                    ob.on_transmit();
                    ob.record_event(
                        self.slot,
                        EventKind::EgressTransmit,
                        self.s as u32,
                        output as u32,
                        tag,
                    );
                }
                delivery.deliver(tag, self.slot);
            }
            None => {
                if self.debit {
                    debug_assert!(self.out_credits[o] > 0, "transmit without link credit");
                    self.out_credits[o] -= 1;
                }
                if let Some(ob) = self.obs.as_deref_mut() {
                    ob.on_transmit();
                    ob.on_link_occupancy(
                        (self.link_capacity as u64).saturating_sub(u64::from(self.out_credits[o])),
                    );
                }
                self.fwd.cells.push((o as u32, cell, tag));
            }
        }
    }

    #[inline]
    fn dropped(&mut self, input: usize, cell: &Cell) {
        // The arrival's tag was pushed just before the buffer refused the
        // cell; undo the push and the hop sequence so grants stay contiguous.
        let h = (self.s * self.radix + input) * self.radix + cell.queue().as_usize();
        self.voq_tags[h].pop_back();
        self.hop_seq[h] -= 1;
    }
}

/// One stage of the Clos: its switches plus everything that rides beside
/// them — sidecar flow tags, hop sequence counters, inbound link FIFOs and
/// outbound link credits.
#[derive(Debug)]
struct Stage<B: PacketBuffer> {
    stage: ClosStage,
    radix: usize,
    /// Radix of the *upstream* stage (link-id decode); 0 at the ingress.
    up_radix: usize,
    /// External switch radix `N` (routing: middle VOQ = dest / N, egress
    /// VOQ = dest % N).
    ext_radix: usize,
    middle: usize,
    dispatch: DispatchPolicy,
    /// Link FIFO capacity (the occupancy-aware spray's full-link penalty).
    link_capacity: usize,
    /// Whether a `DropOnFull` fault disabled credit flow control (false on
    /// the fault-free path: gates on, overflow impossible).
    drop_on_full: bool,
    /// Compiled fault state; `None` unless a plan was armed, so the
    /// fault-free hot path carries nothing.
    faults: Option<StageFaults>,
    switches: Vec<VoqSwitch<B>>,
    /// Sidecar tag FIFO per (switch, input, VOQ), in buffer-FIFO order.
    voq_tags: Vec<VecDeque<FlowTag>>,
    /// Tags of cells sitting in each (switch, output) egress FIFO.
    out_tags: Vec<VecDeque<FlowTag>>,
    /// Hop-local next sequence per (switch, input, VOQ).
    hop_seq: Vec<u64>,
    /// Inbound link FIFO per (switch, input); empty at the ingress stage.
    in_links: Vec<VecDeque<LinkCell>>,
    /// Outbound link credits per (switch, output); empty at the egress.
    out_credits: Vec<u32>,
    /// Credit returns in flight back to this stage: (visible slot, link id).
    credit_pending: VecDeque<(u64, u32)>,
    /// Egress only, transport on: whether deliveries emit acks onto the
    /// credit back-channel (false keeps open-loop runs byte-identical).
    emit_acks: bool,
    /// Acks in flight toward this stage: (visible slot, tag). The middle
    /// stage relays them upstream; the ingress stage hands them to the
    /// closed-loop driver.
    ack_pending: VecDeque<(u64, FlowTag)>,
    /// Ingress only: next middle switch per external port (spray pointer).
    spray_next: Vec<u32>,
    /// Ingress only: row-major `ext × ext` offered-traffic matrix.
    offered_matrix: Vec<u64>,
    /// Egress only: delivery + reordering tracker.
    delivery: Option<Delivery>,
    /// Per-slot scratch: one arrival per input.
    arrivals: Vec<Option<Cell>>,
    /// Per-slot scratch: crossbar gate per output.
    gate: Vec<bool>,
    /// Output-slots in which a queued cell sat gated awaiting a credit.
    credit_stall_slots: u64,
    /// Deepest any inbound link FIFO has been.
    peak_link_depth: usize,
    /// Cells discarded at full inbound links (`DropOnFull` fault only).
    link_dropped: u64,
    /// Crossbar matches per switch at the end of the active phase.
    active_matches: Vec<u64>,
    /// Observability probes; `None` unless [`ClosFabric::arm_obs`] armed
    /// them, so the uninstrumented hot path carries nothing.
    obs: Option<StageObs>,
}

impl<B: PacketBuffer> Stage<B> {
    fn new(
        stage: ClosStage,
        config: &ClosConfig,
        switch_radix: usize,
        up_radix: usize,
        count: usize,
        switches: Vec<VoqSwitch<B>>,
    ) -> Self {
        let ext = config.external_ports();
        let is_egress = stage == ClosStage::Egress;
        let has_out_links = stage != ClosStage::Egress;
        let has_in_links = stage != ClosStage::Ingress;
        Stage {
            stage,
            radix: switch_radix,
            up_radix,
            ext_radix: config.radix,
            middle: config.middle_switches,
            dispatch: config.dispatch,
            link_capacity: config.link_capacity,
            drop_on_full: false,
            faults: None,
            switches,
            voq_tags: (0..count * switch_radix * switch_radix)
                .map(|_| VecDeque::new())
                .collect(),
            out_tags: (0..count * switch_radix).map(|_| VecDeque::new()).collect(),
            hop_seq: vec![0; count * switch_radix * switch_radix],
            in_links: if has_in_links {
                (0..count * switch_radix).map(|_| VecDeque::new()).collect()
            } else {
                Vec::new()
            },
            out_credits: if has_out_links {
                vec![config.link_capacity as u32; count * switch_radix]
            } else {
                Vec::new()
            },
            credit_pending: VecDeque::new(),
            emit_acks: false,
            ack_pending: VecDeque::new(),
            spray_next: if stage == ClosStage::Ingress {
                // Stagger the spray pointers so simultaneous first cells on
                // different ports do not all aim at middle switch 0.
                (0..ext)
                    .map(|g| (g % config.middle_switches) as u32)
                    .collect()
            } else {
                Vec::new()
            },
            offered_matrix: if stage == ClosStage::Ingress {
                vec![0; ext * ext]
            } else {
                Vec::new()
            },
            delivery: is_egress.then(|| Delivery::new(ext)),
            arrivals: vec![None; switch_radix],
            gate: vec![false; switch_radix],
            credit_stall_slots: 0,
            peak_link_depth: 0,
            link_dropped: 0,
            active_matches: vec![0; count],
            obs: None,
        }
    }

    /// Applies a forward batch from the upstream stage to the inbound link
    /// FIFOs (visible from `batch.slot + latency`). Under a `DropOnFull`
    /// fault a cell aimed at a full FIFO is discarded and ledgered — the
    /// loss the conservation checker must account for.
    fn apply_fwd(&mut self, batch: &mut FwdBatch, latency: u64, capacity: usize) {
        let ready = batch.slot + latency;
        for (id, cell, tag) in batch.cells.drain(..) {
            let id = id as usize;
            let idx = (id % self.up_radix) * self.radix + id / self.up_radix;
            let fifo = &mut self.in_links[idx];
            if fifo.len() >= capacity {
                debug_assert!(
                    self.drop_on_full,
                    "credit flow control let a link FIFO overflow"
                );
                self.link_dropped += 1;
                if let Some(f) = self.faults.as_mut() {
                    if let Some(e) = f.drop_event {
                        f.impact[e].dropped_cells += 1;
                    }
                }
                continue;
            }
            fifo.push_back(LinkCell { ready, cell, tag });
            self.peak_link_depth = self.peak_link_depth.max(fifo.len());
        }
    }

    /// Applies a credit batch returned by the downstream stage; each credit
    /// becomes visible to the gated outputs at `batch.slot + latency`, and
    /// each piggybacked ack rides the same latency toward the ingress.
    fn apply_credits(&mut self, batch: &mut CreditBatch, latency: u64) {
        let avail = batch.slot + latency;
        for link in batch.links.drain(..) {
            self.credit_pending.push_back((avail, link));
        }
        for tag in batch.acks.drain(..) {
            self.ack_pending.push_back((avail, tag));
        }
    }

    /// Releases every pending credit that is visible at `slot`.
    #[inline]
    fn release_credits(&mut self, slot: u64) {
        while let Some(&(avail, link)) = self.credit_pending.front() {
            if avail > slot {
                break;
            }
            self.credit_pending.pop_front();
            self.out_credits[link as usize] += 1;
        }
    }
}

impl<B: PacketBuffer> Stage<B> {
    /// Steps every switch of the stage through slot `slot`.
    ///
    /// The ingress stage takes its arrivals from `external` (one entry per
    /// external port, flattened `switch · N + port`; `None` during the
    /// drain); interior stages take them from their inbound link FIFOs,
    /// pushing one credit per accepted cell into `credits`. Interior
    /// transmissions land in `fwd` with their producer-side link ids.
    fn step(
        &mut self,
        slot: u64,
        mut external: Option<&mut [Option<Cell>]>,
        fwd: &mut FwdBatch,
        credits: &mut CreditBatch,
    ) {
        if !self.out_credits.is_empty() {
            self.release_credits(slot);
        }
        fwd.slot = slot;
        credits.slot = slot;
        debug_assert!(fwd.cells.is_empty() && credits.links.is_empty());
        debug_assert!(credits.acks.is_empty());
        if self.stage == ClosStage::Middle {
            // Relay acks arriving from the egress onto the upstream credit
            // batch: they become visible at the ingress after one more link
            // latency, exactly like a credit.
            while let Some(&(avail, tag)) = self.ack_pending.front() {
                if avail > slot {
                    break;
                }
                self.ack_pending.pop_front();
                credits.acks.push(tag);
            }
        }
        let Stage {
            stage,
            radix,
            up_radix,
            ext_radix,
            middle,
            dispatch,
            link_capacity,
            drop_on_full,
            faults,
            switches,
            voq_tags,
            out_tags,
            hop_seq,
            in_links,
            out_credits,
            emit_acks,
            spray_next,
            offered_matrix,
            delivery,
            arrivals,
            gate,
            credit_stall_slots,
            obs,
            ..
        } = self;
        let (radix, up_radix, ext_radix, middle) = (*radix, *up_radix, *ext_radix, *middle);
        let link_capacity = *link_capacity;
        let stage_kind = *stage;
        let debit = !*drop_on_full;
        let gated = debit && stage_kind != ClosStage::Egress;
        let ext_total = switches.len() * radix;
        for (s, switch) in switches.iter_mut().enumerate() {
            // 0. Fault ledger: cells ready to move but held behind an
            // active fault this slot are accounted as added latency. The
            // counts read physical link FIFO occupancy, which is schedule-
            // invariant (pushes land after the same slot's pops everywhere).
            let dead_switch = match faults.as_mut() {
                None => false,
                Some(f) => {
                    let dead = f.switch_dead(s, slot);
                    let StageFaults {
                        dead_switches,
                        stalled_in,
                        impact,
                        ..
                    } = f;
                    for &(e, sw, w) in dead_switches.iter() {
                        if sw == s && w.contains(slot) {
                            let held: u64 = in_links[s * radix..(s + 1) * radix]
                                .iter()
                                .map(|q| q.iter().filter(|c| c.ready <= slot).count() as u64)
                                .sum();
                            impact[e].stalled_cell_slots += held;
                        }
                    }
                    for &(e, li, w) in stalled_in.iter() {
                        if li / radix == s && w.contains(slot) {
                            impact[e].stalled_cell_slots +=
                                in_links[li].iter().filter(|c| c.ready <= slot).count() as u64;
                        }
                    }
                    dead
                }
            };
            // 1. Arrivals: external lines at the ingress, link FIFOs inside.
            if stage_kind == ClosStage::Ingress {
                if let Some(lines) = external.as_deref_mut() {
                    for (i, arrival) in arrivals.iter_mut().enumerate() {
                        let src = s * radix + i;
                        let Some(cell) = lines[src].take() else {
                            *arrival = None;
                            continue;
                        };
                        let dest = cell.queue().as_usize();
                        offered_matrix[src * ext_total + dest] += 1;
                        if let Some(f) = faults.as_mut() {
                            // A dead ingress line refuses the cell at the
                            // very edge of the fabric: offered, ledgered,
                            // never entering any switch.
                            if let Some(e) = f.dead_input_event(src, slot) {
                                f.impact[e].refused_cells += 1;
                                *arrival = None;
                                continue;
                            }
                        }
                        let p = match dispatch {
                            DispatchPolicy::Spray | DispatchPolicy::OccupancySpray => {
                                let start = spray_next[src] as usize;
                                // Credit-occupancy-aware spray: skip dead
                                // paths, pick the least-committed live one
                                // (queued VOQ cells, plus a full-link
                                // penalty when its credits are exhausted),
                                // scanning from the round-robin pointer so
                                // ties keep the fair cadence. `Spray` only
                                // adapts while a middle death is active;
                                // `OccupancySpray` adapts on every slot.
                                let adaptive = *dispatch == DispatchPolicy::OccupancySpray
                                    || faults.as_ref().is_some_and(|f| f.reroutes_paths(slot));
                                let p = if !adaptive {
                                    start
                                } else {
                                    let mut best: Option<(usize, usize)> = None;
                                    for k in 0..middle {
                                        let cand = (start + k) % middle;
                                        if faults.as_ref().is_some_and(|f| f.path_dead(cand, slot))
                                        {
                                            continue;
                                        }
                                        let h = (s * radix + i) * radix + cand;
                                        let mut key = voq_tags[h].len();
                                        if out_credits[s * radix + cand] == 0 {
                                            key += link_capacity;
                                        }
                                        if best.is_none_or(|(_, b)| key < b) {
                                            best = Some((cand, key));
                                        }
                                    }
                                    best.map_or(start, |(p, _)| p)
                                };
                                spray_next[src] = ((p + 1) % middle) as u32;
                                p
                            }
                            DispatchPolicy::FlowHash => {
                                let mut p =
                                    (flow_hash(src as u32, dest as u32) % middle as u64) as usize;
                                if let Some(f) = faults.as_ref() {
                                    // Failover: a flow hashed onto a dead
                                    // middle probes linearly to the first
                                    // live one (deterministic, so the flow
                                    // stays pinned for the whole window;
                                    // reordering is bounded to the two
                                    // failover edges).
                                    if f.path_dead(p, slot) {
                                        for k in 1..middle {
                                            let cand = (p + k) % middle;
                                            if !f.path_dead(cand, slot) {
                                                p = cand;
                                                break;
                                            }
                                        }
                                    }
                                }
                                p
                            }
                        };
                        let h = (s * radix + i) * radix + p;
                        let hop = hop_seq[h];
                        hop_seq[h] += 1;
                        let tag = FlowTag {
                            src: src as u32,
                            dest: dest as u32,
                            seq: cell.seq(),
                        };
                        voq_tags[h].push_back(tag);
                        if let Some(ob) = obs.as_mut() {
                            ob.record_event(slot, EventKind::Inject, s as u32, i as u32, tag);
                            ob.on_voq_enqueue(
                                slot,
                                s as u32,
                                i as u32,
                                tag,
                                voq_tags[h].len() as u64,
                            );
                        }
                        *arrival = Some(Cell::new(
                            LogicalQueueId::new(p as u32),
                            hop,
                            cell.arrival_slot(),
                        ));
                    }
                } else {
                    arrivals.fill(None);
                }
            } else {
                for (i, arrival) in arrivals.iter_mut().enumerate() {
                    let li = s * radix + i;
                    // A dead switch accepts nothing; a flapped link
                    // delivers nothing. Cells wait in the FIFO (stall,
                    // never drop) and credits stop flowing upstream.
                    if dead_switch
                        || faults.as_ref().is_some_and(|f| f.in_stalled(li, slot))
                        || in_links[li].front().is_none_or(|c| c.ready > slot)
                    {
                        *arrival = None;
                        continue;
                    }
                    let Some(LinkCell { cell, tag, .. }) = in_links[li].pop_front() else {
                        *arrival = None;
                        continue;
                    };
                    credits.links.push((i * up_radix + s) as u32);
                    let dest = tag.dest as usize;
                    let v = if stage_kind == ClosStage::Middle {
                        dest / ext_radix
                    } else {
                        dest % ext_radix
                    };
                    let h = (s * radix + i) * radix + v;
                    let hop = hop_seq[h];
                    hop_seq[h] += 1;
                    voq_tags[h].push_back(tag);
                    if let Some(ob) = obs.as_mut() {
                        ob.record_event(slot, EventKind::LinkTraverse, s as u32, i as u32, tag);
                        ob.on_voq_enqueue(slot, s as u32, i as u32, tag, voq_tags[h].len() as u64);
                    }
                    *arrival = Some(Cell::new(
                        LogicalQueueId::new(v as u32),
                        hop,
                        cell.arrival_slot(),
                    ));
                }
            }
            // 2. Gate: outputs without a link credit sit out this slot's
            // arbitration (that is the backpressure); a dead switch sits
            // out on every output (it still steps, so its clock stays in
            // sync — equivalent to idling); a slowed egress output only
            // opens on its degraded cadence.
            let gate_ref: &[bool] = if dead_switch {
                gate.fill(false);
                gate
            } else if gated {
                for (j, open) in gate.iter_mut().enumerate() {
                    let has_credit = out_credits[s * radix + j] > 0;
                    *open = has_credit;
                    if !has_credit && switch.egress_depth(j) > 0 {
                        *credit_stall_slots += 1;
                        if let Some(ob) = obs.as_mut() {
                            ob.on_stall();
                        }
                    }
                }
                gate
            } else if faults
                .as_ref()
                .is_some_and(|f| f.gates_switch(s, radix, slot))
            {
                gate.fill(true);
                if let Some(f) = faults.as_mut() {
                    let StageFaults {
                        slowed_out, impact, ..
                    } = f;
                    for &(e, idx, factor, w) in slowed_out.iter() {
                        if idx / radix == s && w.contains(slot) && !slot.is_multiple_of(factor) {
                            gate[idx % radix] = false;
                            if switch.egress_depth(idx % radix) > 0 {
                                impact[e].slowed_slots += 1;
                            }
                        }
                    }
                }
                gate
            } else {
                &[]
            };
            // 3. One coupled switch slot; the hooks move the sidecar tags
            // and stage transmissions onto the outbound link batch.
            let mut hooks = StageHooks {
                s,
                radix,
                slot,
                debit,
                link_capacity,
                obs: obs.as_mut(),
                voq_tags: &mut voq_tags[..],
                out_tags: &mut out_tags[..],
                hop_seq: &mut hop_seq[..],
                out_credits: &mut out_credits[..],
                fwd: &mut *fwd,
                delivery: delivery.as_mut(),
                acks: emit_acks.then_some(&mut credits.acks),
            };
            switch.step_coupled(arrivals, gate_ref, &mut hooks);
        }
        // One series tick per stage per slot, after every switch stepped.
        // Sampling reads only this stage's own state at the end of its own
        // slot, so the samples are identical under every schedule.
        if let Some(ring) = obs.as_mut().and_then(|ob| ob.series.as_mut()) {
            if ring.due(slot) {
                let occupancy = stage_occupancy(voq_tags, out_tags, in_links);
                ring.sample(slot, occupancy);
            }
        }
    }

    /// Snapshots each switch's crossbar match count (called when the active
    /// phase ends, before the drain).
    fn snapshot_active_matches(&mut self) {
        for (slot, switch) in self.active_matches.iter_mut().zip(&self.switches) {
            *slot = switch.matches_so_far();
        }
    }

    /// Cells currently in flight on (or queued in) this stage's inbound
    /// link FIFOs.
    fn link_resident(&self) -> u64 {
        self.in_links.iter().map(|q| q.len() as u64).sum()
    }

    /// Whether the stage is provably idle: switches idle, no cell on any
    /// inbound link, no credit or ack still in flight toward this stage.
    fn is_idle(&self) -> bool {
        self.credit_pending.is_empty()
            && self.ack_pending.is_empty()
            && self.in_links.iter().all(VecDeque::is_empty)
            && self.switches.iter().all(VoqSwitch::is_idle)
    }

    /// Fast-forwards `slots` provably idle slots starting at `from_slot`
    /// (caller checked [`Stage::is_idle`] on every stage and that no batch
    /// is in flight). An idle window records nothing into the histograms or
    /// the recorder, and its series samples are synthesized — zero
    /// throughput, zero stalls, constant occupancy — exactly what stepping
    /// each slot would have produced, so skipping schedules stay
    /// byte-identical to the skip-free ones.
    fn advance_idle(&mut self, from_slot: u64, slots: u64) {
        for switch in &mut self.switches {
            switch.advance_idle(slots);
        }
        if self.obs.as_ref().is_some_and(|ob| ob.series.is_some()) {
            let occupancy = stage_occupancy(&self.voq_tags, &self.out_tags, &self.in_links);
            if let Some(ring) = self.obs.as_mut().and_then(|ob| ob.series.as_mut()) {
                ring.advance_idle(from_slot, slots, occupancy);
            }
        }
    }
}

/// Per-slot link-batch scratch for the serial drivers (allocated once per
/// run; the batches' vectors are reused every slot).
#[derive(Debug, Default)]
struct SerialScratch {
    fwd_a: FwdBatch,
    fwd_b: FwdBatch,
    cred_a: CreditBatch,
    cred_b: CreditBatch,
    fwd_unused: FwdBatch,
    cred_unused: CreditBatch,
}

/// A three-stage folded Clos of [`VoqSwitch`]es — see the module docs for
/// the topology, the credit flow control and the execution model.
#[derive(Debug)]
pub struct ClosFabric<B: PacketBuffer> {
    config: ClosConfig,
    ingress: Stage<B>,
    middle: Stage<B>,
    egress: Stage<B>,
    clock: u64,
    /// The armed fault plan (`None` = fault-free, the default).
    plan: Option<FaultPlan>,
    /// Every slot at which some armed fault turns on or off, sorted; the
    /// drain refuses to give up on stuck cells while an edge lies ahead.
    fault_edges: Vec<u64>,
    /// The enabled transport config (`None` = open-loop, the default).
    transport: Option<TransportConfig>,
    /// The armed obs configuration (`None` = uninstrumented, the default).
    obs: Option<ObsConfig>,
}

impl<B: PacketBuffer> ClosFabric<B> {
    /// Builds the Clos; `build` is called once per ingress buffer of every
    /// switch with the stage it will serve (ingress/egress buffers hold `N`
    /// VOQs, middle buffers `r`).
    ///
    /// # Panics
    ///
    /// Panics when the geometry is invalid (`N < 2`, `r < 2`,
    /// `m < 1`, `m > N`, `link_capacity < 1`) or a built buffer's queue
    /// count does not match its stage's radix.
    pub fn new<F: FnMut(ClosStage) -> B>(config: ClosConfig, mut build: F) -> Self {
        let ClosConfig {
            radix,
            ingress_switches: r,
            middle_switches: m,
            ..
        } = config;
        assert!(radix >= 2, "ingress/egress switches need radix >= 2");
        assert!(r >= 2, "a Clos needs at least 2 ingress switches");
        assert!(
            (1..=radix).contains(&m),
            "middle switches must satisfy 1 <= m <= N"
        );
        assert!(config.link_capacity >= 1, "links need at least one credit");
        let mut config = config;
        config.link_latency = config.link_latency.max(1);
        let arbiter = config.arbiter;
        let mut mk_switches = |stage: ClosStage, count: usize, ports: usize, period: u64| {
            (0..count)
                .map(|_| {
                    VoqSwitch::new(
                        FabricConfig {
                            ports,
                            egress_period: period,
                            arbiter,
                        },
                        (0..ports).map(|_| build(stage)).collect(),
                    )
                })
                .collect::<Vec<_>>()
        };
        let ingress_switches = mk_switches(ClosStage::Ingress, r, radix, 1);
        let middle_switches = mk_switches(ClosStage::Middle, m, r, 1);
        let egress_switches = mk_switches(ClosStage::Egress, r, radix, config.egress_period);
        ClosFabric {
            ingress: Stage::new(ClosStage::Ingress, &config, radix, 0, r, ingress_switches),
            middle: Stage::new(ClosStage::Middle, &config, r, radix, m, middle_switches),
            egress: Stage::new(ClosStage::Egress, &config, radix, r, r, egress_switches),
            config,
            clock: 0,
            plan: None,
            fault_edges: Vec::new(),
            transport: None,
            obs: None,
        }
    }

    /// Arms a [`FaultPlan`] for the coming run: validates it against the
    /// geometry and compiles it into per-stage fault state. An empty plan
    /// is a no-op — the fabric stays exactly on the fault-free path and
    /// its reports stay byte-identical to an unarmed run.
    ///
    /// # Panics
    ///
    /// Panics when the plan fails [`FaultPlan::validate`] against this
    /// fabric's geometry, or when the fabric has already run (plans are
    /// armed at slot 0 so every schedule sees every fault identically).
    pub fn arm_faults(&mut self, plan: &FaultPlan) {
        if plan.is_empty() {
            return;
        }
        assert_eq!(self.clock, 0, "fault plans must be armed before the run");
        let ClosConfig {
            radix,
            ingress_switches: r,
            middle_switches: m,
            ..
        } = self.config;
        if let Err(err) = plan.validate(radix, r, m) {
            panic!("invalid fault plan: {err}");
        }
        let drop = plan.has_drop_on_full();
        for (stage, kind) in [
            (&mut self.ingress, ClosStage::Ingress),
            (&mut self.middle, ClosStage::Middle),
            (&mut self.egress, ClosStage::Egress),
        ] {
            stage.faults = Some(plan.compile(kind, radix, r, m));
            stage.drop_on_full = drop;
        }
        self.fault_edges = plan.edges();
        self.plan = Some(plan.clone());
    }

    /// Arms the deterministic observability layer for the coming run:
    /// latency/occupancy histograms, per-stage time-series and the cell
    /// flight recorder, per `config`'s probe selection. [`ObsConfig::off`]
    /// is a no-op — the fabric stays exactly on the uninstrumented path and
    /// its reports stay byte-identical to an unarmed run (pinned by a
    /// differential test). Armed probes are single-writer and clocked by
    /// slot time only, so instrumented reports are still byte-identical
    /// for every worker count.
    ///
    /// # Panics
    ///
    /// Panics when the fabric has already run (probes arm at slot 0 so
    /// every schedule observes every event identically).
    pub fn arm_obs(&mut self, config: &ObsConfig) {
        if config.is_off() {
            return;
        }
        assert_eq!(self.clock, 0, "obs probes must be armed before the run");
        for (stage, kind) in [
            (&mut self.ingress, ClosStage::Ingress),
            (&mut self.middle, ClosStage::Middle),
            (&mut self.egress, ClosStage::Egress),
        ] {
            stage.obs = Some(StageObs::new(config, kind));
        }
        if config.latency_hist {
            // External end-to-end latency lives at the egress-stage output
            // lines (the line-side arrival slot survives re-sequencing).
            for switch in &mut self.egress.switches {
                switch.arm_latency_obs();
            }
        }
        self.obs = Some(config.clone());
    }

    /// Enables the end-to-end reliable transport for the coming run: the
    /// egress stage acknowledges and deduplicates every delivery (acks ride
    /// the credit-return path back to the ingress) and
    /// [`ClosFabric::run_transport`] drives closed-loop sources against it.
    ///
    /// An un-enabled fabric carries no transport state at all — open-loop
    /// runs stay byte-identical to a build without this feature.
    ///
    /// # Panics
    ///
    /// Panics when the fabric has already run (like fault plans, the
    /// transport is enabled at slot 0 so every schedule sees it
    /// identically).
    pub fn enable_transport(&mut self, config: TransportConfig) {
        assert_eq!(self.clock, 0, "transport must be enabled before the run");
        let ext = self.config.external_ports();
        let delivery = self
            .egress
            .delivery
            .as_mut()
            .expect("egress stage always has delivery state");
        delivery.transport = Some(SinkState::new(ext, config.goodput_bucket));
        self.egress.emit_acks = true;
        self.transport = Some(config);
    }

    /// The configuration the Clos was built with (`link_latency`
    /// normalized to at least 1).
    pub fn config(&self) -> &ClosConfig {
        &self.config
    }

    /// The fabric clock (slots advanced so far).
    pub fn current_slot(&self) -> u64 {
        self.clock
    }

    fn check_generators<A: ArrivalGenerator>(&self, arrivals: &[A]) {
        let ext = self.config.external_ports();
        assert_eq!(
            arrivals.len(),
            ext,
            "one arrival generator per external port"
        );
        for (p, generator) in arrivals.iter().enumerate() {
            assert_eq!(
                generator.num_queues(),
                ext,
                "generator {p} must target one destination per external port"
            );
        }
    }

    /// Advances the whole Clos by one slot, serially, in stage order.
    ///
    /// Every stage steps **before** any slot-`t` batch is applied, mirroring
    /// the pipelined workers, where a consumer receives the slot-`t` batch
    /// only after finishing its own slot `t`. The cells' visibility stamps
    /// (`>= t+1`, `link_latency >= 1`) make consumption identical either
    /// way, but the *physical* FIFO occupancy — which `peak_link_depth` and
    /// the `DropOnFull` full-check observe — only matches across schedules
    /// when the push happens after the same slot's pops everywhere.
    fn step_all(&mut self, external: Option<&mut [Option<Cell>]>, sc: &mut SerialScratch) {
        let slot = self.clock;
        let latency = self.config.link_latency;
        let capacity = self.config.link_capacity;
        self.ingress
            .step(slot, external, &mut sc.fwd_a, &mut sc.cred_unused);
        self.middle.step(slot, None, &mut sc.fwd_b, &mut sc.cred_a);
        self.egress
            .step(slot, None, &mut sc.fwd_unused, &mut sc.cred_b);
        self.middle.apply_fwd(&mut sc.fwd_a, latency, capacity);
        self.egress.apply_fwd(&mut sc.fwd_b, latency, capacity);
        self.ingress.apply_credits(&mut sc.cred_a, latency);
        self.middle.apply_credits(&mut sc.cred_b, latency);
        self.clock += 1;
    }

    /// Whether an idle slot provably changes nothing: every stage idle, no
    /// cell on any link, no credit in flight.
    fn is_idle(&self) -> bool {
        self.ingress.is_idle() && self.middle.is_idle() && self.egress.is_idle()
    }

    fn advance_idle(&mut self, slots: u64) {
        let from = self.clock;
        self.ingress.advance_idle(from, slots);
        self.middle.advance_idle(from, slots);
        self.egress.advance_idle(from, slots);
        self.clock += slots;
    }

    /// The chunked, fast-forwarding serial active phase (worker count 1).
    fn run_active_serial<A: ArrivalGenerator>(
        &mut self,
        arrivals: &mut [A],
        active_slots: u64,
        sc: &mut SerialScratch,
    ) {
        let ext = self.config.external_ports();
        let mut rings: Vec<Vec<Option<Cell>>> = vec![vec![None; FABRIC_CHUNK_SLOTS]; ext]; // analyze: allow(hotpath-alloc) — per-run chunk rings allocated once at run entry, before the slot loop
        let mut lines: Vec<Option<Cell>> = vec![None; ext]; // analyze: allow(hotpath-alloc) — per-run scratch allocated once at run entry, before the slot loop
        let mut done = 0u64;
        while done < active_slots {
            let len = FABRIC_CHUNK_SLOTS.min((active_slots - done) as usize);
            let base = self.clock;
            let mut produced = 0usize;
            for (generator, ring) in arrivals.iter_mut().zip(rings.iter_mut()) {
                produced += generator.fill_arrivals(base, &mut ring[..len]);
            }
            if produced == 0 && self.is_idle() {
                // No arrival anywhere in the chunk, every stage idle,
                // nothing on any link and no credit in flight: the chunk is
                // pure idle for all three stages at once.
                self.advance_idle(len as u64);
            } else {
                for s in 0..len {
                    for (line, ring) in lines.iter_mut().zip(rings.iter_mut()) {
                        *line = ring[s].take();
                    }
                    self.step_all(Some(&mut lines), sc);
                }
            }
            done += len as u64;
        }
    }

    /// Drains the fabric after the active phase: single-threaded, stepping
    /// until every deliverable cell has left on an external line — VOQs
    /// empty of requestable cells, pipelines flushed, egress FIFOs empty
    /// and **no cell left on any inter-stage link**. Residual partial tail
    /// batches below a design's writeback threshold stay resident (never
    /// lost); the flush horizon mirrors the single-switch drain rule.
    ///
    /// With a fault plan armed, a permanent fault can pin cells in place
    /// forever (a dead middle holds its frozen cells, and the ingress VOQs
    /// aimed at it stay requestable but creditless). The drain then watches
    /// a progress signature — any cell or credit movement anywhere changes
    /// it — and gives up only once the signature has been flat for longer
    /// than every recovery horizon *and* no fault transition lies ahead:
    /// whatever is still stuck at that point is stuck forever, and the
    /// report accounts it as stranded.
    fn drain(&mut self, sc: &mut SerialScratch) {
        let flush = [&self.ingress, &self.middle, &self.egress]
            .iter()
            .flat_map(|stage| stage.switches.iter().map(VoqSwitch::max_pipeline_delay))
            .max()
            .unwrap_or(0) as u64
            + 4;
        let faulted = self.plan.is_some();
        let stall_horizon = flush
            + 2 * self.config.link_latency
            + self.plan.as_ref().map_or(0, FaultPlan::max_slow_factor)
            + 8;
        let mut idle_streak = 0u64;
        let mut stuck_streak = 0u64;
        let mut last_sig = (0u64, 0u64, 0u64, 0u64, 0usize);
        loop {
            let stages = [&self.ingress, &self.middle, &self.egress];
            let requestable = stages.iter().any(|stage| {
                stage.link_resident() > 0
                    || stage.switches.iter().any(|sw| sw.requestable_total() > 0)
            });
            if requestable {
                idle_streak = 0;
            } else {
                let quiescent = stages
                    .iter()
                    .all(|stage| stage.switches.iter().all(VoqSwitch::buffers_quiescent));
                let flushed = stages
                    .iter()
                    .all(|stage| stage.switches.iter().all(|sw| sw.egress_backlog() == 0));
                if (quiescent || idle_streak > flush) && flushed {
                    break;
                }
                idle_streak += 1;
            }
            if faulted {
                let sig = (
                    stages
                        .iter()
                        .flat_map(|stage| stage.switches.iter())
                        .map(VoqSwitch::matches_so_far)
                        .sum::<u64>(),
                    stages
                        .iter()
                        .flat_map(|stage| stage.switches.iter())
                        .map(VoqSwitch::egress_backlog)
                        .sum::<u64>(),
                    stages
                        .iter()
                        .map(|stage| stage.link_resident())
                        .sum::<u64>(),
                    stages
                        .iter()
                        .flat_map(|stage| stage.switches.iter())
                        .map(VoqSwitch::requestable_total)
                        .sum::<u64>(),
                    stages
                        .iter()
                        .map(|stage| stage.credit_pending.len())
                        .sum::<usize>(),
                );
                let edge_ahead = self.fault_edges.last().is_some_and(|&e| e > self.clock);
                if sig == last_sig && !edge_ahead {
                    stuck_streak += 1;
                    if stuck_streak > stall_horizon {
                        break;
                    }
                } else {
                    stuck_streak = 0;
                    last_sig = sig;
                }
            }
            self.step_all(None, sc);
        }
    }
}

/// Producer side of a recycled batch channel: take an empty batch from
/// `back_rx`, fill it, send it on `tx`.
#[derive(Debug)]
struct BatchTx<T> {
    tx: SyncSender<T>,
    back_rx: Receiver<T>,
}

/// Consumer side: receive a filled batch on `rx`, drain it, return it on
/// `back_tx`. Batches circulate, so the steady-state loop never allocates.
#[derive(Debug)]
struct BatchRx<T> {
    rx: Receiver<T>,
    back_tx: SyncSender<T>,
}

/// Builds one bounded, recycled inter-stage channel: `seed` empty batches
/// circulate between producer and consumer, bounding the slot skew between
/// neighbouring stage workers without ever blocking the whole pipeline.
fn batch_channel<T: Default>(seed: usize) -> (BatchTx<T>, BatchRx<T>) {
    let (tx, rx) = sync_channel(seed + 1);
    let (back_tx, back_rx) = sync_channel(seed + 1);
    for _ in 0..seed {
        let _ = back_tx.send(T::default());
    }
    (BatchTx { tx, back_rx }, BatchRx { rx, back_tx })
}

/// Empty batches kept circulating per channel (bounds worker skew to a few
/// slots; 2 would do — one in flight, one being filled — 3 adds slack).
const BATCH_SEED: usize = 3;

/// The slot window and link parameters a stage worker runs over.
#[derive(Debug, Clone, Copy)]
struct RunWindow {
    start: u64,
    slots: u64,
    latency: u64,
    capacity: usize,
}

/// The ingress stage worker: generates external arrivals chunk-at-a-time,
/// steps the stage, ships forward batches downstream and absorbs returned
/// credits. A slot-`t` iteration consumes the credit batch of slot `t-1`
/// (none at `t == 0`), so everything it observes is already visible.
fn ingress_worker<B: PacketBuffer, A: ArrivalGenerator>(
    stage: &mut Stage<B>,
    arrivals: &mut [A],
    win: RunWindow,
    fwd_out: &BatchTx<FwdBatch>,
    cred_in: &BatchRx<CreditBatch>,
) {
    let ext = arrivals.len();
    let mut rings: Vec<Vec<Option<Cell>>> = vec![vec![None; FABRIC_CHUNK_SLOTS]; ext]; // analyze: allow(hotpath-alloc) — per-run chunk rings allocated once at worker entry, before the slot loop
    let mut lines: Vec<Option<Cell>> = vec![None; ext]; // analyze: allow(hotpath-alloc) — per-run scratch allocated once at worker entry, before the slot loop
    let mut unused_credits = CreditBatch::default();
    for offset in 0..win.slots {
        let slot = win.start + offset;
        if offset > 0 {
            // Credits of slot-1, visible from slot onwards.
            let Ok(mut batch) = cred_in.rx.recv() else {
                return;
            };
            stage.apply_credits(&mut batch, win.latency);
            let _ = cred_in.back_tx.send(batch);
        }
        let idx = (offset as usize) % FABRIC_CHUNK_SLOTS;
        if idx == 0 {
            let len = FABRIC_CHUNK_SLOTS.min((win.slots - offset) as usize);
            for (generator, ring) in arrivals.iter_mut().zip(rings.iter_mut()) {
                generator.fill_arrivals(slot, &mut ring[..len]);
            }
        }
        for (line, ring) in lines.iter_mut().zip(rings.iter_mut()) {
            *line = ring[idx].take();
        }
        let Ok(mut fwd) = fwd_out.back_rx.recv() else {
            return;
        };
        stage.step(slot, Some(&mut lines), &mut fwd, &mut unused_credits);
        if fwd_out.tx.send(fwd).is_err() {
            return;
        }
    }
    // The last slot's credits are still in flight; absorb them so the
    // serially-drained state matches the serial driver exactly.
    if win.slots > 0 {
        if let Ok(mut batch) = cred_in.rx.recv() {
            stage.apply_credits(&mut batch, win.latency);
        }
    }
}

/// The middle stage worker (worker count >= 3): consumes ingress forward
/// batches and egress credit batches of slot `t-1`, steps, ships its own.
fn middle_worker<B: PacketBuffer>(
    stage: &mut Stage<B>,
    win: RunWindow,
    fwd_in: &BatchRx<FwdBatch>,
    cred_out: &BatchTx<CreditBatch>,
    fwd_out: &BatchTx<FwdBatch>,
    cred_in: &BatchRx<CreditBatch>,
) {
    for offset in 0..win.slots {
        let slot = win.start + offset;
        if offset > 0 {
            let Ok(mut batch) = fwd_in.rx.recv() else {
                return;
            };
            stage.apply_fwd(&mut batch, win.latency, win.capacity);
            let _ = fwd_in.back_tx.send(batch);
            let Ok(mut batch) = cred_in.rx.recv() else {
                return;
            };
            stage.apply_credits(&mut batch, win.latency);
            let _ = cred_in.back_tx.send(batch);
        }
        let Ok(mut fwd) = fwd_out.back_rx.recv() else {
            return;
        };
        let Ok(mut credits) = cred_out.back_rx.recv() else {
            return;
        };
        stage.step(slot, None, &mut fwd, &mut credits);
        if fwd_out.tx.send(fwd).is_err() || cred_out.tx.send(credits).is_err() {
            return;
        }
    }
    if win.slots > 0 {
        if let Ok(mut batch) = fwd_in.rx.recv() {
            stage.apply_fwd(&mut batch, win.latency, win.capacity);
        }
        if let Ok(mut batch) = cred_in.rx.recv() {
            stage.apply_credits(&mut batch, win.latency);
        }
    }
}

/// The egress stage worker (worker count >= 3): consumes middle forward
/// batches of slot `t-1`, steps, returns credits.
fn egress_worker<B: PacketBuffer>(
    stage: &mut Stage<B>,
    win: RunWindow,
    fwd_in: &BatchRx<FwdBatch>,
    cred_out: &BatchTx<CreditBatch>,
) {
    let mut unused_fwd = FwdBatch::default();
    for offset in 0..win.slots {
        let slot = win.start + offset;
        if offset > 0 {
            let Ok(mut batch) = fwd_in.rx.recv() else {
                return;
            };
            stage.apply_fwd(&mut batch, win.latency, win.capacity);
            let _ = fwd_in.back_tx.send(batch);
        }
        let Ok(mut credits) = cred_out.back_rx.recv() else {
            return;
        };
        stage.step(slot, None, &mut unused_fwd, &mut credits);
        if cred_out.tx.send(credits).is_err() {
            return;
        }
    }
    if win.slots > 0 {
        if let Ok(mut batch) = fwd_in.rx.recv() {
            stage.apply_fwd(&mut batch, win.latency, win.capacity);
        }
    }
}

/// The fused middle+egress worker (worker count 2): the two downstream
/// stages step in serial order on one thread — their local batches need no
/// channel — while ingress runs concurrently upstream. The middle→egress
/// batch is carried one iteration and applied *after* egress steps the
/// producing slot, matching the dedicated egress worker's receive timing.
fn middle_egress_worker<B: PacketBuffer>(
    middle: &mut Stage<B>,
    egress: &mut Stage<B>,
    win: RunWindow,
    fwd_in: &BatchRx<FwdBatch>,
    cred_out: &BatchTx<CreditBatch>,
) {
    let mut fwd_b = FwdBatch::default();
    let mut cred_b = CreditBatch::default();
    let mut unused_fwd = FwdBatch::default();
    for offset in 0..win.slots {
        let slot = win.start + offset;
        if offset > 0 {
            let Ok(mut batch) = fwd_in.rx.recv() else {
                return;
            };
            middle.apply_fwd(&mut batch, win.latency, win.capacity);
            let _ = fwd_in.back_tx.send(batch);
        }
        let Ok(mut cred_a) = cred_out.back_rx.recv() else {
            return;
        };
        middle.step(slot, None, &mut fwd_b, &mut cred_a);
        if cred_out.tx.send(cred_a).is_err() {
            return;
        }
        egress.step(slot, None, &mut unused_fwd, &mut cred_b);
        egress.apply_fwd(&mut fwd_b, win.latency, win.capacity);
        middle.apply_credits(&mut cred_b, win.latency);
    }
    if win.slots > 0 {
        if let Ok(mut batch) = fwd_in.rx.recv() {
            middle.apply_fwd(&mut batch, win.latency, win.capacity);
        }
    }
}

/// The ingress worker of a closed-loop transport run: like
/// [`ingress_worker`], but the arrivals come from the sources' ack/timer
/// state machines instead of open-loop generators. A slot-`t` iteration
/// consumes the credit batch of slot `t-1` first, so the acks it hands the
/// sources are exactly the ones the serial driver sees at slot `t`.
fn ingress_transport_worker<B: PacketBuffer>(
    stage: &mut Stage<B>,
    sources: &mut [ClosedLoopSource],
    win: RunWindow,
    fwd_out: &BatchTx<FwdBatch>,
    cred_in: &BatchRx<CreditBatch>,
) {
    let ext = sources.len();
    let mut lines: Vec<Option<Cell>> = vec![None; ext]; // analyze: allow(hotpath-alloc) — per-run scratch allocated once at worker entry, before the slot loop
    let mut unused_credits = CreditBatch::default();
    for offset in 0..win.slots {
        let slot = win.start + offset;
        if offset > 0 {
            let Ok(mut batch) = cred_in.rx.recv() else {
                return;
            };
            stage.apply_credits(&mut batch, win.latency);
            let _ = cred_in.back_tx.send(batch);
        }
        while let Some(&(avail, tag)) = stage.ack_pending.front() {
            if avail > slot {
                break;
            }
            stage.ack_pending.pop_front();
            sources[tag.src as usize].on_ack(tag.dest, tag.seq, slot);
        }
        let radix = stage.radix as u32;
        for (line, source) in lines.iter_mut().zip(sources.iter_mut()) {
            source.expire_timers(slot);
            let sent_retries = source.retransmitted();
            *line = source
                .poll(slot, true)
                .map(|(dest, seq)| Cell::new(LogicalQueueId::new(dest), seq, slot));
            if let Some(ob) = stage.obs.as_mut() {
                if source.retransmitted() > sent_retries {
                    if let Some(cell) = line.as_ref() {
                        let src = source.src();
                        let tag = FlowTag {
                            src,
                            dest: cell.queue().index(),
                            seq: cell.seq(),
                        };
                        ob.record_event(slot, EventKind::Retransmit, src / radix, src % radix, tag);
                    }
                }
            }
        }
        let Ok(mut fwd) = fwd_out.back_rx.recv() else {
            return;
        };
        stage.step(slot, Some(&mut lines), &mut fwd, &mut unused_credits);
        if fwd_out.tx.send(fwd).is_err() {
            return;
        }
    }
    if win.slots > 0 {
        if let Ok(mut batch) = cred_in.rx.recv() {
            stage.apply_credits(&mut batch, win.latency);
        }
    }
}

impl<B: PacketBuffer> ClosFabric<B> {
    /// Runs the Clos: `active_slots` slots of live arrivals (generator `g`
    /// feeds external port `g`; its queue ids are *global* destinations in
    /// `0..r·N`), then a single-threaded drain until every deliverable cell
    /// has left on an external line.
    ///
    /// `workers` selects the execution schedule — 1 steps the three stages
    /// serially (with chunked arrivals and the idle fast-forward), 2 puts
    /// the ingress stage on its own thread, 3 or more gives every stage its
    /// own thread. The report is **byte-identical for every worker count**
    /// and bit-identical to [`ClosFabric::run_reference`]; differential
    /// tests pin all of it.
    ///
    /// # Panics
    ///
    /// Panics when the generator count or any generator's queue count does
    /// not match the external port count.
    pub fn run<A: ArrivalGenerator + Send>(
        &mut self,
        arrivals: &mut [A],
        active_slots: u64,
        workers: usize,
    ) -> ClosRunReport
    where
        B: Send,
    {
        self.check_generators(arrivals);
        let mut sc = SerialScratch::default();
        if workers <= 1 {
            self.run_active_serial(arrivals, active_slots, &mut sc);
        } else {
            let win = RunWindow {
                start: self.clock,
                slots: active_slots,
                latency: self.config.link_latency,
                capacity: self.config.link_capacity,
            };
            let ClosFabric {
                ingress,
                middle,
                egress,
                clock,
                ..
            } = self;
            let (fwd_a_tx, fwd_a_rx) = batch_channel::<FwdBatch>(BATCH_SEED);
            let (cred_a_tx, cred_a_rx) = batch_channel::<CreditBatch>(BATCH_SEED);
            if workers == 2 {
                std::thread::scope(|scope| {
                    scope.spawn(move || {
                        ingress_worker(ingress, arrivals, win, &fwd_a_tx, &cred_a_rx);
                    });
                    scope.spawn(move || {
                        middle_egress_worker(middle, egress, win, &fwd_a_rx, &cred_a_tx);
                    });
                });
            } else {
                let (fwd_b_tx, fwd_b_rx) = batch_channel::<FwdBatch>(BATCH_SEED);
                let (cred_b_tx, cred_b_rx) = batch_channel::<CreditBatch>(BATCH_SEED);
                std::thread::scope(|scope| {
                    scope.spawn(move || {
                        ingress_worker(ingress, arrivals, win, &fwd_a_tx, &cred_a_rx);
                    });
                    scope.spawn(move || {
                        middle_worker(middle, win, &fwd_a_rx, &cred_a_tx, &fwd_b_tx, &cred_b_rx);
                    });
                    scope.spawn(move || egress_worker(egress, win, &fwd_b_rx, &cred_b_tx));
                });
            }
            *clock += active_slots;
        }
        self.finish(active_slots, &mut sc)
    }

    /// Runs the Clos slot by slot on one thread with no chunking and no
    /// idle fast-forward: the skip-free reference twin every other schedule
    /// is differentially tested against.
    ///
    /// # Panics
    ///
    /// Panics when the generator count or any generator's queue count does
    /// not match the external port count.
    pub fn run_reference<A: ArrivalGenerator>(
        &mut self,
        arrivals: &mut [A],
        active_slots: u64,
    ) -> ClosRunReport {
        self.check_generators(arrivals);
        let ext = self.config.external_ports();
        let mut sc = SerialScratch::default();
        let mut lines: Vec<Option<Cell>> = vec![None; ext]; // analyze: allow(hotpath-alloc) — per-run scratch allocated once at run entry (reference engine)
        for _ in 0..active_slots {
            let t = self.clock;
            for (line, generator) in lines.iter_mut().zip(arrivals.iter_mut()) {
                *line = generator.next(t);
            }
            self.step_all(Some(&mut lines), &mut sc);
        }
        self.finish(active_slots, &mut sc)
    }

    /// Ends the active phase: snapshots the utilisation boundary, drains
    /// serially and builds the report.
    fn finish(&mut self, active_slots: u64, sc: &mut SerialScratch) -> ClosRunReport {
        self.ingress.snapshot_active_matches();
        self.middle.snapshot_active_matches();
        self.egress.snapshot_active_matches();
        self.drain(sc);
        self.build_report(active_slots)
    }

    fn check_sources(&self, sources: &[ClosedLoopSource]) {
        let ext = self.config.external_ports();
        assert_eq!(
            sources.len(),
            ext,
            "one closed-loop source per external port"
        );
        for (g, source) in sources.iter().enumerate() {
            assert_eq!(
                source.src() as usize,
                g,
                "source {g} must send from external port {g}"
            );
            assert_eq!(
                source.num_ports(),
                ext,
                "source {g} must target one destination per external port"
            );
        }
    }

    /// One serial slot of a closed-loop run: deliver the acks that became
    /// visible this slot, fire timers, poll each source for at most one
    /// cell, then advance the whole fabric. Mirrors
    /// [`ingress_transport_worker`]'s per-slot order exactly.
    fn transport_slot(
        &mut self,
        sources: &mut [ClosedLoopSource],
        lines: &mut [Option<Cell>],
        allow_new: bool,
        sc: &mut SerialScratch,
        record: Option<&mut MatrixTrace>,
    ) {
        let slot = self.clock;
        while let Some(&(avail, tag)) = self.ingress.ack_pending.front() {
            if avail > slot {
                break;
            }
            self.ingress.ack_pending.pop_front();
            sources[tag.src as usize].on_ack(tag.dest, tag.seq, slot);
        }
        let radix = self.config.radix as u32;
        for (line, source) in lines.iter_mut().zip(sources.iter_mut()) {
            source.expire_timers(slot);
            let sent_retries = source.retransmitted();
            *line = source
                .poll(slot, allow_new)
                .map(|(dest, seq)| Cell::new(LogicalQueueId::new(dest), seq, slot));
            if let Some(ob) = self.ingress.obs.as_mut() {
                if source.retransmitted() > sent_retries {
                    if let Some(cell) = line.as_ref() {
                        let src = source.src();
                        let tag = FlowTag {
                            src,
                            dest: cell.queue().index(),
                            seq: cell.seq(),
                        };
                        ob.record_event(slot, EventKind::Retransmit, src / radix, src % radix, tag);
                    }
                }
            }
        }
        if let Some(trace) = record {
            let row: Vec<Option<(u32, u64)>> = lines
                .iter()
                .map(|c| c.as_ref().map(|c| (c.queue().index(), c.seq())))
                .collect(); // analyze: allow(hotpath-alloc) — recording path only, never taken by the steady-state drivers
            trace.record_slot(&row);
        }
        self.step_all(Some(lines), sc);
    }

    /// Runs the fabric with closed-loop reliable sources: `active_slots`
    /// slots in which sources may open new work, then a recovery tail in
    /// which pending retransmissions finish (or exhaust their budget) and
    /// the fabric drains. Requires [`ClosFabric::enable_transport`].
    ///
    /// `workers` selects the execution schedule exactly like
    /// [`ClosFabric::run`]; the report is byte-identical for every worker
    /// count. The tail always runs single-threaded.
    ///
    /// # Panics
    ///
    /// Panics when the transport is not enabled, or when the source count,
    /// source ports or port counts do not match the geometry.
    pub fn run_transport(
        &mut self,
        sources: &mut [ClosedLoopSource],
        active_slots: u64,
        workers: usize,
    ) -> ClosRunReport
    where
        B: Send,
    {
        self.run_transport_inner(sources, active_slots, workers, None)
    }

    /// [`ClosFabric::run_transport`] with the exact injected traffic matrix
    /// recorded into `trace` (serial schedule only): replaying the trace
    /// open-loop through an identically built-and-armed fabric reproduces
    /// this run's deliveries bit-identically.
    ///
    /// # Panics
    ///
    /// Panics like [`ClosFabric::run_transport`].
    pub fn run_transport_recorded(
        &mut self,
        sources: &mut [ClosedLoopSource],
        active_slots: u64,
        trace: &mut MatrixTrace,
    ) -> ClosRunReport
    where
        B: Send,
    {
        *trace = MatrixTrace::new(self.config.external_ports());
        self.run_transport_inner(sources, active_slots, 1, Some(trace))
    }

    fn run_transport_inner(
        &mut self,
        sources: &mut [ClosedLoopSource],
        active_slots: u64,
        workers: usize,
        mut record: Option<&mut MatrixTrace>,
    ) -> ClosRunReport
    where
        B: Send,
    {
        let config = self
            .transport
            .expect("enable_transport must be called before run_transport"); // analyze: allow(panic-freedom) — documented API contract, checked once at run entry before the slot loop
        self.check_sources(sources);
        // Latency probes extend to the transport layer: each source tracks
        // first-injection-to-ack latency so retransmitted cells are timed
        // over their whole recovery.
        if self.obs.as_ref().is_some_and(|c| c.latency_hist) {
            for source in sources.iter_mut() {
                source.arm_latency_obs();
            }
        }
        let ext = self.config.external_ports();
        let mut sc = SerialScratch::default();
        let mut lines: Vec<Option<Cell>> = vec![None; ext]; // analyze: allow(hotpath-alloc) — per-run scratch allocated once at run entry, before the slot loop
        if workers <= 1 || record.is_some() {
            // No idle fast-forward in the active phase: a source with an
            // armed timer is never provably idle anyway, and skip-free slots
            // keep the serial driver the reference for the workers.
            for _ in 0..active_slots {
                self.transport_slot(sources, &mut lines, true, &mut sc, record.as_deref_mut());
            }
        } else {
            let win = RunWindow {
                start: self.clock,
                slots: active_slots,
                latency: self.config.link_latency,
                capacity: self.config.link_capacity,
            };
            let ClosFabric {
                ingress,
                middle,
                egress,
                clock,
                ..
            } = self;
            let (fwd_a_tx, fwd_a_rx) = batch_channel::<FwdBatch>(BATCH_SEED);
            let (cred_a_tx, cred_a_rx) = batch_channel::<CreditBatch>(BATCH_SEED);
            let src_ref = &mut *sources;
            if workers == 2 {
                std::thread::scope(|scope| {
                    scope.spawn(move || {
                        ingress_transport_worker(ingress, src_ref, win, &fwd_a_tx, &cred_a_rx);
                    });
                    scope.spawn(move || {
                        middle_egress_worker(middle, egress, win, &fwd_a_rx, &cred_a_tx);
                    });
                });
            } else {
                let (fwd_b_tx, fwd_b_rx) = batch_channel::<FwdBatch>(BATCH_SEED);
                let (cred_b_tx, cred_b_rx) = batch_channel::<CreditBatch>(BATCH_SEED);
                std::thread::scope(|scope| {
                    scope.spawn(move || {
                        ingress_transport_worker(ingress, src_ref, win, &fwd_a_tx, &cred_a_rx);
                    });
                    scope.spawn(move || {
                        middle_worker(middle, win, &fwd_a_rx, &cred_a_tx, &fwd_b_tx, &cred_b_rx);
                    });
                    scope.spawn(move || egress_worker(egress, win, &fwd_b_rx, &cred_b_tx));
                });
            }
            *clock += active_slots;
        }
        self.ingress.snapshot_active_matches();
        self.middle.snapshot_active_matches();
        self.egress.snapshot_active_matches();
        self.run_transport_tail(sources, &mut lines, &mut sc, record);
        let mut report = self.build_report(active_slots);
        let sink = self
            .egress
            .delivery
            .as_ref()
            .and_then(|d| d.transport.as_ref())
            .expect("transport sink present on a transport run"); // analyze: allow(panic-freedom) — enable_transport installed the sink; checked once after the slot loop
        let sp = config.source_params();
        let first_injection_latency = {
            let mut merged: Option<Log2Histogram> = None;
            for source in sources.iter() {
                if let Some(hist) = source.first_injection_hist() {
                    merged.get_or_insert_with(Log2Histogram::new).merge(hist);
                }
            }
            merged.as_ref().map(HistogramReport::from_hist)
        };
        report.transport = Some(TransportReport {
            rto_initial: sp.rto_initial,
            rto_cap: sp.rto_cap,
            max_retries: sp.max_retries,
            cwnd_init: sp.cwnd_init,
            cwnd_max: sp.cwnd_max,
            goodput_bucket: sink.bucket(),
            injected_cells: sources.iter().map(ClosedLoopSource::injected).sum(),
            retransmitted_cells: sources.iter().map(ClosedLoopSource::retransmitted).sum(),
            timeouts_fired: sources.iter().map(ClosedLoopSource::timeouts).sum(),
            acked_cells: sources.iter().map(ClosedLoopSource::acked).sum(),
            delivered_unique: sink.delivered_unique(),
            duplicates_filtered: sink.duplicates_filtered(),
            duplicate_deliveries: sink.duplicate_deliveries(),
            gave_up_cells: sources.iter().map(ClosedLoopSource::gave_up).sum(),
            in_flight_at_end: sources.iter().map(|s| s.in_flight_len() as u64).sum(),
            retransmissions_outstanding_at_end: sources.iter().map(|s| s.rq_len() as u64).sum(),
            goodput: sink.goodput().to_vec(), // analyze: allow(hotpath-alloc) — report assembly, once after the run
            first_injection_latency,
        });
        report
    }

    /// The recovery tail of a closed-loop run: always single-threaded. While
    /// any source still has work in flight (or acks are still riding home)
    /// the loop keeps stepping — fast-forwarding provably idle gaps to the
    /// next retransmission deadline — with fresh injection disabled; once
    /// every source is quiet it degrades into exactly the open-loop drain
    /// (same flush horizon, same stuck-signature escape under permanent
    /// faults). Bounded retry budgets make the whole tail finite.
    fn run_transport_tail(
        &mut self,
        sources: &mut [ClosedLoopSource],
        lines: &mut [Option<Cell>],
        sc: &mut SerialScratch,
        mut record: Option<&mut MatrixTrace>,
    ) {
        let flush = [&self.ingress, &self.middle, &self.egress]
            .iter()
            .flat_map(|stage| stage.switches.iter().map(VoqSwitch::max_pipeline_delay))
            .max()
            .unwrap_or(0) as u64
            + 4;
        let faulted = self.plan.is_some();
        let stall_horizon = flush
            + 2 * self.config.link_latency
            + self.plan.as_ref().map_or(0, FaultPlan::max_slow_factor)
            + 8;
        let mut idle_streak = 0u64;
        let mut stuck_streak = 0u64;
        let mut last_sig = (0u64, 0u64, 0u64, 0u64, 0usize);
        loop {
            let sources_quiet = sources.iter().all(ClosedLoopSource::is_quiet);
            // Acks still riding home count as pending on every hop: a late
            // ack can resurrect an abandoned cell, so the tail must not end
            // while one is in flight anywhere.
            let acks_pending = [&self.ingress, &self.middle, &self.egress]
                .iter()
                .any(|stage| !stage.ack_pending.is_empty());
            if sources_quiet && !acks_pending {
                let stages = [&self.ingress, &self.middle, &self.egress];
                let requestable = stages.iter().any(|stage| {
                    stage.link_resident() > 0
                        || stage.switches.iter().any(|sw| sw.requestable_total() > 0)
                });
                if requestable {
                    idle_streak = 0;
                } else {
                    let quiescent = stages
                        .iter()
                        .all(|stage| stage.switches.iter().all(VoqSwitch::buffers_quiescent));
                    let flushed = stages
                        .iter()
                        .all(|stage| stage.switches.iter().all(|sw| sw.egress_backlog() == 0));
                    if (quiescent || idle_streak > flush) && flushed {
                        break;
                    }
                    idle_streak += 1;
                }
                if faulted {
                    let sig = (
                        stages
                            .iter()
                            .flat_map(|stage| stage.switches.iter())
                            .map(VoqSwitch::matches_so_far)
                            .sum::<u64>(),
                        stages
                            .iter()
                            .flat_map(|stage| stage.switches.iter())
                            .map(VoqSwitch::egress_backlog)
                            .sum::<u64>(),
                        stages
                            .iter()
                            .map(|stage| stage.link_resident())
                            .sum::<u64>(),
                        stages
                            .iter()
                            .flat_map(|stage| stage.switches.iter())
                            .map(VoqSwitch::requestable_total)
                            .sum::<u64>(),
                        stages
                            .iter()
                            .map(|stage| stage.credit_pending.len())
                            .sum::<usize>(),
                    );
                    let edge_ahead = self.fault_edges.last().is_some_and(|&e| e > self.clock);
                    if sig == last_sig && !edge_ahead {
                        stuck_streak += 1;
                        if stuck_streak > stall_horizon {
                            break;
                        }
                    } else {
                        stuck_streak = 0;
                        last_sig = sig;
                    }
                }
            } else {
                idle_streak = 0;
                stuck_streak = 0;
                if self.is_idle() && !acks_pending {
                    // Nothing anywhere in the fabric: the only future event
                    // is a source timer. Jump straight to it.
                    let next = sources
                        .iter()
                        .filter_map(ClosedLoopSource::next_action_slot)
                        .min();
                    if let Some(next) = next {
                        if next > self.clock {
                            let skip = next - self.clock;
                            if let Some(trace) = record.as_deref_mut() {
                                trace.pad_idle(skip);
                            }
                            self.advance_idle(skip);
                            continue;
                        }
                    }
                }
            }
            self.transport_slot(sources, lines, false, sc, record.as_deref_mut());
        }
    }

    fn stage_report(stage: &Stage<B>, active_slots: u64) -> ClosStageReport {
        let switches: Vec<FabricRunReport> = stage
            .switches
            .iter()
            .zip(&stage.active_matches)
            .map(|(switch, &matches)| switch.snapshot_report(active_slots, matches))
            .collect();
        let utilization = if switches.is_empty() {
            0.0
        } else {
            switches.iter().map(|r| r.crossbar_utilization).sum::<f64>() / switches.len() as f64
        };
        ClosStageReport {
            stage: stage.stage.label(),
            crossbar_utilization: utilization,
            link_resident_cells: stage.link_resident(),
            link_dropped_cells: stage.link_dropped,
            peak_link_depth: stage.peak_link_depth as u64,
            credit_stall_slots: stage.credit_stall_slots,
            switches,
        }
    }

    fn build_report(&self, active_slots: u64) -> ClosRunReport {
        let config = &self.config;
        let ext = config.external_ports();
        let stages = vec![
            Self::stage_report(&self.ingress, active_slots),
            Self::stage_report(&self.middle, active_slots),
            Self::stage_report(&self.egress, active_slots),
        ];
        let arrivals: u64 = self.ingress.offered_matrix.iter().sum();
        let delivery = self.egress.delivery.as_ref();
        let delivered_matrix = delivery.map_or_else(Vec::new, |d| d.delivered_matrix.clone());
        let delivered: u64 = delivered_matrix.iter().sum();
        let reordered_cells = delivery.map_or(0, |d| d.reordered_cells);
        let reordered_flows = delivery.map_or(0, |d| {
            d.flow_reordered.iter().filter(|&&f| f).count() as u64
        });
        let active_flows = self
            .ingress
            .offered_matrix
            .iter()
            .filter(|&&c| c > 0)
            .count() as u64;
        let link_dropped_cells: u64 = stages.iter().map(|s| s.link_dropped_cells).sum();
        let buffer_lost: u64 = stages
            .iter()
            .flat_map(|s| s.switches.iter().map(|r| r.lost_cells))
            .sum();
        let resident_cells: u64 = stages
            .iter()
            .flat_map(|s| s.switches.iter().map(|r| r.resident_cells))
            .sum();
        let link_resident_cells: u64 = stages.iter().map(|s| s.link_resident_cells).sum();
        // External end-to-end latency lives at the egress-stage output
        // lines (the cell's line-side arrival slot survives re-sequencing).
        let egress_outputs = stages[2].switches.iter().flat_map(|r| r.per_output.iter());
        let latency_weighted: f64 = egress_outputs
            .clone()
            .map(|o| o.mean_latency_slots * o.transmitted as f64)
            .sum();
        let mean_latency_slots = if delivered == 0 {
            0.0
        } else {
            latency_weighted / delivered as f64
        };
        let max_latency_slots = egress_outputs
            .map(|o| o.max_latency_slots)
            .max()
            .unwrap_or(0);
        // Merge every stage's per-event impact counters, then account the
        // cells a still-dead middle switch froze in place as stranded: its
        // own egress-FIFO backlog, plus the cells the ingress switches had
        // already granted into their output FIFOs toward it (creditless
        // once the dead link filled, so equally frozen). Each FIFO is
        // attributed to the first death window still active, so overlapping
        // windows cannot double-count.
        let faults = self.plan.as_ref().map(|plan| {
            let mut merged = vec![ImpactCounters::default(); plan.events.len()];
            for stage in [&self.ingress, &self.middle, &self.egress] {
                if let Some(f) = stage.faults.as_ref() {
                    for (m, c) in merged.iter_mut().zip(&f.impact) {
                        m.merge(c);
                    }
                }
            }
            if let Some(f) = self.middle.faults.as_ref() {
                for (s, switch) in self.middle.switches.iter().enumerate() {
                    let backlog = switch.egress_backlog();
                    if backlog == 0 {
                        continue;
                    }
                    if let Some(&(e, _, _)) = f
                        .dead_switches
                        .iter()
                        .find(|&&(_, sw, w)| sw == s && w.contains(self.clock))
                    {
                        merged[e].stranded_cells += backlog;
                    }
                }
            }
            if let Some(f) = self.ingress.faults.as_ref() {
                for switch in &self.ingress.switches {
                    for p in 0..self.config.middle_switches {
                        let depth = switch.egress_depth(p) as u64;
                        if depth == 0 {
                            continue;
                        }
                        if let Some(&(e, _, _)) = f
                            .dead_paths
                            .iter()
                            .find(|&&(_, sw, w)| sw == p && w.contains(self.clock))
                        {
                            merged[e].stranded_cells += depth;
                        }
                    }
                }
            }
            FaultLedger::from_events(&plan.events, &merged)
        });
        let refused = faults.as_ref().map_or(0, |l| l.refused_cells);
        let lost_cells = buffer_lost + link_dropped_cells + refused;
        // Probe assembly, once after the run; `None` (and absent from the
        // serialized report) unless `arm_obs` armed probes.
        let obs = self.obs.as_ref().map(|oc| {
            let latency = if oc.latency_hist {
                let mut merged: Option<Log2Histogram> = None;
                for switch in &self.egress.switches {
                    if let Some(hist) = switch.merged_latency_hist() {
                        merged.get_or_insert_with(Log2Histogram::new).merge(&hist);
                    }
                }
                merged.as_ref().map(HistogramReport::from_hist)
            } else {
                None
            };
            let stage_obs = |stage: &Stage<B>| {
                let probes = stage.obs.as_ref();
                ClosStageObsReport {
                    stage: stage.stage.label(),
                    voq_backlog: probes
                        .and_then(|o| o.voq_backlog.as_ref())
                        .map(HistogramReport::from_hist),
                    link_occupancy: probes
                        .and_then(|o| o.link_occupancy.as_ref())
                        .map(HistogramReport::from_hist),
                    series: probes
                        .and_then(|o| o.series.as_ref())
                        .map(SeriesReport::from_ring),
                }
            };
            let trace = oc.trace_enabled().then(|| {
                let mut dropped = 0;
                let mut parts = Vec::new();
                for stage in [&self.ingress, &self.middle, &self.egress] {
                    if let Some(rec) = stage.obs.as_ref().and_then(|o| o.recorder.as_ref()) {
                        dropped += rec.dropped();
                        parts.push(rec.events().to_vec());
                    }
                }
                if let Some(plan) = self.plan.as_ref() {
                    parts.push(self.fault_trace_events(plan));
                }
                TraceReport {
                    dropped,
                    events: merge_events(parts),
                }
            });
            ClosObsReport {
                latency,
                stages: vec![
                    stage_obs(&self.ingress),
                    stage_obs(&self.middle),
                    stage_obs(&self.egress),
                ],
                trace,
            }
        });
        ClosRunReport {
            radix: config.radix,
            ingress_switches: config.ingress_switches,
            middle_switches: config.middle_switches,
            external_ports: ext,
            dispatch: config.dispatch.label(),
            discipline: if self.plan.as_ref().is_some_and(FaultPlan::has_drop_on_full) {
                "drop-on-full"
            } else {
                "credit"
            },
            arbiter: stages[0].switches.first().map_or("islip", |r| r.arbiter),
            link_capacity: config.link_capacity,
            link_latency: config.link_latency,
            slots: self.clock,
            active_slots,
            arrivals,
            delivered,
            lost_cells,
            link_dropped_cells,
            resident_cells,
            link_resident_cells,
            reordered_cells,
            reordered_flows,
            active_flows,
            credit_stall_slots: stages.iter().map(|s| s.credit_stall_slots).sum(),
            peak_link_depth: stages.iter().map(|s| s.peak_link_depth).max().unwrap_or(0),
            mean_latency_slots,
            max_latency_slots,
            zero_loss: lost_cells == 0,
            stages,
            arrivals_matrix: self.ingress.offered_matrix.clone(),
            delivered_matrix,
            faults,
            transport: None,
            obs,
        }
    }

    /// Synthesizes fault-window open/close markers for the flight-recorder
    /// timeline: one `fault-open` at each event's start slot and, for bounded
    /// windows, one `fault-close` at its end. Locations map onto the
    /// stage/switch/port scheme of the real events; flow fields are zero.
    fn fault_trace_events(&self, plan: &FaultPlan) -> Vec<TraceEvent> {
        let radix = self.config.radix as u32;
        let mut events = Vec::new();
        for fe in &plan.events {
            let (stage, switch, port) = match fe.kind {
                FaultKind::MiddleDeath { switch } => (1, switch as u32, 0),
                FaultKind::LinkFlap {
                    boundary,
                    switch,
                    output,
                } => {
                    let stage = match boundary {
                        LinkBoundary::IngressMiddle => 0,
                        LinkBoundary::MiddleEgress => 1,
                    };
                    (stage, switch as u32, output as u32)
                }
                FaultKind::EgressSlowdown { port, .. } => {
                    (2, port as u32 / radix, port as u32 % radix)
                }
                FaultKind::IngressPortDeath { port } => {
                    (0, port as u32 / radix, port as u32 % radix)
                }
                FaultKind::DropOnFull => (0, 0, 0),
            };
            let mark = |slot, kind| TraceEvent {
                slot,
                kind,
                stage,
                switch,
                port,
                src: 0,
                dest: 0,
                seq: 0,
            };
            events.push(mark(fe.start, EventKind::FaultOpen));
            if let Some(d) = fe.duration {
                events.push(mark(fe.start + d, EventKind::FaultClose));
            }
        }
        events
    }
}

/// One stage's outcome: its switches' full [`FabricRunReport`]s plus the
/// stage's inbound-link and credit accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosStageReport {
    /// Stage label ("ingress" / "middle" / "egress").
    pub stage: &'static str,
    /// Mean crossbar utilisation over the stage's switches (active phase).
    pub crossbar_utilization: f64,
    /// Cells still sitting in this stage's inbound link FIFOs (0 after a
    /// completed drain).
    pub link_resident_cells: u64,
    /// Cells discarded at this stage's full inbound links (a `DropOnFull`
    /// fault only; always 0 under credit flow control).
    pub link_dropped_cells: u64,
    /// Deepest any of this stage's inbound link FIFOs has been.
    pub peak_link_depth: u64,
    /// Output-slots in which a queued cell sat gated awaiting a credit.
    pub credit_stall_slots: u64,
    /// Per-switch reports, in switch order.
    pub switches: Vec<FabricRunReport>,
}

impl Serialize for ClosStageReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("ClosStageReport", 7)?;
        st.serialize_field("stage", &self.stage)?;
        st.serialize_field("crossbar_utilization", &self.crossbar_utilization)?;
        st.serialize_field("link_resident_cells", &self.link_resident_cells)?;
        st.serialize_field("link_dropped_cells", &self.link_dropped_cells)?;
        st.serialize_field("peak_link_depth", &self.peak_link_depth)?;
        st.serialize_field("credit_stall_slots", &self.credit_stall_slots)?;
        st.serialize_field("switches", &self.switches)?;
        st.end()
    }
}

/// Serializable per-stage time-series: the columnar samples of one
/// [`SeriesRing`]. Sample `i` covers the `stride` slots ending at
/// `slots[i]`: `transmitted` and `stalls` accumulate over the window,
/// `occupancy` is read at the sample slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesReport {
    /// Slots between samples.
    pub stride: u64,
    /// Samples lost after the preallocated ring filled.
    pub dropped: u64,
    /// Sample slots, ascending.
    pub slots: Vec<u64>,
    /// Cells the stage transmitted during each sample window.
    pub transmitted: Vec<u64>,
    /// Stage occupancy (VOQ + egress-FIFO + inbound-link cells) at each
    /// sample slot.
    pub occupancy: Vec<u64>,
    /// Credit-stall output-slots accumulated during each sample window.
    pub stalls: Vec<u64>,
}

impl SeriesReport {
    fn from_ring(ring: &SeriesRing) -> Self {
        let samples = ring.samples();
        SeriesReport {
            stride: ring.stride(),
            dropped: ring.dropped(),
            slots: samples.iter().map(|s| s.slot).collect(),
            transmitted: samples.iter().map(|s| s.transmitted).collect(),
            occupancy: samples.iter().map(|s| s.occupancy).collect(),
            stalls: samples.iter().map(|s| s.stalls).collect(),
        }
    }
}

impl Serialize for SeriesReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("SeriesReport", 6)?;
        st.serialize_field("stride", &self.stride)?;
        st.serialize_field("dropped", &self.dropped)?;
        st.serialize_field("slots", &self.slots)?;
        st.serialize_field("transmitted", &self.transmitted)?;
        st.serialize_field("occupancy", &self.occupancy)?;
        st.serialize_field("stalls", &self.stalls)?;
        st.end()
    }
}

/// One stage's observability outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosStageObsReport {
    /// Stage label ("ingress" / "middle" / "egress").
    pub stage: &'static str,
    /// VOQ backlog depth histogram (recorded at every enqueue); present
    /// only when the occupancy probes were armed.
    pub voq_backlog: Option<HistogramReport>,
    /// Outbound link occupancy histogram (recorded at every transmit onto
    /// a link); absent at the egress stage, which has no outbound links.
    pub link_occupancy: Option<HistogramReport>,
    /// Slot-sampled throughput/occupancy/stall series, when armed.
    pub series: Option<SeriesReport>,
}

impl Serialize for ClosStageObsReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("ClosStageObsReport", 4)?;
        st.serialize_field("stage", &self.stage)?;
        if let Some(hist) = &self.voq_backlog {
            st.serialize_field("voq_backlog", hist)?;
        }
        if let Some(hist) = &self.link_occupancy {
            st.serialize_field("link_occupancy", hist)?;
        }
        if let Some(series) = &self.series {
            st.serialize_field("series", series)?;
        }
        st.end()
    }
}

/// The merged flight-recorder timeline of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReport {
    /// Events that passed the filters after a stage's ring filled.
    pub dropped: u64,
    /// The merged timeline, ordered by [`TraceEvent::sort_key`] — a total
    /// order, so the dump is independent of worker count. Render it as
    /// Chrome trace-event JSON with [`obs::chrome_trace_json`].
    pub events: Vec<TraceEvent>,
}

/// [`TraceEvent`] lives in the zero-dependency `obs` crate, so its serde
/// wiring lives here.
struct SerTraceEvent<'a>(&'a TraceEvent);

impl Serialize for SerTraceEvent<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let ev = self.0;
        let mut st = serializer.serialize_struct("TraceEvent", 8)?;
        st.serialize_field("event", ev.kind.name())?;
        st.serialize_field("slot", &ev.slot)?;
        st.serialize_field("stage", &ev.stage)?;
        st.serialize_field("switch", &ev.switch)?;
        st.serialize_field("port", &ev.port)?;
        st.serialize_field("src", &ev.src)?;
        st.serialize_field("dest", &ev.dest)?;
        st.serialize_field("seq", &ev.seq)?;
        st.end()
    }
}

struct SerTraceEvents<'a>(&'a [TraceEvent]);

impl Serialize for SerTraceEvents<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeSeq as _;
        let mut seq = serializer.serialize_seq(Some(self.0.len()))?;
        for ev in self.0 {
            seq.serialize_element(&SerTraceEvent(ev))?;
        }
        seq.end()
    }
}

impl Serialize for TraceReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("TraceReport", 2)?;
        st.serialize_field("dropped", &self.dropped)?;
        st.serialize_field("events", &SerTraceEvents(&self.events))?;
        st.end()
    }
}

/// The observability section of a [`ClosRunReport`]; present only when
/// [`ClosFabric::arm_obs`] armed probes for the run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosObsReport {
    /// External end-to-end latency histogram merged over every egress
    /// output line, when the latency probes were armed.
    pub latency: Option<HistogramReport>,
    /// Per-stage probes: ingress, middle, egress.
    pub stages: Vec<ClosStageObsReport>,
    /// The merged flight-recorder timeline, when the recorder was armed.
    pub trace: Option<TraceReport>,
}

impl Serialize for ClosObsReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("ClosObsReport", 3)?;
        if let Some(latency) = &self.latency {
            st.serialize_field("latency", latency)?;
        }
        st.serialize_field("stages", &self.stages)?;
        if let Some(trace) = &self.trace {
            st.serialize_field("trace", trace)?;
        }
        st.end()
    }
}

/// The result of one whole Clos run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClosRunReport {
    /// Radix `N` of the ingress/egress switches.
    pub radix: usize,
    /// Number `r` of ingress (= egress) switches.
    pub ingress_switches: usize,
    /// Number `m` of middle switches.
    pub middle_switches: usize,
    /// External port count `r·N`.
    pub external_ports: usize,
    /// Dispatch policy label ("spray" / "flowhash").
    pub dispatch: &'static str,
    /// Link discipline label: "credit", or "drop-on-full" when a
    /// `DropOnFull` fault disabled credit flow control for the run.
    pub discipline: &'static str,
    /// Arbiter label ("islip" / "maximal").
    pub arbiter: &'static str,
    /// Credits (= FIFO capacity) per inter-stage link.
    pub link_capacity: usize,
    /// One-way inter-stage link latency, slots.
    pub link_latency: u64,
    /// Slots simulated, including the drain phase.
    pub slots: u64,
    /// Slots of the live-arrival phase.
    pub active_slots: u64,
    /// Cells offered across every external ingress line.
    pub arrivals: u64,
    /// Cells transmitted on the external output lines.
    pub delivered: u64,
    /// Cells lost anywhere: buffer drops + misses + order violations over
    /// every switch of every stage, plus dropped link cells and cells
    /// refused at dead external ingress lines.
    pub lost_cells: u64,
    /// Cells discarded at full inter-stage links (a `DropOnFull` fault
    /// only).
    pub link_dropped_cells: u64,
    /// Cells still resident in some buffer when the run ended (residual
    /// partial tail batches — never lost).
    pub resident_cells: u64,
    /// Cells still sitting on inter-stage links when the run ended.
    pub link_resident_cells: u64,
    /// Delivered cells that overtook an earlier cell of their flow.
    pub reordered_cells: u64,
    /// Flows with at least one reordered delivery.
    pub reordered_flows: u64,
    /// (src, dest) pairs that offered at least one cell.
    pub active_flows: u64,
    /// Output-slots in which a queued cell sat gated awaiting a credit
    /// (summed over the ingress and middle stages — the backpressure at
    /// work).
    pub credit_stall_slots: u64,
    /// Deepest any inter-stage link FIFO has been (bounded by
    /// `link_capacity` under credit flow control — checked by tests).
    pub peak_link_depth: u64,
    /// Mean external end-to-end latency over delivered cells, slots.
    pub mean_latency_slots: f64,
    /// Largest external end-to-end latency observed, slots.
    pub max_latency_slots: u64,
    /// Whether no cell was lost anywhere in the fabric.
    pub zero_loss: bool,
    /// Per-stage reports: ingress, middle, egress.
    pub stages: Vec<ClosStageReport>,
    /// Row-major `ext × ext`: cells offered from external src to dest.
    pub arrivals_matrix: Vec<u64>,
    /// Row-major `ext × ext`: cells delivered from external src to dest.
    pub delivered_matrix: Vec<u64>,
    /// The per-fault ledger; `None` when no fault plan was armed (and the
    /// field is then omitted from the serialized report, keeping
    /// fault-free reports byte-identical to pre-fault-framework output).
    pub faults: Option<FaultLedger>,
    /// The end-to-end transport report; `None` on open-loop runs (and the
    /// field is then omitted from the serialized report, keeping open-loop
    /// reports byte-identical to pre-transport output).
    pub transport: Option<TransportReport>,
    /// Observability probes' outcome; present only when
    /// [`ClosFabric::arm_obs`] armed probes for the run (and omitted from
    /// serialization otherwise, keeping uninstrumented reports
    /// byte-identical to the pre-obs schema).
    pub obs: Option<ClosObsReport>,
}

impl ClosRunReport {
    /// Renders the flight-recorder timeline as Chrome trace-event JSON
    /// (load it at `chrome://tracing` or in Perfetto), or `None` when no
    /// recorder was armed for the run.
    pub fn trace_json(&self) -> Option<String> {
        let trace = self.obs.as_ref()?.trace.as_ref()?;
        Some(obs::chrome_trace_json(&trace.events))
    }

    /// Checks cell conservation fabric-wide, across every hand-off:
    ///
    /// * every switch of every stage balances via
    ///   [`FabricRunReport::conservation_deficit`], and the deficits —
    ///   cells a dead switch froze in its egress FIFOs — sum to exactly
    ///   the fault ledger's stranded count (0 with no ledger);
    /// * per flow, deliveries never exceed offers;
    /// * every dropped link cell appears in the fault ledger — a
    ///   **silently** dropped cell (lost without a ledger entry) breaks
    ///   the check, by design;
    /// * at each stage boundary, upstream transmissions equal downstream
    ///   switch arrivals plus cells still on the links plus ledgered link
    ///   drops at that boundary;
    /// * fabric-wide, external arrivals = delivered + buffer residents +
    ///   buffer drops + link residents + **stranded + refused + dropped
    ///   per the fault ledger** — the degraded-mode conservation law: a
    ///   faulted run conserves iff every missing cell is accounted.
    pub fn conservation_holds(&self) -> bool {
        let [ingress, middle, egress] = &self.stages[..] else {
            return false;
        };
        let (stranded, refused, ledger_dropped) = self.faults.as_ref().map_or((0, 0, 0), |l| {
            (l.stranded_cells, l.refused_cells, l.dropped_cells)
        });
        let mut deficits = 0u64;
        let switches_ok = self.stages.iter().flat_map(|s| s.switches.iter()).all(|r| {
            match r.conservation_deficit() {
                Some(d) => {
                    deficits += d;
                    true
                }
                None => false,
            }
        });
        let flows_ok = self
            .delivered_matrix
            .iter()
            .zip(&self.arrivals_matrix)
            .all(|(d, a)| d <= a);
        let boundary = |up: &ClosStageReport, down: &ClosStageReport| {
            let sent: u64 = up.switches.iter().map(|r| r.transmitted).sum();
            let received: u64 = down.switches.iter().map(|r| r.arrivals).sum();
            sent == received + down.link_resident_cells + down.link_dropped_cells
        };
        let delivered: u64 = egress.switches.iter().map(|r| r.transmitted).sum();
        let buffer_drops: u64 = self
            .stages
            .iter()
            .flat_map(|s| s.switches.iter().flat_map(|r| r.per_port.iter()))
            .map(|p| p.stats.drops)
            .sum();
        switches_ok
            && deficits == stranded
            && ledger_dropped == self.link_dropped_cells
            && flows_ok
            && boundary(ingress, middle)
            && boundary(middle, egress)
            && delivered == self.delivered
            && self.arrivals
                == self.delivered
                    + self.resident_cells
                    + buffer_drops
                    + self.link_resident_cells
                    + stranded
                    + refused
                    + ledger_dropped
    }

    /// Checks end-to-end conservation of the reliable transport — the
    /// retry-loop identity nesting [`ClosRunReport::conservation_holds`]
    /// one level up:
    ///
    /// * `injected = acked + in_flight + retransmissions_outstanding +
    ///   gave_up` — every fresh cell is accounted at the sources;
    /// * `acked = delivered_unique` — every unique delivery acked exactly
    ///   once, no ack invented;
    /// * fabric `delivered = delivered_unique + duplicates_filtered` — the
    ///   sink saw every delivered copy;
    /// * `duplicate_deliveries == 0` — exactly-once delivery;
    /// * `duplicates_filtered ≤ retransmitted ≤ timeouts` — every duplicate
    ///   copy traces to a retransmission and every retransmission to a
    ///   fired timer.
    ///
    /// Returns `false` on an open-loop report (no transport to conserve).
    pub fn transport_conservation_holds(&self) -> bool {
        let Some(t) = self.transport.as_ref() else {
            return false;
        };
        t.injected_cells
            == t.acked_cells
                + t.in_flight_at_end
                + t.retransmissions_outstanding_at_end
                + t.gave_up_cells
            && t.acked_cells == t.delivered_unique
            && self.delivered == t.delivered_unique + t.duplicates_filtered
            && t.duplicate_deliveries == 0
            && t.duplicates_filtered <= t.retransmitted_cells
            && t.retransmitted_cells <= t.timeouts_fired
    }
}

impl Serialize for ClosRunReport {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("ClosRunReport", 28)?;
        st.serialize_field("radix", &self.radix)?;
        st.serialize_field("ingress_switches", &self.ingress_switches)?;
        st.serialize_field("middle_switches", &self.middle_switches)?;
        st.serialize_field("external_ports", &self.external_ports)?;
        st.serialize_field("dispatch", &self.dispatch)?;
        st.serialize_field("discipline", &self.discipline)?;
        st.serialize_field("arbiter", &self.arbiter)?;
        st.serialize_field("link_capacity", &self.link_capacity)?;
        st.serialize_field("link_latency", &self.link_latency)?;
        st.serialize_field("slots", &self.slots)?;
        st.serialize_field("active_slots", &self.active_slots)?;
        st.serialize_field("arrivals", &self.arrivals)?;
        st.serialize_field("delivered", &self.delivered)?;
        st.serialize_field("lost_cells", &self.lost_cells)?;
        st.serialize_field("link_dropped_cells", &self.link_dropped_cells)?;
        st.serialize_field("resident_cells", &self.resident_cells)?;
        st.serialize_field("link_resident_cells", &self.link_resident_cells)?;
        st.serialize_field("reordered_cells", &self.reordered_cells)?;
        st.serialize_field("reordered_flows", &self.reordered_flows)?;
        st.serialize_field("active_flows", &self.active_flows)?;
        st.serialize_field("credit_stall_slots", &self.credit_stall_slots)?;
        st.serialize_field("peak_link_depth", &self.peak_link_depth)?;
        st.serialize_field("mean_latency_slots", &self.mean_latency_slots)?;
        st.serialize_field("max_latency_slots", &self.max_latency_slots)?;
        st.serialize_field("zero_loss", &self.zero_loss)?;
        st.serialize_field("stages", &self.stages)?;
        st.serialize_field("arrivals_matrix", &self.arrivals_matrix)?;
        st.serialize_field("delivered_matrix", &self.delivered_matrix)?;
        // Only faulted runs carry a ledger; omitting the field keeps
        // fault-free reports byte-identical to pre-fault-framework output.
        if let Some(faults) = &self.faults {
            st.serialize_field("faults", faults)?;
        }
        // Likewise: only closed-loop runs carry a transport report.
        if let Some(transport) = &self.transport {
            st.serialize_field("transport", transport)?;
        }
        // And only instrumented runs carry an obs section.
        if let Some(obs) = &self.obs {
            st.serialize_field("obs", obs)?;
        }
        st.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultEvent, FaultKind, LinkBoundary};
    use pktbuf::RadsBuffer;
    use pktbuf_model::{LineRate, RadsConfig};
    use traffic::{stream_seed, BurstyArrivals, UniformArrivals};

    /// RADS buffers sized for whichever stage asks: `N` VOQs at the edges,
    /// `r` in the middle.
    fn rads_builder(config: ClosConfig) -> impl FnMut(ClosStage) -> RadsBuffer {
        move |stage| {
            let num_queues = match stage {
                ClosStage::Middle => config.ingress_switches,
                ClosStage::Ingress | ClosStage::Egress => config.radix,
            };
            // Fabric ports need `B` slots of lookahead on top of the ECQF
            // minimum: a crossbar arbiter can land a due request inside the
            // in-flight replenishment window (see `sim`'s `rads_config`).
            let granularity = 4;
            RadsBuffer::new(RadsConfig {
                line_rate: LineRate::Oc3072,
                num_queues,
                granularity,
                lookahead: Some(num_queues * (granularity - 1) + 1 + granularity),
                dram: Default::default(),
            })
        }
    }

    fn clos(config: ClosConfig) -> ClosFabric<RadsBuffer> {
        ClosFabric::new(config, rads_builder(config))
    }

    fn uniform(config: &ClosConfig, load: f64, seed: u64) -> Vec<UniformArrivals> {
        let ext = config.external_ports();
        (0..ext)
            .map(|g| UniformArrivals::new(ext, load, stream_seed(seed, g as u64)))
            .collect()
    }

    #[test]
    fn spray_clos_delivers_every_cell() {
        let config = ClosConfig::new(4, 4, 4);
        let mut fabric = clos(config);
        let report = fabric.run(&mut uniform(&config, 0.7, 11), 3_000, 1);
        assert!(report.zero_loss, "lost {} cells", report.lost_cells);
        assert!(report.conservation_holds(), "{report:?}");
        assert!(report.arrivals > 5_000);
        assert_eq!(report.delivered + report.resident_cells, report.arrivals);
        assert_eq!(report.link_resident_cells, 0, "links drain empty");
        assert_eq!(report.external_ports, 16);
        assert_eq!(report.stages.len(), 3);
        assert_eq!(report.stages[0].switches.len(), 4);
        assert_eq!(report.stages[1].switches.len(), 4);
        assert_eq!(report.stages[2].switches.len(), 4);
        assert!(report.peak_link_depth <= config.link_capacity as u64);
        assert!(report.mean_latency_slots > 0.0);
        assert!(report.max_latency_slots >= 4, "three hops plus two links");
        assert_eq!(report.arrivals_matrix.iter().sum::<u64>(), report.arrivals);
        assert_eq!(
            report.delivered_matrix.iter().sum::<u64>(),
            report.delivered
        );
        assert!(report.active_flows > 200);
    }

    #[test]
    fn every_schedule_is_byte_identical_to_the_reference() {
        // Bursty arrivals with long gaps make many chunks pure-idle for the
        // serial fast-forward, while the pipelined schedules (2 and 3+
        // workers) cross every stage boundary through channels.
        for dispatch in [DispatchPolicy::Spray, DispatchPolicy::FlowHash] {
            let mut config = ClosConfig::new(3, 3, 2);
            config.dispatch = dispatch;
            config.link_capacity = 2;
            let generators = || {
                let ext = config.external_ports();
                (0..ext)
                    .map(|g| BurstyArrivals::new(ext, 12.0, 500.0, stream_seed(5, g as u64)))
                    .collect::<Vec<_>>()
            };
            let reference = clos(config).run_reference(&mut generators(), 5_000);
            for workers in [1usize, 2, 3, 5] {
                let report = clos(config).run(&mut generators(), 5_000, workers);
                assert_eq!(
                    report,
                    reference,
                    "workers={workers} dispatch={} diverged",
                    dispatch.label()
                );
            }
            assert!(reference.zero_loss);
            assert!(reference.conservation_holds());
        }
    }

    #[test]
    fn flowhash_pinning_never_reorders() {
        let mut config = ClosConfig::new(4, 3, 4);
        config.dispatch = DispatchPolicy::FlowHash;
        let mut fabric = clos(config);
        let report = fabric.run(&mut uniform(&config, 0.85, 23), 4_000, 3);
        assert!(report.zero_loss);
        assert!(report.conservation_holds());
        assert_eq!(report.reordered_cells, 0, "pinned flows cannot race");
        assert_eq!(report.reordered_flows, 0);
    }

    #[test]
    fn spraying_reorders_contended_flows_and_reports_it() {
        let mut config = ClosConfig::new(4, 3, 4);
        config.link_capacity = 2;
        let mut fabric = clos(config);
        let report = fabric.run(&mut uniform(&config, 0.95, 23), 4_000, 1);
        assert!(report.zero_loss);
        assert!(report.conservation_holds());
        assert!(
            report.reordered_cells > 0,
            "sprayed cells race over unevenly loaded middle switches: {report:?}"
        );
        assert!(report.reordered_flows > 0);
    }

    #[test]
    fn undersized_credit_links_throttle_but_never_drop() {
        let mut config = ClosConfig::new(3, 3, 3);
        // One credit against a 2-slot round trip: every link is throttled
        // to half rate, so backpressure must do real work.
        config.link_capacity = 1;
        let mut fabric = clos(config);
        let report = fabric.run(&mut uniform(&config, 0.9, 7), 3_000, 1);
        assert!(
            report.zero_loss,
            "credits may stall, never lose: {report:?}"
        );
        assert!(report.conservation_holds());
        assert_eq!(report.link_dropped_cells, 0);
        assert!(report.peak_link_depth <= 1);
        assert!(
            report.credit_stall_slots > 0,
            "an undersized link must visibly stall: {report:?}"
        );
    }

    fn faulted(config: ClosConfig, plan: &FaultPlan) -> ClosFabric<RadsBuffer> {
        let mut fabric = clos(config);
        fabric.arm_faults(plan);
        fabric
    }

    #[test]
    fn drop_on_full_loses_cells_and_only_the_ledger_explains_them() {
        let mut config = ClosConfig::new(3, 3, 2);
        // A link holds wire cells and queued cells alike, so a capacity
        // smaller than the wire latency cannot even cover the cells in
        // flight at line rate: overflow — and loss — is guaranteed.
        config.link_capacity = 1;
        config.link_latency = 4;
        let plan = FaultPlan::new([FaultEvent::permanent(FaultKind::DropOnFull, 0)]);
        let report = faulted(config, &plan).run(&mut uniform(&config, 0.95, 3), 3_000, 1);
        assert!(report.link_dropped_cells > 0, "{report:?}");
        assert!(!report.zero_loss);
        assert_eq!(report.discipline, "drop-on-full");
        let ledger = report.faults.as_ref().expect("armed runs carry a ledger");
        assert_eq!(ledger.dropped_cells, report.link_dropped_cells);
        assert!(
            report.conservation_holds(),
            "ledgered drops are accounted loss: {report:?}"
        );
        // Strip the ledger and the same drops become *silent* loss — the
        // conservation checker must refuse them (the PR 7 guarantee).
        let mut silent = report.clone();
        silent.faults = None;
        assert!(
            !silent.conservation_holds(),
            "silent link drops must be detected as a conservation break"
        );
        let mut tampered = report.clone();
        if let Some(l) = tampered.faults.as_mut() {
            l.dropped_cells -= 1;
        }
        assert!(
            !tampered.conservation_holds(),
            "undercounted drops detected"
        );
        // Drop decisions read physical FIFO occupancy; the differential
        // guarantee must hold for lossy links too.
        let pipelined = faulted(config, &plan).run(&mut uniform(&config, 0.95, 3), 3_000, 3);
        assert_eq!(pipelined, report, "lossy runs must stay schedule-invariant");
    }

    #[test]
    fn empty_fault_plan_is_byte_identical_to_an_unarmed_run() {
        let config = ClosConfig::new(3, 3, 3);
        let baseline = clos(config).run(&mut uniform(&config, 0.7, 9), 1_500, 1);
        let mut armed = clos(config);
        armed.arm_faults(&FaultPlan::none());
        let report = armed.run(&mut uniform(&config, 0.7, 9), 1_500, 1);
        assert_eq!(report, baseline);
        assert!(report.faults.is_none());
        let json = serde_json::to_string(&report).unwrap();
        assert!(
            !json.contains("\"faults\""),
            "fault-free reports must not carry a ledger field"
        );
        assert_eq!(json, serde_json::to_string(&baseline).unwrap());
    }

    #[test]
    fn middle_death_reroutes_and_strands_nothing_after_revival() {
        // Kill middle switch 1 for a window in the middle of the run: the
        // occupancy-aware spray must steer every new cell around it, the
        // frozen cells must resume on revival, and the run must end with
        // zero loss and full conservation.
        for workers in [1usize, 2, 3] {
            let config = ClosConfig::new(4, 4, 4);
            let plan = FaultPlan::new([FaultEvent::windowed(
                FaultKind::MiddleDeath { switch: 1 },
                1_000,
                600,
            )]);
            let report = faulted(config, &plan).run(&mut uniform(&config, 0.7, 11), 3_000, workers);
            assert!(report.zero_loss, "workers={workers}: {report:?}");
            assert!(report.conservation_holds(), "workers={workers}");
            let ledger = report.faults.as_ref().unwrap();
            assert_eq!(ledger.stranded_cells, 0, "revived switch must drain");
            assert!(
                ledger.stalled_cell_slots > 0,
                "cells caught in the dead switch's links must be accounted"
            );
            assert!(report.delivered > 5_000, "traffic must keep flowing");
        }
    }

    #[test]
    fn permanent_middle_death_strands_ledgered_cells() {
        let config = ClosConfig::new(4, 4, 4);
        let plan = FaultPlan::new([FaultEvent::permanent(
            FaultKind::MiddleDeath { switch: 2 },
            800,
        )]);
        let reference = {
            let mut fabric = faulted(config, &plan);
            fabric.run_reference(&mut uniform(&config, 0.7, 11), 2_500)
        };
        for workers in [1usize, 2, 3] {
            let report = faulted(config, &plan).run(&mut uniform(&config, 0.7, 11), 2_500, workers);
            assert_eq!(report, reference, "workers={workers} diverged");
        }
        let ledger = reference.faults.as_ref().unwrap();
        // The cells granted into the dead switch's egress FIFOs before the
        // death froze in place; conservation must hold with them accounted
        // as stranded (not lost — recoverable on repair).
        assert!(reference.conservation_holds(), "{reference:?}");
        assert!(reference.zero_loss, "stranding is not loss");
        assert!(reference.delivered > 4_000, "the fabric degrades, not dies");
        let resident_everywhere =
            reference.resident_cells + reference.link_resident_cells + ledger.stranded_cells;
        assert_eq!(
            reference.arrivals,
            reference.delivered + resident_everywhere,
            "every undelivered cell sits in an accounted bucket"
        );
        // Spray never targets the dead path: after the death slot the dead
        // switch accepts nothing, so its report stops growing; tampering
        // with the stranded count must break conservation.
        let mut tampered = reference.clone();
        if let Some(l) = tampered.faults.as_mut() {
            l.stranded_cells += 1;
        }
        assert!(!tampered.conservation_holds());
    }

    #[test]
    fn flowhash_fails_over_around_a_dead_middle() {
        let mut config = ClosConfig::new(4, 3, 4);
        config.dispatch = DispatchPolicy::FlowHash;
        let plan = FaultPlan::new([FaultEvent::windowed(
            FaultKind::MiddleDeath { switch: 0 },
            500,
            1_000,
        )]);
        let report = faulted(config, &plan).run(&mut uniform(&config, 0.8, 23), 3_000, 3);
        assert!(report.zero_loss, "{report:?}");
        assert!(report.conservation_holds());
        assert_eq!(report.faults.as_ref().unwrap().stranded_cells, 0);
        // Failover re-pins flows at the window edges; only cells caught in
        // flight across those two edges may reorder, so the count stays a
        // small fraction of the traffic.
        assert!(
            report.reordered_cells * 10 <= report.delivered,
            "failover reordering must stay bounded: {} of {}",
            report.reordered_cells,
            report.delivered
        );
    }

    #[test]
    fn link_flap_stalls_and_recovers_without_loss() {
        let config = ClosConfig::new(3, 3, 3);
        let plan = FaultPlan::new([
            FaultEvent::windowed(
                FaultKind::LinkFlap {
                    boundary: LinkBoundary::IngressMiddle,
                    switch: 0,
                    output: 2,
                },
                400,
                300,
            ),
            FaultEvent::windowed(
                FaultKind::LinkFlap {
                    boundary: LinkBoundary::MiddleEgress,
                    switch: 1,
                    output: 1,
                },
                900,
                200,
            ),
        ]);
        let report = faulted(config, &plan).run(&mut uniform(&config, 0.8, 7), 2_500, 1);
        assert!(report.zero_loss, "flaps stall, never drop: {report:?}");
        assert!(report.conservation_holds());
        let ledger = report.faults.as_ref().unwrap();
        assert_eq!(ledger.stranded_cells, 0, "flapped cells recover");
        assert_eq!(ledger.dropped_cells, 0);
        assert!(
            ledger.events.iter().all(|e| e.stalled_cell_slots > 0),
            "each flap's added latency must be accounted: {ledger:?}"
        );
        let pipelined = faulted(config, &plan).run(&mut uniform(&config, 0.8, 7), 2_500, 3);
        assert_eq!(pipelined, report);
    }

    #[test]
    fn egress_slowdown_degrades_measurably_but_conserves() {
        let config = ClosConfig::new(3, 3, 3);
        let plan = FaultPlan::new([FaultEvent::windowed(
            FaultKind::EgressSlowdown { port: 4, factor: 4 },
            200,
            1_500,
        )]);
        let healthy = clos(config).run(&mut uniform(&config, 0.8, 5), 2_000, 1);
        let report = faulted(config, &plan).run(&mut uniform(&config, 0.8, 5), 2_000, 1);
        assert!(report.zero_loss, "{report:?}");
        assert!(report.conservation_holds());
        let ledger = report.faults.as_ref().unwrap();
        assert!(
            ledger.slowed_slots > 0,
            "the degraded window must be observed: {ledger:?}"
        );
        assert!(
            report.max_latency_slots > healthy.max_latency_slots,
            "a throttled output line must show up as added latency"
        );
    }

    #[test]
    fn ingress_port_death_refuses_and_accounts_cells() {
        let config = ClosConfig::new(3, 3, 3);
        let plan = FaultPlan::new([FaultEvent::permanent(
            FaultKind::IngressPortDeath { port: 4 },
            500,
        )]);
        let report = faulted(config, &plan).run(&mut uniform(&config, 0.8, 13), 2_000, 1);
        let ledger = report.faults.as_ref().unwrap();
        assert!(ledger.refused_cells > 0, "{ledger:?}");
        assert!(!report.zero_loss, "refused cells are accounted loss");
        assert_eq!(report.lost_cells, ledger.refused_cells);
        assert!(
            report.conservation_holds(),
            "refusals are ledgered, so conservation holds: {report:?}"
        );
        let mut tampered = report.clone();
        if let Some(l) = tampered.faults.as_mut() {
            l.refused_cells -= 1;
        }
        assert!(!tampered.conservation_holds());
        let pipelined = faulted(config, &plan).run(&mut uniform(&config, 0.8, 13), 2_000, 2);
        assert_eq!(pipelined, report);
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn arming_a_plan_that_does_not_fit_the_geometry_panics() {
        let config = ClosConfig::new(3, 3, 2);
        let mut fabric = clos(config);
        fabric.arm_faults(&FaultPlan::new([FaultEvent::permanent(
            FaultKind::MiddleDeath { switch: 2 },
            0,
        )]));
    }

    #[test]
    fn conservation_checker_rejects_tampered_reports() {
        let config = ClosConfig::new(3, 3, 3);
        let mut fabric = clos(config);
        let report = fabric.run(&mut uniform(&config, 0.6, 9), 1_500, 1);
        assert!(report.conservation_holds());
        let mut tampered = report.clone();
        tampered.delivered += 1;
        assert!(!tampered.conservation_holds());
        let mut tampered = report.clone();
        tampered.arrivals -= 1;
        assert!(!tampered.conservation_holds());
        let mut tampered = report;
        tampered.stages[1].link_resident_cells += 1;
        assert!(!tampered.conservation_holds());
    }

    #[test]
    fn link_latency_zero_is_normalized_to_one() {
        let mut config = ClosConfig::new(3, 3, 3);
        config.link_latency = 0;
        let fabric = clos(config);
        assert_eq!(fabric.config().link_latency, 1);
    }

    #[test]
    #[should_panic(expected = "middle switches")]
    fn more_middle_switches_than_radix_panics() {
        let config = ClosConfig::new(3, 3, 4);
        let _ = clos(config);
    }

    // ----- reliable transport (closed-loop) ---------------------------

    use traffic::{ClosedLoopSource, DemandPattern, MatrixTrace};

    /// Cut-through RADS buffers (granularity 1): every accepted cell is
    /// requestable immediately. Closed-loop transport needs this — batched
    /// writeback (granularity > 1) parks sub-batch tails as permanent
    /// residents, which a reliable sender would retransmit until the stale
    /// copies themselves fill a DRAM batch.
    fn cutthrough(config: ClosConfig) -> ClosFabric<RadsBuffer> {
        ClosFabric::new(config, move |stage| {
            let num_queues = match stage {
                ClosStage::Middle => config.ingress_switches,
                ClosStage::Ingress | ClosStage::Egress => config.radix,
            };
            RadsBuffer::new(RadsConfig {
                line_rate: LineRate::Oc3072,
                num_queues,
                granularity: 1,
                lookahead: Some(2),
                dram: Default::default(),
            })
        })
    }

    fn sweep_sources(config: &ClosConfig, t: &TransportConfig) -> Vec<ClosedLoopSource> {
        let ext = config.external_ports();
        (0..ext)
            .map(|g| ClosedLoopSource::new(g as u32, ext, DemandPattern::Sweep, t.source_params()))
            .collect()
    }

    fn transport_clos(
        config: ClosConfig,
        t: &TransportConfig,
        plan: Option<&FaultPlan>,
    ) -> ClosFabric<RadsBuffer> {
        let mut fabric = cutthrough(config);
        if let Some(plan) = plan {
            fabric.arm_faults(plan);
        }
        fabric.enable_transport(*t);
        fabric
    }

    /// The CI-style death+flap plan scaled to the test geometry.
    fn death_and_flap_plan() -> FaultPlan {
        FaultPlan::new([
            FaultEvent::windowed(FaultKind::MiddleDeath { switch: 1 }, 500, 800),
            FaultEvent::windowed(
                FaultKind::LinkFlap {
                    boundary: LinkBoundary::IngressMiddle,
                    switch: 2,
                    output: 1,
                },
                1_600,
                300,
            ),
        ])
    }

    #[test]
    fn fault_free_transport_run_conserves_end_to_end_and_is_schedule_invariant() {
        let config = ClosConfig::new(4, 4, 4);
        let t = TransportConfig::default();
        let reference = transport_clos(config, &t, None).run_transport(
            &mut sweep_sources(&config, &t),
            3_000,
            1,
        );
        let rt = reference.transport.as_ref().expect("transport report");
        assert!(rt.injected_cells > 1_000, "sources must offer real load");
        assert_eq!(rt.duplicate_deliveries, 0);
        assert_eq!(rt.gave_up_cells, 0, "nothing abandons without faults");
        assert_eq!(rt.in_flight_at_end, 0, "the tail lets every ack land");
        assert_eq!(rt.acked_cells, rt.injected_cells);
        assert!(reference.transport_conservation_holds(), "{rt:?}");
        assert!(reference.conservation_holds());
        assert!(reference.zero_loss);
        for workers in [2usize, 3] {
            let report = transport_clos(config, &t, None).run_transport(
                &mut sweep_sources(&config, &t),
                3_000,
                workers,
            );
            assert_eq!(report, reference, "workers={workers} diverged");
        }
    }

    #[test]
    fn transport_recovers_lost_cells_under_death_and_flap() {
        let config = ClosConfig::new(4, 4, 4);
        let t = TransportConfig {
            rto_initial: 16,
            rto_cap: 256,
            ..TransportConfig::default()
        };
        let plan = death_and_flap_plan();
        let reference = transport_clos(config, &t, Some(&plan)).run_transport(
            &mut sweep_sources(&config, &t),
            3_000,
            1,
        );
        let rt = reference.transport.as_ref().unwrap();
        assert!(
            rt.timeouts_fired > 0 && rt.retransmitted_cells > 0,
            "the fault window must provoke retries: {rt:?}"
        );
        assert_eq!(rt.duplicate_deliveries, 0, "exactly-once delivery");
        assert_eq!(rt.gave_up_cells, 0, "finite faults: every cell recovers");
        assert_eq!(
            rt.acked_cells, rt.injected_cells,
            "every injected cell eventually delivered and acked"
        );
        assert!(reference.transport_conservation_holds(), "{rt:?}");
        assert!(reference.conservation_holds(), "fabric ledger still closes");
        for workers in [2usize, 3] {
            let report = transport_clos(config, &t, Some(&plan)).run_transport(
                &mut sweep_sources(&config, &t),
                3_000,
                workers,
            );
            assert_eq!(report, reference, "workers={workers} diverged");
        }
    }

    #[test]
    fn goodput_recovers_after_the_fault_window_closes() {
        let config = ClosConfig::new(4, 4, 4);
        let t = TransportConfig {
            rto_initial: 16,
            rto_cap: 256,
            goodput_bucket: 250,
            ..TransportConfig::default()
        };
        let plan = death_and_flap_plan();
        let baseline = transport_clos(config, &t, None).run_transport(
            &mut sweep_sources(&config, &t),
            4_000,
            1,
        );
        let faulted = transport_clos(config, &t, Some(&plan)).run_transport(
            &mut sweep_sources(&config, &t),
            4_000,
            1,
        );
        let recovery = crate::RecoveryReport::measure(&baseline, &faulted)
            .expect("both transport reports present, faulted run has finite windows");
        assert_eq!(
            recovery.fault_close_slot, 1_900,
            "last window closes at 1600+300"
        );
        assert!(
            recovery.recovered,
            "goodput must regain >=95% of baseline: {recovery:?}\nbase {:?}\nfaulted {:?}",
            baseline.transport.as_ref().unwrap().goodput,
            faulted.transport.as_ref().unwrap().goodput,
        );
        assert!(
            recovery.slots_to_recover.unwrap() <= 1_500,
            "recovery must be prompt: {recovery:?}"
        );
    }

    #[test]
    fn permanent_port_death_abandons_but_still_conserves() {
        let config = ClosConfig::new(3, 3, 3);
        let t = TransportConfig {
            rto_initial: 8,
            rto_cap: 64,
            max_retries: 4,
            ..TransportConfig::default()
        };
        // A dead external ingress line refuses everything its source offers
        // (fresh copies and retries alike): the retry budget must run out
        // and the abandonment must be visible — yet accounted.
        let plan = FaultPlan::new([FaultEvent::permanent(
            FaultKind::IngressPortDeath { port: 4 },
            0,
        )]);
        let report = transport_clos(config, &t, Some(&plan)).run_transport(
            &mut sweep_sources(&config, &t),
            1_500,
            1,
        );
        let rt = report.transport.as_ref().unwrap();
        assert!(rt.gave_up_cells > 0, "the dead port's cells must abandon");
        assert_eq!(rt.duplicate_deliveries, 0);
        assert!(report.transport_conservation_holds(), "{rt:?}");
        assert!(report.conservation_holds());
        assert!(
            report.faults.as_ref().unwrap().refused_cells > 0,
            "every abandonment traces to ledgered refusals"
        );
    }

    #[test]
    fn incast_mode_synchronizes_retries_and_still_delivers_exactly_once() {
        let config = ClosConfig::new(3, 3, 3);
        let t = TransportConfig {
            rto_initial: 16,
            rto_cap: 128,
            cwnd_max: 16,
            ..TransportConfig::default()
        };
        let ext = config.external_ports();
        let mut sources: Vec<ClosedLoopSource> = (0..ext)
            .map(|g| {
                ClosedLoopSource::new(
                    g as u32,
                    ext,
                    DemandPattern::Incast { target: 0 },
                    t.source_params(),
                )
            })
            .collect();
        // Slow the incast target to force timeout storms at the sources.
        let plan = FaultPlan::new([FaultEvent::windowed(
            FaultKind::EgressSlowdown { port: 0, factor: 8 },
            200,
            1_000,
        )]);
        let report = transport_clos(config, &t, Some(&plan)).run_transport(&mut sources, 2_000, 1);
        let rt = report.transport.as_ref().unwrap();
        assert!(
            rt.timeouts_fired > 0,
            "a x8-slowed incast target must blow RTOs: {rt:?}"
        );
        assert_eq!(rt.duplicate_deliveries, 0);
        assert!(report.transport_conservation_holds(), "{rt:?}");
        assert!(report.conservation_holds());
        // All goodput lands on target 0's column of the delivered matrix.
        for src in 0..ext {
            for dest in 1..ext {
                assert_eq!(report.delivered_matrix[src * ext + dest], 0);
            }
        }
    }

    #[test]
    fn transport_off_runs_stay_byte_identical_and_carry_no_transport_field() {
        let config = ClosConfig::new(3, 3, 3);
        let baseline = clos(config).run(&mut uniform(&config, 0.7, 9), 1_500, 1);
        assert!(baseline.transport.is_none());
        assert!(!baseline.transport_conservation_holds());
        let json = serde_json::to_string(&baseline).unwrap();
        assert!(
            !json.contains("\"transport\""),
            "open-loop reports must not carry a transport field"
        );
    }

    #[test]
    fn recorded_transport_run_replays_bit_identically_through_an_open_loop_fabric() {
        let config = ClosConfig::new(3, 3, 3);
        let t = TransportConfig {
            rto_initial: 16,
            rto_cap: 256,
            ..TransportConfig::default()
        };
        let plan = FaultPlan::new([FaultEvent::windowed(
            FaultKind::MiddleDeath { switch: 0 },
            400,
            500,
        )]);
        let mut trace = MatrixTrace::new(0);
        let recorded = transport_clos(config, &t, Some(&plan)).run_transport_recorded(
            &mut sweep_sources(&config, &t),
            1_500,
            &mut trace,
        );
        assert!(recorded.transport_conservation_holds());
        assert!(trace.len() as u64 >= 1_500, "tail slots recorded too");
        // Replay the exact arrival matrix open-loop through a fresh fabric
        // with the same plan: same offers, same deliveries, bit for bit.
        let mut replayed_fabric = cutthrough(config);
        replayed_fabric.arm_faults(&plan);
        let replayed = replayed_fabric.run(&mut trace.replay(), trace.len() as u64, 1);
        assert_eq!(replayed.arrivals_matrix, recorded.arrivals_matrix);
        assert_eq!(replayed.delivered_matrix, recorded.delivered_matrix);
        assert_eq!(replayed.arrivals, recorded.arrivals);
        assert_eq!(replayed.delivered, recorded.delivered);
        assert_eq!(replayed.reordered_cells, recorded.reordered_cells);
        assert_eq!(replayed.lost_cells, recorded.lost_cells);
        // And the recorded run itself matches the unrecorded serial twin.
        let unrecorded = transport_clos(config, &t, Some(&plan)).run_transport(
            &mut sweep_sources(&config, &t),
            1_500,
            1,
        );
        assert_eq!(unrecorded, recorded);
    }

    #[test]
    fn recorded_open_loop_matrix_replays_to_a_fully_identical_report() {
        let config = ClosConfig::new(3, 3, 2);
        let ext = config.external_ports();
        let mk = || -> Vec<UniformArrivals> { uniform(&config, 0.7, 21) };
        let direct = clos(config).run(&mut mk(), 2_000, 1);
        let trace = MatrixTrace::record(&mut mk(), 2_000);
        assert_eq!(trace.ports(), ext);
        let replayed = clos(config).run(&mut trace.replay(), 2_000, 1);
        assert_eq!(replayed, direct, "open-loop matrix replay is lossless");
    }

    // ----- occupancy-aware spray as a steady-state policy -------------

    #[test]
    fn occupancy_spray_differs_under_contention_but_conserves_and_spray_is_unchanged() {
        let mut config = ClosConfig::new(4, 4, 4);
        // Tight links make occupancy visible to the adaptive policy.
        config.link_capacity = 2;
        let bursty = |seed_off: u64| -> Vec<BurstyArrivals> {
            let ext = config.external_ports();
            (0..ext)
                .map(|g| BurstyArrivals::new(ext, 16.0, 4.0, stream_seed(31 + seed_off, g as u64)))
                .collect()
        };
        let spray = clos(config).run(&mut bursty(0), 3_000, 1);
        assert_eq!(spray.dispatch, "spray");

        let mut adaptive_config = config;
        adaptive_config.dispatch = DispatchPolicy::OccupancySpray;
        let adaptive = clos(adaptive_config).run(&mut bursty(0), 3_000, 1);
        assert_eq!(adaptive.dispatch, "occupancy-spray");
        assert!(adaptive.zero_loss, "{adaptive:?}");
        assert!(adaptive.conservation_holds());
        assert_eq!(adaptive.arrivals, spray.arrivals, "same offered load");
        assert_ne!(
            adaptive.delivered_matrix, spray.delivered_matrix,
            "under bursty contention the adaptive policy must actually steer"
        );
        // Differential guarantee: the default spray path is untouched by
        // the promotion — byte-identical to the skip-free reference, for
        // every worker count.
        let reference = {
            let mut fabric = clos(config);
            fabric.run_reference(&mut bursty(0), 3_000)
        };
        assert_eq!(spray, reference);
        for workers in [2usize, 3] {
            assert_eq!(clos(config).run(&mut bursty(0), 3_000, workers), reference);
        }
        // The adaptive policy honours the same invariants across schedules.
        for workers in [2usize, 3] {
            assert_eq!(
                clos(adaptive_config).run(&mut bursty(0), 3_000, workers),
                adaptive,
                "occupancy-spray must stay schedule-invariant"
            );
        }
    }

    #[test]
    fn occupancy_spray_steers_around_a_dead_middle_like_spray_does() {
        let mut config = ClosConfig::new(4, 4, 4);
        config.dispatch = DispatchPolicy::OccupancySpray;
        let plan = FaultPlan::new([FaultEvent::windowed(
            FaultKind::MiddleDeath { switch: 1 },
            1_000,
            600,
        )]);
        let report = faulted(config, &plan).run(&mut uniform(&config, 0.7, 11), 3_000, 1);
        assert!(report.zero_loss, "{report:?}");
        assert!(report.conservation_holds());
        assert_eq!(report.faults.as_ref().unwrap().stranded_cells, 0);
    }

    #[test]
    #[should_panic(expected = "enable_transport must be called")]
    fn running_transport_without_enabling_it_panics() {
        let config = ClosConfig::new(3, 3, 3);
        let t = TransportConfig::default();
        let _ = clos(config).run_transport(&mut sweep_sources(&config, &t), 100, 1);
    }

    #[test]
    fn obs_off_is_byte_identical_to_an_unarmed_run() {
        let config = ClosConfig::new(3, 3, 3);
        let baseline = clos(config).run(&mut uniform(&config, 0.7, 9), 1_500, 1);
        let mut armed = clos(config);
        armed.arm_obs(&obs::ObsConfig::off());
        let report = armed.run(&mut uniform(&config, 0.7, 9), 1_500, 1);
        assert_eq!(report, baseline);
        assert!(report.obs.is_none());
        let json = serde_json::to_string(&report).unwrap();
        assert!(
            !json.contains("\"obs\""),
            "uninstrumented reports must not carry an obs field"
        );
        assert_eq!(json, serde_json::to_string(&baseline).unwrap());
    }

    fn series_config() -> obs::ObsConfig {
        obs::ObsConfig {
            series_stride: 100,
            series_capacity: 64,
            ..obs::ObsConfig::standard()
        }
    }

    #[test]
    fn armed_probes_stay_schedule_invariant_and_report_real_measurements() {
        let config = ClosConfig::new(3, 3, 2);
        let run = |workers: usize| {
            let mut fabric = clos(config);
            fabric.arm_obs(&series_config());
            if workers == 0 {
                fabric.run_reference(&mut uniform(&config, 0.8, 13), 2_500)
            } else {
                fabric.run(&mut uniform(&config, 0.8, 13), 2_500, workers)
            }
        };
        let reference = run(0);
        for workers in [1usize, 2, 3] {
            assert_eq!(run(workers), reference, "workers={workers} diverged");
        }
        let obs = reference.obs.as_ref().expect("armed run reports probes");
        let latency = obs.latency.as_ref().expect("latency probes armed");
        assert_eq!(
            latency.count, reference.delivered,
            "every delivered cell is timed"
        );
        assert!(latency.p50 <= latency.p95 && latency.p95 <= latency.p99);
        assert!(latency.p99 <= latency.max && latency.min <= latency.p50);
        assert_eq!(obs.stages.len(), 3);
        for (stage, label) in obs.stages.iter().zip(["ingress", "middle", "egress"]) {
            assert_eq!(stage.stage, label);
            let backlog = stage.voq_backlog.as_ref().expect("occupancy probes armed");
            assert!(backlog.count > 0, "{label} saw enqueues");
            assert!(backlog.min >= 1, "depth is recorded after the enqueue");
            let series = stage.series.as_ref().expect("series probes armed");
            assert_eq!(series.stride, 100);
            assert_eq!(series.dropped, 0);
            assert!(!series.slots.is_empty());
            assert!(series.slots.windows(2).all(|w| w[1] == w[0] + 100));
            assert!(series.transmitted.iter().sum::<u64>() > 0);
        }
        assert!(
            obs.stages[0].link_occupancy.is_some() && obs.stages[1].link_occupancy.is_some(),
            "forwarding stages watch their outbound links"
        );
        assert!(
            obs.stages[2].link_occupancy.is_none(),
            "the egress stage has no outbound links"
        );
        // Per-output percentiles ride along on the egress switch reports.
        let egress_out = &reference.stages[2].switches[0].per_output[0];
        assert!(egress_out.latency_p50_slots.is_some());
        assert!(reference.trace_json().is_none(), "no recorder armed");
    }

    #[test]
    fn flight_recorder_captures_the_death_and_flap_lifecycle() {
        let config = ClosConfig::new(4, 4, 4);
        let t = TransportConfig {
            rto_initial: 16,
            rto_cap: 256,
            ..TransportConfig::default()
        };
        let plan = death_and_flap_plan();
        let oc = obs::ObsConfig {
            trace_capacity: 1 << 20,
            ..series_config()
        };
        let run = |workers: usize| {
            let mut fabric = transport_clos(config, &t, Some(&plan));
            fabric.arm_obs(&oc);
            fabric.run_transport(&mut sweep_sources(&config, &t), 3_000, workers)
        };
        let reference = run(1);
        assert_eq!(run(2), reference, "traced runs stay schedule-invariant");
        let obs_report = reference.obs.as_ref().unwrap();
        let trace = obs_report.trace.as_ref().expect("recorder armed");
        assert_eq!(trace.dropped, 0, "capacity covers the whole run");
        assert!(
            trace
                .events
                .windows(2)
                .all(|w| w[0].sort_key() <= w[1].sort_key()),
            "the merged timeline is totally ordered"
        );
        let count = |kind: EventKind| trace.events.iter().filter(|e| e.kind == kind).count();
        for kind in [
            EventKind::Inject,
            EventKind::VoqEnqueue,
            EventKind::Grant,
            EventKind::LinkTraverse,
            EventKind::Retransmit,
            EventKind::EgressTransmit,
        ] {
            assert!(count(kind) > 0, "missing {} events", kind.name());
        }
        let rt = reference.transport.as_ref().unwrap();
        // Every copy entering the fabric gets an inject event — fresh cells
        // and retransmitted copies alike.
        assert_eq!(
            count(EventKind::Inject) as u64,
            rt.injected_cells + rt.retransmitted_cells
        );
        assert_eq!(count(EventKind::Retransmit) as u64, rt.retransmitted_cells);
        let marks: Vec<(u64, EventKind)> = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::FaultOpen | EventKind::FaultClose))
            .map(|e| (e.slot, e.kind))
            .collect();
        assert_eq!(
            marks,
            vec![
                (500, EventKind::FaultOpen),
                (1_300, EventKind::FaultClose),
                (1_600, EventKind::FaultOpen),
                (1_900, EventKind::FaultClose),
            ],
            "fault windows bracket the timeline"
        );
        // The transport-layer latency histogram covers every acked cell —
        // including the retransmitted ones, whose recovery shows up as a
        // tail of at least one full RTO.
        let first = rt.first_injection_latency.as_ref().unwrap();
        assert_eq!(first.count, rt.acked_cells);
        assert!(
            first.max >= t.rto_initial,
            "a retransmitted cell waited out at least one timer: {first:?}"
        );
        // And the whole thing renders as a Chrome trace.
        let json = reference.trace_json().expect("recorder armed");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"retransmit\"") && json.contains("\"fault-open\""));
        assert!(serde_json::from_str::<serde_json::Value>(&json).is_ok());
    }
}
