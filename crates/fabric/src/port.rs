//! Heterogeneous ingress ports: one buffer design per port, mixed freely.
//!
//! A fabric whose ports all share one design runs [`crate::VoqSwitch`]
//! monomorphized over that concrete buffer type. [`PortBuffer`] is the
//! mixed-design alternative: a three-variant enum (one per shipped design)
//! that forwards the [`PacketBuffer`] contract with a single predictable
//! branch per call — no heap indirection, no virtual dispatch.

use pktbuf::{
    BatchReport, BufferStats, CfdsBuffer, DramOnlyBuffer, GrantSink, PacketBuffer, RadsBuffer,
    RequestSource, SlotOutcome,
};
use pktbuf_model::{Cell, LogicalQueueId};

/// An ingress buffer of any of the three shipped designs.
///
/// The variants hold their (large) buffers inline deliberately: ports live
/// in a per-fabric `Vec<PortBuffer>` whose element size is dominated by the
/// largest design either way, and boxing would put a pointer chase in front
/// of every per-slot call.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum PortBuffer {
    /// DRAM-only baseline (can miss under back-to-back requests).
    DramOnly(DramOnlyBuffer),
    /// Hybrid SRAM/DRAM RADS buffer.
    Rads(RadsBuffer),
    /// The paper's conflict-free DRAM system.
    Cfds(CfdsBuffer),
}

impl From<DramOnlyBuffer> for PortBuffer {
    fn from(buffer: DramOnlyBuffer) -> Self {
        PortBuffer::DramOnly(buffer)
    }
}

impl From<RadsBuffer> for PortBuffer {
    fn from(buffer: RadsBuffer) -> Self {
        PortBuffer::Rads(buffer)
    }
}

impl From<CfdsBuffer> for PortBuffer {
    fn from(buffer: CfdsBuffer) -> Self {
        PortBuffer::Cfds(buffer)
    }
}

/// Forwards one method to the three variants.
macro_rules! delegate {
    ($self:ident, $buffer:ident => $body:expr) => {
        match $self {
            PortBuffer::DramOnly($buffer) => $body,
            PortBuffer::Rads($buffer) => $body,
            PortBuffer::Cfds($buffer) => $body,
        }
    };
}

impl PacketBuffer for PortBuffer {
    fn step(&mut self, arrival: Option<Cell>, request: Option<LogicalQueueId>) -> SlotOutcome {
        delegate!(self, b => b.step(arrival, request))
    }

    fn current_slot(&self) -> u64 {
        delegate!(self, b => b.current_slot())
    }

    fn num_queues(&self) -> usize {
        delegate!(self, b => b.num_queues())
    }

    fn requestable_cells(&self, queue: LogicalQueueId) -> u64 {
        delegate!(self, b => b.requestable_cells(queue))
    }

    fn pipeline_delay_slots(&self) -> usize {
        delegate!(self, b => b.pipeline_delay_slots())
    }

    fn stats(&self) -> &BufferStats {
        delegate!(self, b => b.stats())
    }

    fn design_name(&self) -> &'static str {
        delegate!(self, b => b.design_name())
    }

    fn step_batch<R: RequestSource>(
        &mut self,
        arrivals: &mut [Option<Cell>],
        requests: &mut R,
        grants: &mut GrantSink,
    ) -> BatchReport {
        delegate!(self, b => b.step_batch(arrivals, requests, grants))
    }

    fn advance_idle(&mut self, slots: u64) {
        delegate!(self, b => b.advance_idle(slots));
    }

    fn is_quiescent(&self) -> bool {
        delegate!(self, b => b.is_quiescent())
    }

    fn requestable_total(&self) -> u64 {
        delegate!(self, b => b.requestable_total())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pktbuf_model::{LineRate, RadsConfig};

    #[test]
    fn port_buffer_forwards_the_contract() {
        let cfg = RadsConfig {
            line_rate: LineRate::Oc3072,
            num_queues: 4,
            granularity: 4,
            lookahead: None,
            dram: Default::default(),
        };
        let mut port: PortBuffer = RadsBuffer::new(cfg).into();
        assert_eq!(port.design_name(), "RADS");
        assert_eq!(port.num_queues(), 4);
        assert_eq!(port.current_slot(), 0);
        assert_eq!(port.requestable_total(), 0);
        let q = LogicalQueueId::new(1);
        let outcome = port.step(Some(Cell::new(q, 0, 0)), None);
        assert!(outcome.is_clean());
        port.advance_idle(8);
        assert_eq!(port.current_slot(), 9);
        assert_eq!(port.stats().arrivals, 1);
    }

    /// Requests queue 0 whenever the buffer reports it requestable.
    struct Greedy;

    impl RequestSource for Greedy {
        fn next_request<F>(&mut self, _slot: u64, requestable: &F) -> Option<LogicalQueueId>
        where
            F: Fn(LogicalQueueId) -> u64 + ?Sized,
        {
            let q = LogicalQueueId::new(0);
            (requestable(q) > 0).then_some(q)
        }
    }

    #[test]
    fn step_batch_through_the_enum_matches_the_per_slot_reference() {
        let cfg = RadsConfig {
            line_rate: LineRate::Oc3072,
            num_queues: 4,
            granularity: 4,
            lookahead: None,
            dram: Default::default(),
        };
        let q = LogicalQueueId::new(0);
        let slots = 256u64;

        let mut port: PortBuffer = RadsBuffer::new(cfg).into();
        let mut arrivals: Vec<Option<Cell>> =
            (0..slots).map(|s| Some(Cell::new(q, s, s))).collect();
        let mut grants = GrantSink::new(true);
        port.step_batch(&mut arrivals, &mut Greedy, &mut grants);

        let mut reference = RadsBuffer::new(cfg);
        let mut reference_grants = 0usize;
        for s in 0..slots {
            let request = (reference.requestable_cells(q) > 0).then_some(q);
            let outcome = reference.step(Some(Cell::new(q, s, s)), request);
            reference_grants += usize::from(outcome.granted.is_some());
        }

        assert_eq!(port.stats(), reference.stats());
        assert_eq!(grants.recorded(), reference_grants);
    }
}
