//! Egress ports: the output side of the fabric.
//!
//! An egress port transmits at a configurable line rate — one cell every
//! `period` slots (`period == 1` is full line rate) — and throttles the
//! crossbar through a single-credit token: the arbiter may only match an
//! output whose credit is available, and a match consumes it. Cells granted
//! by the ingress buffers land in a short FIFO (pipeline delays differ per
//! ingress design, so two cells matched in different slots can surface in the
//! same one) and leave at the line-rate cadence, where the end-to-end latency
//! — transmit slot minus line-side arrival slot — is recorded.

use obs::Log2Histogram;
use pktbuf_model::Cell;
use std::collections::VecDeque;

/// One egress port: line-rate credit, transmit FIFO and delivery statistics.
#[derive(Debug)]
pub struct EgressPort {
    /// Slots per transmitted cell (1 = full line rate).
    period: u64,
    /// Matching credit: at most one, accrued once per period.
    credits: u64,
    /// Granted cells awaiting transmission.
    queue: VecDeque<Cell>,
    /// Cells transmitted onto the output line.
    transmitted: u64,
    /// Sum of end-to-end latencies (slots) over transmitted cells.
    latency_sum: u64,
    /// Largest end-to-end latency (slots) observed.
    latency_max: u64,
    /// Deepest the transmit FIFO has been.
    peak_depth: usize,
    /// Optional log2 latency histogram; `None` (the default) records nothing
    /// and keeps the port byte-identical to the uninstrumented path.
    latency_hist: Option<Log2Histogram>,
}

/// Number of accrual points (multiples of `period`) in `[0, end)`.
fn accruals_before(end: u64, period: u64) -> u64 {
    end.div_ceil(period)
}

impl EgressPort {
    /// Creates an egress port transmitting one cell every `period` slots
    /// (`0` is treated as `1`).
    pub fn new(period: u64) -> Self {
        EgressPort {
            period: period.max(1),
            credits: 0,
            queue: VecDeque::new(),
            transmitted: 0,
            latency_sum: 0,
            latency_max: 0,
            peak_depth: 0,
            latency_hist: None,
        }
    }

    /// Arms the per-port latency histogram. Call before the first slot; the
    /// histogram then records every transmitted cell's end-to-end latency.
    pub fn arm_latency_hist(&mut self) {
        self.latency_hist = Some(Log2Histogram::new());
    }

    /// The armed latency histogram, if any.
    pub fn latency_hist(&self) -> Option<&Log2Histogram> {
        self.latency_hist.as_ref()
    }

    /// Accrues the line-rate credit at the start of slot `slot`.
    #[inline]
    pub fn begin_slot(&mut self, slot: u64) {
        if slot.is_multiple_of(self.period) {
            self.credits = 1;
        }
    }

    /// Whether the arbiter may match this output this slot.
    #[inline]
    pub fn ready(&self) -> bool {
        self.credits > 0
    }

    /// Consumes the matching credit (the arbiter matched this output).
    #[inline]
    pub fn consume_credit(&mut self) {
        debug_assert!(self.credits > 0, "matched an output without credit");
        self.credits = 0;
    }

    /// Enqueues a cell granted by an ingress buffer.
    #[inline]
    pub fn push(&mut self, cell: Cell) {
        self.queue.push_back(cell);
        self.peak_depth = self.peak_depth.max(self.queue.len());
    }

    /// Transmits at the end of slot `slot` if the cadence allows, recording
    /// the transmitted cell's end-to-end latency. Returns the transmitted
    /// cell so that composed fabrics (the Clos layer) can forward it onto an
    /// inter-stage link; standalone switches simply drop it.
    #[inline]
    pub fn end_slot(&mut self, slot: u64) -> Option<Cell> {
        if !slot.is_multiple_of(self.period) {
            return None;
        }
        let cell = self.queue.pop_front()?;
        let latency = slot.saturating_sub(cell.arrival_slot());
        self.transmitted += 1;
        self.latency_sum += latency;
        self.latency_max = self.latency_max.max(latency);
        if let Some(hist) = self.latency_hist.as_mut() {
            hist.record(latency);
        }
        Some(cell)
    }

    /// Fast-forwards over `slots` slots starting at `slot` in which the port
    /// is provably idle (empty FIFO — the caller checks): only the credit
    /// accrual is observable, computed arithmetically.
    pub fn advance_idle(&mut self, slot: u64, slots: u64) {
        debug_assert!(self.queue.is_empty(), "idle fast-forward with queued cells");
        let accrual_points =
            accruals_before(slot + slots, self.period) - accruals_before(slot, self.period);
        if accrual_points > 0 {
            self.credits = 1;
        }
    }

    /// Whether the transmit FIFO is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Current transmit-FIFO depth.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Cells transmitted so far.
    pub fn transmitted(&self) -> u64 {
        self.transmitted
    }

    /// Deepest the transmit FIFO has been.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }

    /// Largest end-to-end latency observed (slots).
    pub fn max_latency(&self) -> u64 {
        self.latency_max
    }

    /// Mean end-to-end latency over transmitted cells (slots).
    pub fn mean_latency(&self) -> f64 {
        if self.transmitted == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.transmitted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pktbuf_model::LogicalQueueId;

    fn cell(seq: u64, arrival: u64) -> Cell {
        Cell::new(LogicalQueueId::new(0), seq, arrival)
    }

    #[test]
    fn full_rate_port_transmits_every_slot() {
        let mut port = EgressPort::new(1);
        for t in 0..4u64 {
            port.begin_slot(t);
            assert!(port.ready());
            port.consume_credit();
            port.push(cell(t, t));
            port.end_slot(t);
        }
        assert_eq!(port.transmitted(), 4);
        assert_eq!(port.max_latency(), 0);
        assert_eq!(port.peak_depth(), 1);
        assert!(port.is_empty());
    }

    #[test]
    fn slower_port_paces_credits_and_transmissions() {
        let mut port = EgressPort::new(4);
        let mut ready_slots = Vec::new();
        port.push(cell(0, 0));
        port.push(cell(1, 0));
        for t in 0..12u64 {
            port.begin_slot(t);
            if port.ready() {
                ready_slots.push(t);
                port.consume_credit();
            }
            port.end_slot(t);
        }
        assert_eq!(ready_slots, vec![0, 4, 8]);
        assert_eq!(port.transmitted(), 2, "one cell per period");
        assert_eq!(port.max_latency(), 4, "second cell waited a period");
    }

    #[test]
    fn idle_fast_forward_matches_stepping() {
        for period in [1u64, 3, 7] {
            for start in [0u64, 1, 5, 6] {
                for gap in [1u64, 2, 12, 30] {
                    let mut stepped = EgressPort::new(period);
                    let mut skipped = EgressPort::new(period);
                    // Drain both ports' initial credit at `start`.
                    for port in [&mut stepped, &mut skipped] {
                        port.begin_slot(start);
                        if port.ready() {
                            port.consume_credit();
                        }
                        port.end_slot(start);
                    }
                    for t in start + 1..start + 1 + gap {
                        stepped.begin_slot(t);
                        stepped.end_slot(t);
                    }
                    skipped.advance_idle(start + 1, gap);
                    assert_eq!(
                        stepped.ready(),
                        skipped.ready(),
                        "period {period}, start {start}, gap {gap}"
                    );
                }
            }
        }
    }
}
