//! The array of all DRAM banks with conflict accounting.

use crate::bank::{Bank, BankConflict};
use crate::request::BankId;
use crate::stats::DramStats;
use serde::{Deserialize, Serialize};

/// An array of `M` DRAM banks sharing the same timing parameters.
///
/// This is the timing-only view of the DRAM used by both RADS (which treats
/// the whole array as a single resource accessed every `B` slots) and CFDS
/// (which overlaps accesses to distinct banks every `b` slots).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BankArray {
    banks: Vec<Bank>,
    busy_slots: u64,
    stats: DramStats,
}

impl BankArray {
    /// Creates an array of `num_banks` banks, each busy for `busy_slots` slots
    /// per access (the DRAM random access time in slots, i.e. `B`).
    ///
    /// # Panics
    ///
    /// Panics if `num_banks` is zero.
    pub fn new(num_banks: usize, busy_slots: u64) -> Self {
        assert!(num_banks > 0, "a DRAM needs at least one bank");
        BankArray {
            banks: (0..num_banks)
                .map(|i| Bank::new(BankId::new(i as u32)))
                .collect(),
            busy_slots,
            stats: DramStats::default(),
        }
    }

    /// Number of banks `M`.
    pub fn num_banks(&self) -> usize {
        self.banks.len()
    }

    /// Bank busy time in slots.
    pub fn busy_slots(&self) -> u64 {
        self.busy_slots
    }

    /// Whether `bank` is busy at slot `now`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn is_busy(&self, bank: BankId, now: u64) -> bool {
        self.banks[bank.index()].is_busy(now)
    }

    /// Starts an access on `bank` at slot `now`.
    ///
    /// # Errors
    ///
    /// Returns [`BankConflict`] when the bank is still busy; the conflict is
    /// also recorded in the statistics.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn start_access(&mut self, bank: BankId, now: u64) -> Result<(), BankConflict> {
        let res = self.banks[bank.index()].start_access(now, self.busy_slots);
        match &res {
            Ok(()) => self.stats.record_access(now, self.busy_slots),
            Err(_) => self.stats.record_conflict(),
        }
        res
    }

    /// Returns the banks that are busy at slot `now`.
    pub fn busy_banks(&self, now: u64) -> Vec<BankId> {
        self.banks
            .iter()
            .filter(|b| b.is_busy(now))
            .map(|b| b.id())
            .collect()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Per-bank access counts (for load-balance analysis).
    pub fn per_bank_accesses(&self) -> Vec<u64> {
        self.banks.iter().map(|b| b.accesses()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlapping_accesses_to_different_banks_are_fine() {
        let mut arr = BankArray::new(4, 8);
        arr.start_access(BankId::new(0), 0).unwrap();
        arr.start_access(BankId::new(1), 1).unwrap();
        arr.start_access(BankId::new(2), 2).unwrap();
        arr.start_access(BankId::new(3), 3).unwrap();
        assert_eq!(arr.stats().accesses, 4);
        assert_eq!(arr.stats().conflicts, 0);
        assert_eq!(arr.busy_banks(3).len(), 4);
    }

    #[test]
    fn conflict_is_detected_and_counted() {
        let mut arr = BankArray::new(2, 8);
        arr.start_access(BankId::new(0), 0).unwrap();
        assert!(arr.start_access(BankId::new(0), 4).is_err());
        assert_eq!(arr.stats().conflicts, 1);
        assert_eq!(arr.stats().accesses, 1);
        assert!(arr.is_busy(BankId::new(0), 4));
        assert!(!arr.is_busy(BankId::new(1), 4));
    }

    #[test]
    fn per_bank_accesses_tracks_counts() {
        let mut arr = BankArray::new(3, 2);
        arr.start_access(BankId::new(1), 0).unwrap();
        arr.start_access(BankId::new(1), 2).unwrap();
        arr.start_access(BankId::new(2), 0).unwrap();
        assert_eq!(arr.per_bank_accesses(), vec![0, 2, 1]);
        assert_eq!(arr.num_banks(), 3);
        assert_eq!(arr.busy_slots(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_panics() {
        let _ = BankArray::new(0, 8);
    }
}
