//! Block-cyclic bank interleaving (§5.1, Figure 6).
//!
//! Banks are organised into `G` groups of `B/b` banks. Each group stores the
//! cells of a fixed subset of physical queues (queue → group is a static
//! modulo mapping on the low-order bits of the queue identifier). Inside a
//! group, consecutive `b`-cell blocks of the same queue are laid out
//! round-robin over the banks of the group, so `B/b` consecutive accesses to
//! the same queue touch `B/b` distinct banks and can be fully overlapped.

use crate::request::{BankId, GroupId};
use pktbuf_model::{CfdsConfig, PhysicalQueueId, CELL_BYTES};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error raised when constructing an [`InterleavingConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// A parameter that must be strictly positive was zero.
    Zero(&'static str),
    /// `banks_per_group` does not divide `num_banks`.
    NotDivisible {
        /// Total number of banks.
        num_banks: usize,
        /// Banks per group.
        banks_per_group: usize,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::Zero(p) => write!(f, "`{p}` must be strictly positive"),
            MappingError::NotDivisible {
                num_banks,
                banks_per_group,
            } => write!(
                f,
                "banks per group ({banks_per_group}) must divide the number of banks ({num_banks})"
            ),
        }
    }
}

impl Error for MappingError {}

/// Static parameters of the block-cyclic interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterleavingConfig {
    num_banks: usize,
    banks_per_group: usize,
    num_physical_queues: usize,
}

impl InterleavingConfig {
    /// Creates an interleaving over `num_banks` banks with `banks_per_group`
    /// banks per group (`B/b`) serving `num_physical_queues` physical queues.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError`] if any parameter is zero or `banks_per_group`
    /// does not divide `num_banks`.
    pub fn new(
        num_banks: usize,
        banks_per_group: usize,
        num_physical_queues: usize,
    ) -> Result<Self, MappingError> {
        if num_banks == 0 {
            return Err(MappingError::Zero("num_banks"));
        }
        if banks_per_group == 0 {
            return Err(MappingError::Zero("banks_per_group"));
        }
        if num_physical_queues == 0 {
            return Err(MappingError::Zero("num_physical_queues"));
        }
        if !num_banks.is_multiple_of(banks_per_group) {
            return Err(MappingError::NotDivisible {
                num_banks,
                banks_per_group,
            });
        }
        Ok(InterleavingConfig {
            num_banks,
            banks_per_group,
            num_physical_queues,
        })
    }

    /// Derives the interleaving from a full [`CfdsConfig`].
    pub fn from_cfds(cfg: &CfdsConfig) -> Self {
        InterleavingConfig {
            num_banks: cfg.num_banks,
            banks_per_group: cfg.banks_per_group(),
            num_physical_queues: cfg.num_physical_queues(),
        }
    }

    /// Total number of banks `M`.
    pub fn num_banks(&self) -> usize {
        self.num_banks
    }

    /// Banks per group `B/b`.
    pub fn banks_per_group(&self) -> usize {
        self.banks_per_group
    }

    /// Number of groups `G`.
    pub fn num_groups(&self) -> usize {
        self.num_banks / self.banks_per_group
    }

    /// Number of physical queues served.
    pub fn num_physical_queues(&self) -> usize {
        self.num_physical_queues
    }

    /// Physical queues that map to each group (ceiling; the last group may
    /// serve fewer when the division is not exact).
    pub fn queues_per_group(&self) -> usize {
        self.num_physical_queues.div_ceil(self.num_groups())
    }
}

/// A fully decoded DRAM address (Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodedAddress {
    /// Group the block lives in.
    pub group: GroupId,
    /// Bank inside the group (0 .. `B/b`).
    pub bank_in_group: usize,
    /// Global bank identifier.
    pub bank: BankId,
    /// Row/column part: the block's sequence number within its (queue, bank)
    /// stream, i.e. `ordinal / (B/b)`.
    pub row: u64,
}

/// Maps `(physical queue, block ordinal)` pairs onto banks and linear
/// addresses according to the block-cyclic interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapper {
    cfg: InterleavingConfig,
    block_bytes_log2: u32,
}

impl AddressMapper {
    /// Creates a mapper for `cfg`, assuming `b = banks-per-group`-independent
    /// block payloads of `b × 64` bytes. The block size only affects the
    /// low-order zero bits of the linear address and defaults to one cell.
    pub fn new(cfg: InterleavingConfig) -> Self {
        AddressMapper {
            cfg,
            block_bytes_log2: (CELL_BYTES as u32).trailing_zeros(),
        }
    }

    /// Creates a mapper whose linear addresses account for `b`-cell blocks.
    pub fn with_block_cells(cfg: InterleavingConfig, cells_per_block: usize) -> Self {
        let bytes = (cells_per_block.max(1) * CELL_BYTES).next_power_of_two();
        AddressMapper {
            cfg,
            block_bytes_log2: bytes.trailing_zeros(),
        }
    }

    /// The interleaving parameters.
    pub fn config(&self) -> &InterleavingConfig {
        &self.cfg
    }

    /// Group a physical queue is statically assigned to: low-order bits
    /// (modulo) of the queue identifier, which spreads queues over the maximum
    /// number of groups.
    pub fn group_of_queue(&self, queue: PhysicalQueueId) -> GroupId {
        GroupId::new((queue.as_usize() % self.cfg.num_groups()) as u32)
    }

    /// Group a global bank belongs to.
    pub fn group_of_bank(&self, bank: BankId) -> GroupId {
        GroupId::new((bank.index() / self.cfg.banks_per_group) as u32)
    }

    /// Bank that holds block `ordinal` of `queue`: the queue's group, then
    /// round-robin over the banks of that group by block ordinal.
    pub fn bank_for(&self, queue: PhysicalQueueId, ordinal: u64) -> BankId {
        let group = self.group_of_queue(queue).index();
        let bank_in_group = (ordinal % self.cfg.banks_per_group as u64) as usize;
        BankId::new((group * self.cfg.banks_per_group + bank_in_group) as u32)
    }

    /// Full decomposition of the location of block `ordinal` of `queue`.
    pub fn decode(&self, queue: PhysicalQueueId, ordinal: u64) -> DecodedAddress {
        let group = self.group_of_queue(queue);
        let bank_in_group = (ordinal % self.cfg.banks_per_group as u64) as usize;
        let bank = self.bank_for(queue, ordinal);
        DecodedAddress {
            group,
            bank_in_group,
            bank,
            row: ordinal / self.cfg.banks_per_group as u64,
        }
    }

    /// Linear byte address of the block, following the bit layout of Figure 6:
    /// low-order zero bits for the block payload, then the bank-in-group
    /// index, then the group index, then the remaining queue/ordinal bits.
    pub fn linear_address(&self, queue: PhysicalQueueId, ordinal: u64) -> u64 {
        let d = self.decode(queue, ordinal);
        let groups = self.cfg.num_groups() as u64;
        let bpg = self.cfg.banks_per_group as u64;
        let queue_high = queue.as_usize() as u64 / groups;
        // Row index within the bank combines the per-bank block row and the
        // high-order queue bits (each queue owns a contiguous row range).
        let row = queue_high.wrapping_mul(1 << 20).wrapping_add(d.row);
        let mut addr = row;
        addr = addr * groups + d.group.index() as u64;
        addr = addr * bpg + d.bank_in_group as u64;
        addr << self.block_bytes_log2
    }

    /// Maximum number of *distinct* banks touched by `count` consecutive
    /// blocks of the same queue (used by conflict-freedom arguments).
    pub fn distinct_banks_in_window(&self, count: usize) -> usize {
        count.min(self.cfg.banks_per_group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapper() -> AddressMapper {
        AddressMapper::new(InterleavingConfig::new(256, 8, 512).unwrap())
    }

    #[test]
    fn config_validation() {
        assert!(matches!(
            InterleavingConfig::new(0, 8, 512),
            Err(MappingError::Zero("num_banks"))
        ));
        assert!(matches!(
            InterleavingConfig::new(256, 0, 512),
            Err(MappingError::Zero("banks_per_group"))
        ));
        assert!(matches!(
            InterleavingConfig::new(256, 8, 0),
            Err(MappingError::Zero("num_physical_queues"))
        ));
        let err = InterleavingConfig::new(100, 8, 512).unwrap_err();
        assert!(matches!(err, MappingError::NotDivisible { .. }));
        assert!(err.to_string().contains("100"));
    }

    #[test]
    fn groups_and_queue_assignment() {
        let m = mapper();
        assert_eq!(m.config().num_groups(), 32);
        assert_eq!(m.config().queues_per_group(), 16);
        // Queue q maps to group q mod 32.
        assert_eq!(m.group_of_queue(PhysicalQueueId::new(0)), GroupId::new(0));
        assert_eq!(m.group_of_queue(PhysicalQueueId::new(33)), GroupId::new(1));
        assert_eq!(
            m.group_of_queue(PhysicalQueueId::new(511)),
            GroupId::new(31)
        );
    }

    #[test]
    fn consecutive_blocks_rotate_over_group_banks() {
        let m = mapper();
        let q = PhysicalQueueId::new(5);
        let banks: Vec<BankId> = (0..8).map(|o| m.bank_for(q, o)).collect();
        // All 8 banks are distinct and belong to the queue's group.
        let group = m.group_of_queue(q);
        for (i, b) in banks.iter().enumerate() {
            assert_eq!(m.group_of_bank(*b), group);
            for other in &banks[..i] {
                assert_ne!(b, other);
            }
        }
        // Block 8 wraps around to the same bank as block 0.
        assert_eq!(m.bank_for(q, 8), banks[0]);
    }

    #[test]
    fn queues_in_different_groups_use_disjoint_banks() {
        let m = mapper();
        let qa = PhysicalQueueId::new(0); // group 0
        let qb = PhysicalQueueId::new(1); // group 1
        for oa in 0..16 {
            for ob in 0..16 {
                assert_ne!(m.bank_for(qa, oa), m.bank_for(qb, ob));
            }
        }
    }

    #[test]
    fn decode_is_consistent_with_bank_for() {
        let m = mapper();
        let q = PhysicalQueueId::new(77);
        for o in 0..40 {
            let d = m.decode(q, o);
            assert_eq!(d.bank, m.bank_for(q, o));
            assert_eq!(d.group, m.group_of_queue(q));
            assert_eq!(d.bank_in_group, (o % 8) as usize);
            assert_eq!(d.row, o / 8);
        }
    }

    #[test]
    fn linear_addresses_are_block_aligned_and_distinct() {
        let m = AddressMapper::with_block_cells(InterleavingConfig::new(32, 4, 64).unwrap(), 4);
        let mut seen = std::collections::HashSet::new();
        for q in 0..64u32 {
            for o in 0..8u64 {
                let a = m.linear_address(PhysicalQueueId::new(q), o);
                assert_eq!(a % 256, 0, "addresses are 4-cell (256 B) aligned");
                assert!(seen.insert(a), "address collision for q={q} o={o}");
            }
        }
    }

    #[test]
    fn distinct_banks_in_window_saturates() {
        let m = mapper();
        assert_eq!(m.distinct_banks_in_window(3), 3);
        assert_eq!(m.distinct_banks_in_window(8), 8);
        assert_eq!(m.distinct_banks_in_window(100), 8);
    }

    #[test]
    fn from_cfds_matches_manual_construction() {
        let cfg = CfdsConfig::builder().build().unwrap();
        let ic = InterleavingConfig::from_cfds(&cfg);
        assert_eq!(ic.num_banks(), 256);
        assert_eq!(ic.banks_per_group(), 8);
        assert_eq!(ic.num_physical_queues(), 512);
    }
}
