//! A single DRAM bank timing state machine.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

use crate::request::BankId;

/// State of a bank at a given slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BankState {
    /// The bank can accept a new access.
    Idle,
    /// The bank is busy with an access until (exclusive) the given slot.
    Busy {
        /// First slot at which the bank is free again.
        until_slot: u64,
    },
}

/// Error returned when a bank is accessed while still busy.
///
/// In a packet buffer a bank conflict is fatal for worst-case guarantees: it
/// would delay a transfer past its deadline and drop a cell, which is why the
/// CFDS scheduler is designed to make this error impossible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankConflict {
    /// Bank that was accessed while busy.
    pub bank: BankId,
    /// Slot at which the conflicting access was attempted.
    pub at_slot: u64,
    /// Slot at which the bank becomes free.
    pub busy_until: u64,
}

impl fmt::Display for BankConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bank conflict on {} at slot {} (busy until slot {})",
            self.bank, self.at_slot, self.busy_until
        )
    }
}

impl Error for BankConflict {}

/// A single DRAM bank.
///
/// The bank only models *timing*: it is busy for a fixed number of slots after
/// each access (the DRAM random access time expressed in slots) and rejects
/// overlapping accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bank {
    id: BankId,
    state: BankState,
    accesses: u64,
    busy_slots_total: u64,
}

impl Bank {
    /// Creates an idle bank.
    pub fn new(id: BankId) -> Self {
        Bank {
            id,
            state: BankState::Idle,
            accesses: 0,
            busy_slots_total: 0,
        }
    }

    /// The bank identifier.
    pub fn id(&self) -> BankId {
        self.id
    }

    /// Current state, after accounting for the passage of time up to `now`.
    pub fn state_at(&self, now: u64) -> BankState {
        match self.state {
            BankState::Busy { until_slot } if until_slot > now => BankState::Busy { until_slot },
            _ => BankState::Idle,
        }
    }

    /// Whether the bank is busy at slot `now`.
    pub fn is_busy(&self, now: u64) -> bool {
        matches!(self.state_at(now), BankState::Busy { .. })
    }

    /// Starts an access of `busy_slots` slots at slot `now`.
    ///
    /// # Errors
    ///
    /// Returns [`BankConflict`] if the bank is still busy at `now`.
    pub fn start_access(&mut self, now: u64, busy_slots: u64) -> Result<(), BankConflict> {
        if let BankState::Busy { until_slot } = self.state_at(now) {
            return Err(BankConflict {
                bank: self.id,
                at_slot: now,
                busy_until: until_slot,
            });
        }
        self.state = BankState::Busy {
            until_slot: now + busy_slots,
        };
        self.accesses += 1;
        self.busy_slots_total += busy_slots;
        Ok(())
    }

    /// Number of accesses performed so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total number of slots spent busy.
    pub fn busy_slots_total(&self) -> u64 {
        self.busy_slots_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_bank_accepts_access() {
        let mut b = Bank::new(BankId::new(0));
        assert!(!b.is_busy(0));
        b.start_access(0, 8).unwrap();
        assert!(b.is_busy(0));
        assert!(b.is_busy(7));
        assert!(!b.is_busy(8));
        assert_eq!(b.accesses(), 1);
        assert_eq!(b.busy_slots_total(), 8);
    }

    #[test]
    fn busy_bank_rejects_access() {
        let mut b = Bank::new(BankId::new(3));
        b.start_access(10, 32).unwrap();
        let err = b.start_access(20, 32).unwrap_err();
        assert_eq!(err.bank, BankId::new(3));
        assert_eq!(err.at_slot, 20);
        assert_eq!(err.busy_until, 42);
        assert!(err.to_string().contains("bank3"));
        // Once free again, access succeeds.
        b.start_access(42, 32).unwrap();
        assert_eq!(b.accesses(), 2);
    }

    #[test]
    fn state_at_reports_busy_window() {
        let mut b = Bank::new(BankId::new(1));
        b.start_access(5, 4).unwrap();
        assert_eq!(b.state_at(5), BankState::Busy { until_slot: 9 });
        assert_eq!(b.state_at(9), BankState::Idle);
        assert_eq!(b.state_at(100), BankState::Idle);
    }

    #[test]
    fn back_to_back_accesses_at_exact_boundary() {
        let mut b = Bank::new(BankId::new(2));
        for i in 0..10u64 {
            b.start_access(i * 8, 8).unwrap();
        }
        assert_eq!(b.accesses(), 10);
        assert_eq!(b.busy_slots_total(), 80);
    }
}
