//! DRAM usage statistics.

use serde::{Deserialize, Serialize};

/// Aggregate statistics of a [`crate::BankArray`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Number of successfully started accesses.
    pub accesses: u64,
    /// Number of rejected accesses (bank conflicts).
    pub conflicts: u64,
    /// Sum over accesses of the busy time they occupied (slots).
    pub busy_slots: u64,
    /// Last slot at which an access was started.
    pub last_access_slot: u64,
}

impl DramStats {
    /// Records a successful access.
    pub fn record_access(&mut self, now: u64, busy_slots: u64) {
        self.accesses += 1;
        self.busy_slots += busy_slots;
        self.last_access_slot = self.last_access_slot.max(now);
    }

    /// Records a rejected access.
    pub fn record_conflict(&mut self) {
        self.conflicts += 1;
    }

    /// Aggregate bank utilisation over `elapsed_slots` slots of simulated time
    /// and `num_banks` banks: busy bank-slots divided by available bank-slots.
    pub fn utilisation(&self, elapsed_slots: u64, num_banks: usize) -> f64 {
        if elapsed_slots == 0 || num_banks == 0 {
            return 0.0;
        }
        self.busy_slots as f64 / (elapsed_slots as f64 * num_banks as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilisation_is_fraction_of_bank_slots() {
        let mut s = DramStats::default();
        s.record_access(0, 8);
        s.record_access(8, 8);
        // 16 busy bank-slots over 32 slots * 1 bank.
        assert!((s.utilisation(32, 1) - 0.5).abs() < 1e-12);
        // Over 4 banks, utilisation is a quarter of that.
        assert!((s.utilisation(32, 4) - 0.125).abs() < 1e-12);
        assert_eq!(s.utilisation(0, 4), 0.0);
        assert_eq!(s.utilisation(32, 0), 0.0);
    }

    #[test]
    fn counters_accumulate() {
        let mut s = DramStats::default();
        s.record_access(5, 8);
        s.record_conflict();
        s.record_access(13, 8);
        assert_eq!(s.accesses, 2);
        assert_eq!(s.conflicts, 1);
        assert_eq!(s.busy_slots, 16);
        assert_eq!(s.last_access_slot, 13);
    }
}
