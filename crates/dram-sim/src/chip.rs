//! SDRAM chip bandwidth model for the DRAM-only baseline (§1).
//!
//! The introduction of the paper motivates the hybrid designs by showing that a
//! DRAM-only buffer cannot provide worst-case guarantees at high rates: a
//! single-chip 16-bit / 100 MHz SDRAM has a 1.6 Gb/s peak bandwidth but only
//! ~1.2 Gb/s guaranteed once activate/precharge overhead is paid on every
//! (worst-case) random access, and widening the bus to 8 chips yields only
//! ~5.12 Gb/s guaranteed instead of 8 × more — diminishing returns because the
//! fixed row-cycle overhead is amortised over an ever shorter data transfer.

use pktbuf_model::CELL_BYTES;
use serde::{Deserialize, Serialize};
use std::fmt;

/// SDRAM timing expressed in clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SdramTimingCycles {
    /// RAS-to-CAS delay (activate).
    pub t_rcd: u32,
    /// CAS latency.
    pub t_cas: u32,
    /// Row precharge time.
    pub t_rp: u32,
}

impl SdramTimingCycles {
    /// Typical PC100-class SDRAM timing (3-3-3 at 100 MHz).
    pub fn pc100() -> Self {
        SdramTimingCycles {
            t_rcd: 3,
            t_cas: 3,
            t_rp: 3,
        }
    }

    /// Total row-cycle overhead in cycles that a worst-case access pays on top
    /// of the pure data transfer (activate + CAS + precharge).
    pub fn overhead_cycles(&self) -> u32 {
        self.t_rcd + self.t_cas + self.t_rp
    }
}

impl Default for SdramTimingCycles {
    fn default() -> Self {
        SdramTimingCycles::pc100()
    }
}

/// A single SDRAM chip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SdramChip {
    /// Data interface width in bits.
    pub data_width_bits: u32,
    /// I/O clock frequency in MHz.
    pub clock_mhz: f64,
    /// Timing parameters.
    pub timing: SdramTimingCycles,
}

impl SdramChip {
    /// The single-chip design point of reference \[9\] of the paper: 16 Mb
    /// SDRAM, 16-bit interface,
    /// 100 MHz clock.
    pub fn reference_16mb() -> Self {
        SdramChip {
            data_width_bits: 16,
            clock_mhz: 100.0,
            timing: SdramTimingCycles::pc100(),
        }
    }

    /// Peak (pin) bandwidth in bits per second.
    pub fn peak_bandwidth_bps(&self) -> f64 {
        self.data_width_bits as f64 * self.clock_mhz * 1e6
    }

    /// Clock period in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1e3 / self.clock_mhz
    }

    /// Cycles needed to move one 64-byte cell across the data pins.
    pub fn transfer_cycles_per_cell(&self) -> u32 {
        ((CELL_BYTES * 8) as u32).div_ceil(self.data_width_bits)
    }

    /// Worst-case guaranteed bandwidth in bits per second: every cell access
    /// pays the full activate + CAS + precharge overhead (random accesses to
    /// the same bank, the pattern a router must survive).
    pub fn guaranteed_bandwidth_bps(&self) -> f64 {
        let cycles = self.transfer_cycles_per_cell() + self.timing.overhead_cycles();
        let time_ns = cycles as f64 * self.cycle_ns();
        (CELL_BYTES * 8) as f64 / (time_ns * 1e-9)
    }

    /// Efficiency = guaranteed / peak.
    pub fn worst_case_efficiency(&self) -> f64 {
        self.guaranteed_bandwidth_bps() / self.peak_bandwidth_bps()
    }
}

impl fmt::Display for SdramChip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SDRAM {}-bit @ {} MHz (peak {:.2} Gb/s, guaranteed {:.2} Gb/s)",
            self.data_width_bits,
            self.clock_mhz,
            self.peak_bandwidth_bps() / 1e9,
            self.guaranteed_bandwidth_bps() / 1e9,
        )
    }
}

/// A multi-chip configuration: `num_chips` chips in parallel forming a bus
/// `num_chips ×` wider.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiChipConfig {
    /// The base chip replicated across the bus.
    pub chip: SdramChip,
    /// Number of chips accessed in lock-step.
    pub num_chips: u32,
}

impl MultiChipConfig {
    /// Creates a configuration of `num_chips` identical chips.
    pub fn new(chip: SdramChip, num_chips: u32) -> Self {
        MultiChipConfig { chip, num_chips }
    }

    /// The equivalent wide chip (same timing, `num_chips ×` wider data bus).
    pub fn as_wide_chip(&self) -> SdramChip {
        SdramChip {
            data_width_bits: self.chip.data_width_bits * self.num_chips.max(1),
            ..self.chip
        }
    }

    /// Peak bandwidth of the whole bus.
    pub fn peak_bandwidth_bps(&self) -> f64 {
        self.as_wide_chip().peak_bandwidth_bps()
    }

    /// Guaranteed bandwidth of the whole bus (worst-case random accesses).
    pub fn guaranteed_bandwidth_bps(&self) -> f64 {
        self.as_wide_chip().guaranteed_bandwidth_bps()
    }

    /// Efficiency = guaranteed / peak, which shrinks as the bus gets wider.
    pub fn worst_case_efficiency(&self) -> f64 {
        self.as_wide_chip().worst_case_efficiency()
    }
}

impl fmt::Display for MultiChipConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} × {} (guaranteed {:.2} Gb/s of {:.2} Gb/s peak)",
            self.num_chips,
            self.chip,
            self.guaranteed_bandwidth_bps() / 1e9,
            self.peak_bandwidth_bps() / 1e9,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_chip_peak_is_1_6_gbps() {
        let chip = SdramChip::reference_16mb();
        assert!((chip.peak_bandwidth_bps() - 1.6e9).abs() < 1e3);
        assert_eq!(chip.transfer_cycles_per_cell(), 32);
        assert!((chip.cycle_ns() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn guaranteed_bandwidth_is_below_peak() {
        let chip = SdramChip::reference_16mb();
        let g = chip.guaranteed_bandwidth_bps();
        // With 9 cycles of overhead on 32 transfer cycles the guaranteed
        // bandwidth is ~1.25 Gb/s — close to the 1.2 Gb/s reported in [9].
        assert!(g < chip.peak_bandwidth_bps());
        assert!(g > 1.1e9 && g < 1.35e9, "guaranteed = {g}");
        assert!(chip.worst_case_efficiency() < 0.85);
    }

    #[test]
    fn eight_chip_configuration_shows_diminishing_returns() {
        let chip = SdramChip::reference_16mb();
        let one = MultiChipConfig::new(chip, 1);
        let eight = MultiChipConfig::new(chip, 8);
        assert!((eight.peak_bandwidth_bps() - 12.8e9).abs() < 1e3);
        let g8 = eight.guaranteed_bandwidth_bps();
        // Far below 8× the single-chip guaranteed bandwidth (paper: 5.12 Gb/s).
        assert!(g8 < 8.0 * one.guaranteed_bandwidth_bps() * 0.6);
        assert!(g8 > 3.0e9 && g8 < 6.0e9, "guaranteed 8-chip = {g8}");
        // Efficiency strictly decreases with bus width.
        assert!(eight.worst_case_efficiency() < one.worst_case_efficiency());
    }

    #[test]
    fn efficiency_monotonically_decreases_with_chips() {
        let chip = SdramChip::reference_16mb();
        let mut last = f64::INFINITY;
        for n in [1u32, 2, 4, 8, 16, 32] {
            let eff = MultiChipConfig::new(chip, n).worst_case_efficiency();
            assert!(eff < last, "efficiency must fall as the bus widens");
            last = eff;
        }
    }

    #[test]
    fn display_mentions_bandwidths() {
        let chip = SdramChip::reference_16mb();
        assert!(chip.to_string().contains("16-bit"));
        let multi = MultiChipConfig::new(chip, 8);
        assert!(multi.to_string().contains('8'));
    }

    #[test]
    fn timing_overhead_cycles() {
        let t = SdramTimingCycles::pc100();
        assert_eq!(t.overhead_cycles(), 9);
        assert_eq!(SdramTimingCycles::default(), t);
    }
}
