//! DRAM access requests and bank/group identifiers.

use pktbuf_model::PhysicalQueueId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a DRAM bank (global, 0-based).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct BankId(pub u32);

impl BankId {
    /// Creates a bank id.
    pub fn new(i: u32) -> Self {
        BankId(i)
    }
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bank{}", self.0)
    }
}

/// Identifier of a bank group.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct GroupId(pub u32);

impl GroupId {
    /// Creates a group id.
    pub fn new(i: u32) -> Self {
        GroupId(i)
    }
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group{}", self.0)
    }
}

/// Direction of a DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// DRAM → head SRAM transfer (replenish on behalf of the h-MMA).
    Read,
    /// Tail SRAM → DRAM transfer (writeback on behalf of the t-MMA).
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
        }
    }
}

/// A request for one DRAM access of `b` cells of a physical queue.
///
/// `block_ordinal` is the per-queue block sequence number; the address mapper
/// turns `(queue, block_ordinal)` into a concrete bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramRequest {
    /// Physical queue the block belongs to.
    pub queue: PhysicalQueueId,
    /// Per-queue block sequence number (0, 1, 2, …).
    pub block_ordinal: u64,
    /// Read (replenish) or write (writeback).
    pub kind: AccessKind,
    /// Slot at which the MMA issued the request (for latency accounting).
    pub issued_slot: u64,
}

impl DramRequest {
    /// Creates a read (DRAM → SRAM) request.
    pub fn read(queue: PhysicalQueueId, block_ordinal: u64, issued_slot: u64) -> Self {
        DramRequest {
            queue,
            block_ordinal,
            kind: AccessKind::Read,
            issued_slot,
        }
    }

    /// Creates a write (SRAM → DRAM) request.
    pub fn write(queue: PhysicalQueueId, block_ordinal: u64, issued_slot: u64) -> Self {
        DramRequest {
            queue,
            block_ordinal,
            kind: AccessKind::Write,
            issued_slot,
        }
    }
}

impl fmt::Display for DramRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} block {} (issued @{})",
            self.kind, self.queue, self.block_ordinal, self.issued_slot
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let q = PhysicalQueueId::new(3);
        let r = DramRequest::read(q, 5, 100);
        assert_eq!(r.kind, AccessKind::Read);
        assert_eq!(r.block_ordinal, 5);
        let w = DramRequest::write(q, 6, 101);
        assert_eq!(w.kind, AccessKind::Write);
        assert_eq!(w.issued_slot, 101);
    }

    #[test]
    fn display_formats() {
        let q = PhysicalQueueId::new(3);
        let r = DramRequest::read(q, 5, 100);
        let s = r.to_string();
        assert!(s.contains("read"));
        assert!(s.contains("Qp3"));
        assert_eq!(BankId::new(4).to_string(), "bank4");
        assert_eq!(GroupId::new(2).to_string(), "group2");
        assert_eq!(AccessKind::Write.to_string(), "write");
    }

    #[test]
    fn ids_expose_indices() {
        assert_eq!(BankId::new(7).index(), 7);
        assert_eq!(GroupId::new(9).index(), 9);
    }
}
