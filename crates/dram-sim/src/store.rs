//! Per-queue DRAM block storage with group capacity accounting.
//!
//! The storage view of the DRAM: each physical queue is a FIFO of `b`-cell
//! blocks that lives entirely inside its statically assigned bank group. The
//! store tracks per-group occupancy so the fragmentation experiments (§6) can
//! observe how much of the DRAM is actually usable with and without renaming.

use crate::mapping::AddressMapper;
use crate::request::GroupId;
use pktbuf_model::{Cell, PhysicalQueueId};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Errors raised by the [`DramStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The bank group that the queue is assigned to has no free block.
    GroupFull {
        /// Group that is full.
        group: GroupId,
        /// Capacity of the group in blocks.
        capacity_blocks: usize,
    },
    /// A read was attempted on a queue with no blocks in DRAM.
    QueueEmpty {
        /// The empty queue.
        queue: PhysicalQueueId,
    },
    /// The requested block ordinal is not resident.
    BlockMissing {
        /// Queue of the missing block.
        queue: PhysicalQueueId,
        /// Requested ordinal.
        ordinal: u64,
    },
    /// A block was written twice at the same ordinal.
    BlockAlreadyPresent {
        /// Queue of the duplicate block.
        queue: PhysicalQueueId,
        /// Duplicate ordinal.
        ordinal: u64,
    },
    /// Queue index outside the configured range.
    QueueOutOfRange {
        /// The offending queue.
        queue: PhysicalQueueId,
        /// Configured number of physical queues.
        num_queues: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::GroupFull {
                group,
                capacity_blocks,
            } => write!(f, "{group} is full ({capacity_blocks} blocks)"),
            StoreError::QueueEmpty { queue } => write!(f, "{queue} has no blocks in DRAM"),
            StoreError::BlockMissing { queue, ordinal } => {
                write!(f, "block {ordinal} of {queue} is not in DRAM")
            }
            StoreError::BlockAlreadyPresent { queue, ordinal } => {
                write!(f, "block {ordinal} of {queue} is already in DRAM")
            }
            StoreError::QueueOutOfRange { queue, num_queues } => {
                write!(f, "{queue} out of range ({num_queues} physical queues)")
            }
        }
    }
}

impl Error for StoreError {}

/// State of one ordinal position in a queue's block ring.
#[derive(Debug, Clone)]
enum BlockSlot {
    /// Never written at this ordinal (a scheduler hole awaiting its write).
    Vacant,
    /// Resident block.
    Present(Vec<Cell>),
    /// Written and later read; kept only while trapped behind a vacant hole.
    Consumed,
}

impl BlockSlot {
    fn is_present(&self) -> bool {
        matches!(self, BlockSlot::Present(_))
    }
}

/// Block storage of one physical queue: a dense ring indexed by
/// `ordinal - base` instead of a `BTreeMap<u64, Vec<Cell>>`.
///
/// The CFDS scheduler may commit and fetch blocks out of ordinal order, but
/// the live ordinals of a FIFO queue always form a narrow moving window, so a
/// ring with a base offset gives O(1) index-addressed access with no per-block
/// tree nodes to allocate or free on the simulation hot path.
#[derive(Debug, Clone, Default)]
struct QueueBlocks {
    /// Ordinal of ring position 0.
    base: u64,
    ring: VecDeque<BlockSlot>,
    resident_blocks: usize,
    resident_cells: usize,
}

impl QueueBlocks {
    fn slot(&self, ordinal: u64) -> Option<&BlockSlot> {
        if ordinal < self.base {
            return None;
        }
        self.ring.get((ordinal - self.base) as usize)
    }

    /// Grows the ring (front or back) so `ordinal` has a slot, and returns its
    /// index. Growth is a warm-up cost: once the window covers the queue's
    /// steady-state span no further allocation happens.
    fn slot_index_for_write(&mut self, ordinal: u64) -> usize {
        if self.ring.is_empty() {
            self.base = ordinal;
        }
        if ordinal < self.base {
            for _ in 0..(self.base - ordinal) {
                self.ring.push_front(BlockSlot::Vacant);
            }
            self.base = ordinal;
        }
        let idx = (ordinal - self.base) as usize;
        while self.ring.len() <= idx {
            self.ring.push_back(BlockSlot::Vacant);
        }
        idx
    }

    /// Drops consumed slots from the front so the ring tracks the live window.
    fn trim_front(&mut self) {
        while matches!(self.ring.front(), Some(BlockSlot::Consumed)) {
            self.ring.pop_front();
            self.base += 1;
        }
    }
}

/// FIFO block storage for every physical queue, constrained by per-group
/// capacity.
#[derive(Debug, Clone)]
pub struct DramStore {
    mapper: AddressMapper,
    /// Per-queue block rings (see [`QueueBlocks`]). The CFDS scheduler may
    /// commit blocks to the DRAM out of ordinal order, which the ring absorbs
    /// as transient vacant holes.
    queues: Vec<QueueBlocks>,
    /// Next block ordinal to be written, per queue (monotonically increasing).
    tail_ordinal: Vec<u64>,
    /// Ordinal of the block currently at the head, per queue.
    head_ordinal: Vec<u64>,
    /// Blocks currently resident, per group.
    group_occupancy: Vec<usize>,
    /// Capacity of each group in blocks.
    group_capacity_blocks: usize,
}

impl DramStore {
    /// Creates a store where each of the `G` groups can hold
    /// `group_capacity_blocks` blocks.
    pub fn new(mapper: AddressMapper, group_capacity_blocks: usize) -> Self {
        let nq = mapper.config().num_physical_queues();
        let ng = mapper.config().num_groups();
        DramStore {
            mapper,
            queues: vec![QueueBlocks::default(); nq],
            tail_ordinal: vec![0; nq],
            head_ordinal: vec![0; nq],
            group_occupancy: vec![0; ng],
            group_capacity_blocks,
        }
    }

    /// Creates a store sized from a total DRAM capacity in cells, split evenly
    /// over the groups (blocks of `cells_per_block` cells).
    pub fn with_total_capacity(
        mapper: AddressMapper,
        total_capacity_cells: usize,
        cells_per_block: usize,
    ) -> Self {
        let ng = mapper.config().num_groups();
        let blocks = total_capacity_cells / cells_per_block.max(1);
        DramStore::new(mapper, blocks / ng.max(1))
    }

    fn check_queue(&self, queue: PhysicalQueueId) -> Result<usize, StoreError> {
        let idx = queue.as_usize();
        if idx >= self.queues.len() {
            return Err(StoreError::QueueOutOfRange {
                queue,
                num_queues: self.queues.len(),
            });
        }
        Ok(idx)
    }

    /// Appends a block of cells to `queue`.
    ///
    /// Returns the ordinal assigned to the block (which determines the bank it
    /// lives in).
    ///
    /// # Errors
    ///
    /// [`StoreError::GroupFull`] when the queue's group has no free block;
    /// [`StoreError::QueueOutOfRange`] for an unknown queue.
    pub fn write_block(
        &mut self,
        queue: PhysicalQueueId,
        cells: Vec<Cell>,
    ) -> Result<u64, StoreError> {
        let ordinal = self.tail_ordinal[self.check_queue(queue)?];
        self.write_block_at(queue, ordinal, cells)?;
        Ok(ordinal)
    }

    /// Writes a block at an explicit ordinal (used by the CFDS scheduler,
    /// which assigns ordinals at submit time and may commit them out of
    /// order).
    ///
    /// # Errors
    ///
    /// [`StoreError::GroupFull`], [`StoreError::BlockAlreadyPresent`] or
    /// [`StoreError::QueueOutOfRange`].
    pub fn write_block_at(
        &mut self,
        queue: PhysicalQueueId,
        ordinal: u64,
        cells: Vec<Cell>,
    ) -> Result<(), StoreError> {
        let idx = self.check_queue(queue)?;
        let group = self.mapper.group_of_queue(queue);
        if self.group_occupancy[group.index()] >= self.group_capacity_blocks {
            return Err(StoreError::GroupFull {
                group,
                capacity_blocks: self.group_capacity_blocks,
            });
        }
        let q = &mut self.queues[idx];
        if q.slot(ordinal).is_some_and(BlockSlot::is_present) {
            return Err(StoreError::BlockAlreadyPresent { queue, ordinal });
        }
        let pos = q.slot_index_for_write(ordinal);
        q.resident_blocks += 1;
        q.resident_cells += cells.len();
        q.ring[pos] = BlockSlot::Present(cells);
        if ordinal >= self.tail_ordinal[idx] {
            self.tail_ordinal[idx] = ordinal + 1;
        }
        self.group_occupancy[group.index()] += 1;
        Ok(())
    }

    /// Removes and returns the block at the head of `queue` together with its
    /// ordinal.
    ///
    /// # Errors
    ///
    /// [`StoreError::QueueEmpty`] when the queue holds no block;
    /// [`StoreError::QueueOutOfRange`] for an unknown queue.
    pub fn read_block(&mut self, queue: PhysicalQueueId) -> Result<(u64, Vec<Cell>), StoreError> {
        let idx = self.check_queue(queue)?;
        let q = &self.queues[idx];
        let ordinal = q
            .ring
            .iter()
            .position(BlockSlot::is_present)
            .map(|pos| q.base + pos as u64)
            .ok_or(StoreError::QueueEmpty { queue })?;
        let block = self.read_block_at(queue, ordinal)?;
        Ok((ordinal, block))
    }

    /// Removes and returns the block stored at `ordinal` for `queue`.
    ///
    /// # Errors
    ///
    /// [`StoreError::BlockMissing`] or [`StoreError::QueueOutOfRange`].
    pub fn read_block_at(
        &mut self,
        queue: PhysicalQueueId,
        ordinal: u64,
    ) -> Result<Vec<Cell>, StoreError> {
        let idx = self.check_queue(queue)?;
        let q = &mut self.queues[idx];
        if !q.slot(ordinal).is_some_and(BlockSlot::is_present) {
            return Err(StoreError::BlockMissing { queue, ordinal });
        }
        let pos = (ordinal - q.base) as usize;
        let BlockSlot::Present(block) = std::mem::replace(&mut q.ring[pos], BlockSlot::Consumed)
        else {
            // The is_present probe above makes this unreachable; returning
            // the miss error keeps the hot path free of panicking branches.
            return Err(StoreError::BlockMissing { queue, ordinal });
        };
        q.resident_blocks -= 1;
        q.resident_cells -= block.len();
        q.trim_front();
        if ordinal >= self.head_ordinal[idx] {
            self.head_ordinal[idx] = ordinal + 1;
        }
        let group = self.mapper.group_of_queue(queue);
        self.group_occupancy[group.index()] -= 1;
        Ok(block)
    }

    /// Records that the block at `ordinal` of `queue` was *forwarded* around
    /// the DRAM (its read was issued before its producing write — possible
    /// only under the ablation scheduler policies) and will therefore never
    /// become resident. Without this the ordinal would stay a vacant hole at
    /// the front of the queue's ring forever, pinning the ring's base and
    /// growing it by one retained slot per later block.
    ///
    /// No observable state changes: the block was never resident, so group
    /// occupancy and the per-queue block/cell counts are untouched.
    ///
    /// # Errors
    ///
    /// [`StoreError::QueueOutOfRange`] for an unknown queue.
    pub fn note_forwarded(
        &mut self,
        queue: PhysicalQueueId,
        ordinal: u64,
    ) -> Result<(), StoreError> {
        let idx = self.check_queue(queue)?;
        let q = &mut self.queues[idx];
        if ordinal < q.base {
            return Ok(());
        }
        let pos = q.slot_index_for_write(ordinal);
        if matches!(q.ring[pos], BlockSlot::Vacant) {
            q.ring[pos] = BlockSlot::Consumed;
            q.trim_front();
        }
        Ok(())
    }

    /// Whether a block is resident at `ordinal` for `queue`.
    pub fn has_block(&self, queue: PhysicalQueueId, ordinal: u64) -> bool {
        self.queues
            .get(queue.as_usize())
            .and_then(|q| q.slot(ordinal))
            .is_some_and(BlockSlot::is_present)
    }

    /// Ordinal that the *next* written block of `queue` will receive.
    pub fn next_write_ordinal(&self, queue: PhysicalQueueId) -> u64 {
        self.tail_ordinal[queue.as_usize()]
    }

    /// Ordinal of the block currently at the head of `queue`.
    pub fn head_ordinal(&self, queue: PhysicalQueueId) -> u64 {
        self.head_ordinal[queue.as_usize()]
    }

    /// Number of blocks currently stored for `queue`.
    pub fn blocks_in_queue(&self, queue: PhysicalQueueId) -> usize {
        self.queues[queue.as_usize()].resident_blocks
    }

    /// Number of cells currently stored for `queue`.
    pub fn cells_in_queue(&self, queue: PhysicalQueueId) -> usize {
        self.queues[queue.as_usize()].resident_cells
    }

    /// Blocks currently resident in `group`.
    pub fn group_occupancy(&self, group: GroupId) -> usize {
        self.group_occupancy[group.index()]
    }

    /// Capacity of each group in blocks.
    pub fn group_capacity_blocks(&self) -> usize {
        self.group_capacity_blocks
    }

    /// Whether `group` has room for at least one more block.
    pub fn group_has_room(&self, group: GroupId) -> bool {
        self.group_occupancy[group.index()] < self.group_capacity_blocks
    }

    /// Total blocks resident across all groups.
    pub fn total_blocks(&self) -> usize {
        self.group_occupancy.iter().sum()
    }

    /// Fraction of the total DRAM block capacity currently used.
    pub fn utilisation(&self) -> f64 {
        let cap = self.group_capacity_blocks * self.group_occupancy.len();
        if cap == 0 {
            return 0.0;
        }
        self.total_blocks() as f64 / cap as f64
    }

    /// The address mapper used by this store.
    pub fn mapper(&self) -> &AddressMapper {
        &self.mapper
    }

    /// Group with the fewest resident blocks (used by the renaming balancer).
    pub fn least_loaded_group(&self) -> GroupId {
        let (idx, _) = self
            .group_occupancy
            .iter()
            .enumerate()
            .min_by_key(|(_, occ)| **occ)
            .expect("at least one group"); // analyze: allow(panic-freedom) — a store always has at least one group (validated at construction)
        GroupId::new(idx as u32)
    }

    /// Groups that currently have free space, ordered by ascending occupancy
    /// (ties resolve to the lower group index). Allocates — used on cold
    /// paths only; the per-period writeback path ranks groups in one pass
    /// without materialising a list (the renaming layer's ranked allocation
    /// over [`DramStore::group_occupancy`]).
    pub fn groups_with_room(&self) -> Vec<GroupId> {
        let mut out: Vec<GroupId> = self
            .group_occupancy
            .iter()
            .enumerate()
            .filter(|(_, occ)| **occ < self.group_capacity_blocks)
            .map(|(i, _)| GroupId::new(i as u32))
            .collect(); // analyze: allow(hotpath-alloc) — documented cold-path accessor; the per-period writeback path ranks groups without materialising a list
                        // (occupancy, index) keys are distinct, so the unstable in-place sort
                        // produces exactly the stable by-occupancy order.
        out.sort_unstable_by_key(|g| (self.group_occupancy[g.index()], g.index()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::InterleavingConfig;
    use pktbuf_model::LogicalQueueId;

    fn store(group_blocks: usize) -> DramStore {
        let mapper = AddressMapper::new(InterleavingConfig::new(16, 4, 8).unwrap());
        DramStore::new(mapper, group_blocks)
    }

    fn mk_cells(q: u32, start_seq: u64, n: usize) -> Vec<Cell> {
        (0..n)
            .map(|i| Cell::new(LogicalQueueId::new(q), start_seq + i as u64, 0))
            .collect()
    }

    #[test]
    fn write_then_read_is_fifo() {
        let mut s = store(8);
        let q = PhysicalQueueId::new(1);
        assert_eq!(s.write_block(q, mk_cells(1, 0, 4)).unwrap(), 0);
        assert_eq!(s.write_block(q, mk_cells(1, 4, 4)).unwrap(), 1);
        assert_eq!(s.blocks_in_queue(q), 2);
        assert_eq!(s.cells_in_queue(q), 8);
        let (o0, b0) = s.read_block(q).unwrap();
        assert_eq!(o0, 0);
        assert_eq!(b0[0].seq(), 0);
        let (o1, b1) = s.read_block(q).unwrap();
        assert_eq!(o1, 1);
        assert_eq!(b1[0].seq(), 4);
        assert!(matches!(
            s.read_block(q),
            Err(StoreError::QueueEmpty { .. })
        ));
    }

    #[test]
    fn group_capacity_is_enforced() {
        let mut s = store(2);
        // Queues 0 and 4 both map to group 0 (4 groups).
        let q0 = PhysicalQueueId::new(0);
        let q4 = PhysicalQueueId::new(4);
        s.write_block(q0, mk_cells(0, 0, 4)).unwrap();
        s.write_block(q4, mk_cells(4, 0, 4)).unwrap();
        let err = s.write_block(q0, mk_cells(0, 4, 4)).unwrap_err();
        assert!(matches!(err, StoreError::GroupFull { .. }));
        assert!(!s.group_has_room(GroupId::new(0)));
        assert!(s.group_has_room(GroupId::new(1)));
        // Draining frees space.
        s.read_block(q4).unwrap();
        assert!(s.group_has_room(GroupId::new(0)));
        s.write_block(q0, mk_cells(0, 4, 4)).unwrap();
    }

    #[test]
    fn occupancy_and_utilisation() {
        let mut s = store(4);
        assert_eq!(s.total_blocks(), 0);
        assert_eq!(s.utilisation(), 0.0);
        s.write_block(PhysicalQueueId::new(0), mk_cells(0, 0, 4))
            .unwrap();
        s.write_block(PhysicalQueueId::new(1), mk_cells(1, 0, 4))
            .unwrap();
        assert_eq!(s.total_blocks(), 2);
        assert_eq!(s.group_occupancy(GroupId::new(0)), 1);
        assert_eq!(s.group_occupancy(GroupId::new(1)), 1);
        assert!((s.utilisation() - 2.0 / 16.0).abs() < 1e-12);
        assert_eq!(s.group_capacity_blocks(), 4);
    }

    #[test]
    fn least_loaded_and_groups_with_room() {
        let mut s = store(2);
        s.write_block(PhysicalQueueId::new(0), mk_cells(0, 0, 1))
            .unwrap();
        s.write_block(PhysicalQueueId::new(0), mk_cells(0, 1, 1))
            .unwrap();
        s.write_block(PhysicalQueueId::new(1), mk_cells(1, 0, 1))
            .unwrap();
        // Group 0 full, group 1 half, groups 2 and 3 empty.
        let ll = s.least_loaded_group();
        assert!(ll == GroupId::new(2) || ll == GroupId::new(3));
        let rooms = s.groups_with_room();
        assert!(!rooms.contains(&GroupId::new(0)));
        assert_eq!(rooms.len(), 3);
        // Empty groups come first.
        assert!(rooms[0] == GroupId::new(2) || rooms[0] == GroupId::new(3));
    }

    #[test]
    fn out_of_range_queue_is_rejected() {
        let mut s = store(2);
        let bad = PhysicalQueueId::new(999);
        assert!(matches!(
            s.write_block(bad, vec![]),
            Err(StoreError::QueueOutOfRange { .. })
        ));
        assert!(matches!(
            s.read_block(bad),
            Err(StoreError::QueueOutOfRange { .. })
        ));
    }

    #[test]
    fn ordinals_track_head_and_tail() {
        let mut s = store(8);
        let q = PhysicalQueueId::new(2);
        assert_eq!(s.next_write_ordinal(q), 0);
        s.write_block(q, mk_cells(2, 0, 4)).unwrap();
        s.write_block(q, mk_cells(2, 4, 4)).unwrap();
        assert_eq!(s.next_write_ordinal(q), 2);
        assert_eq!(s.head_ordinal(q), 0);
        s.read_block(q).unwrap();
        assert_eq!(s.head_ordinal(q), 1);
    }

    #[test]
    fn explicit_ordinal_writes_and_reads() {
        let mut s = store(8);
        let q = PhysicalQueueId::new(3);
        // Commit out of order (ordinal 1 before 0), as the CFDS DSA may do.
        s.write_block_at(q, 1, mk_cells(3, 4, 4)).unwrap();
        s.write_block_at(q, 0, mk_cells(3, 0, 4)).unwrap();
        assert!(s.has_block(q, 0));
        assert!(s.has_block(q, 1));
        assert!(!s.has_block(q, 2));
        assert_eq!(s.next_write_ordinal(q), 2);
        // FIFO read still returns the lowest ordinal first.
        let (o, b) = s.read_block(q).unwrap();
        assert_eq!(o, 0);
        assert_eq!(b[0].seq(), 0);
        let b1 = s.read_block_at(q, 1).unwrap();
        assert_eq!(b1[0].seq(), 4);
        assert!(matches!(
            s.read_block_at(q, 1),
            Err(StoreError::BlockMissing { .. })
        ));
        // Duplicate write is rejected.
        s.write_block_at(q, 5, mk_cells(3, 20, 4)).unwrap();
        assert!(matches!(
            s.write_block_at(q, 5, mk_cells(3, 20, 4)),
            Err(StoreError::BlockAlreadyPresent { .. })
        ));
    }

    #[test]
    fn forwarded_ordinals_do_not_pin_the_ring() {
        let mut s = store(8);
        let q = PhysicalQueueId::new(1);
        // Ordinal 0 is forwarded around the DRAM (never written); ordinal 1
        // commits out of order, leaving a vacant hole in front of it.
        s.write_block_at(q, 1, mk_cells(1, 4, 4)).unwrap();
        s.note_forwarded(q, 0).unwrap();
        assert!(!s.has_block(q, 0));
        assert_eq!(s.blocks_in_queue(q), 1);
        // The hole is tombstoned: the FIFO read finds ordinal 1 and, once it
        // is consumed, the queue is fully drained (nothing retained).
        let (ordinal, block) = s.read_block(q).unwrap();
        assert_eq!(ordinal, 1);
        assert_eq!(block[0].seq(), 4);
        assert_eq!(s.blocks_in_queue(q), 0);
        assert!(matches!(
            s.read_block(q),
            Err(StoreError::QueueEmpty { .. })
        ));
        // Forwarding an already-trimmed ordinal is a no-op, and out-of-range
        // queues are rejected.
        s.note_forwarded(q, 0).unwrap();
        assert!(matches!(
            s.note_forwarded(PhysicalQueueId::new(999), 0),
            Err(StoreError::QueueOutOfRange { .. })
        ));
    }

    #[test]
    fn with_total_capacity_divides_evenly() {
        let mapper = AddressMapper::new(InterleavingConfig::new(16, 4, 8).unwrap());
        let s = DramStore::with_total_capacity(mapper, 1024, 4);
        // 1024 cells / 4 cells per block = 256 blocks / 4 groups = 64.
        assert_eq!(s.group_capacity_blocks(), 64);
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(StoreError::QueueEmpty {
            queue: PhysicalQueueId::new(3)
        }
        .to_string()
        .contains("Qp3"));
        assert!(StoreError::GroupFull {
            group: GroupId::new(1),
            capacity_blocks: 7
        }
        .to_string()
        .contains('7'));
    }
}
