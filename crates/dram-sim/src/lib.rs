//! Slot-accurate banked DRAM simulator.
//!
//! This crate provides the DRAM substrate that both memory architectures of the
//! paper are built on:
//!
//! * [`SdramChip`] — a single-/multi-chip SDRAM bandwidth model used for the
//!   introduction's DRAM-only baseline (peak vs. worst-case guaranteed
//!   bandwidth, diminishing returns of wider buses).
//! * [`Bank`] / [`BankArray`] — per-bank busy/idle timing state machines with
//!   conflict detection. A bank that is accessed again before its random access
//!   time has elapsed reports a [`BankConflict`].
//! * [`AddressMapper`] — the block-cyclic interleaving of §5.1 / Figure 6:
//!   banks are organised in `G` groups of `B/b` banks, each group holds a fixed
//!   set of physical queues and consecutive `b`-cell blocks of a queue rotate
//!   round-robin over the banks of its group.
//! * [`DramStore`] — per-physical-queue block storage with per-group capacity
//!   accounting (used to study DRAM fragmentation, §6).
//!
//! # Example
//!
//! ```
//! use dram_sim::{AddressMapper, BankArray, InterleavingConfig};
//! use pktbuf_model::PhysicalQueueId;
//!
//! // 256 banks, groups of 8 (B = 32, b = 4), 512 physical queues.
//! let cfg = InterleavingConfig::new(256, 8, 512).unwrap();
//! let mapper = AddressMapper::new(cfg);
//! let q = PhysicalQueueId::new(17);
//!
//! // Consecutive blocks of the same queue land on different banks of the
//! // same group, so B/b consecutive accesses never conflict.
//! let b0 = mapper.bank_for(q, 0);
//! let b1 = mapper.bank_for(q, 1);
//! assert_ne!(b0, b1);
//! assert_eq!(mapper.group_of_bank(b0), mapper.group_of_bank(b1));
//!
//! let mut banks = BankArray::new(256, 32);
//! banks.start_access(b0, 0).unwrap();
//! banks.start_access(b1, 4).unwrap();
//! assert!(banks.start_access(b0, 8).is_err()); // still busy until slot 32
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod array;
mod bank;
mod chip;
mod mapping;
mod request;
mod stats;
mod store;

pub use array::BankArray;
pub use bank::{Bank, BankConflict, BankState};
pub use chip::{MultiChipConfig, SdramChip, SdramTimingCycles};
pub use mapping::{AddressMapper, DecodedAddress, InterleavingConfig, MappingError};
pub use request::{AccessKind, BankId, DramRequest, GroupId};
pub use stats::DramStats;
pub use store::{DramStore, StoreError};
