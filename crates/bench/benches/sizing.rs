//! Criterion micro-benchmark: cost of the analytical sizing and technology
//! evaluation routines (they are called thousands of times by the figure
//! sweeps and the Figure 11 binary search).

use cacti_lite::ProcessNode;
use criterion::{criterion_group, criterion_main, Criterion};
use pktbuf_model::{CfdsConfig, LineRate};
use sim::techeval::{cfds_point, max_queues_meeting_target, rads_point};

fn bench_sizing(c: &mut Criterion) {
    let node = ProcessNode::node_130nm();
    let mut c = c.benchmark_group("sizing");
    c.sample_size(10);
    c.measurement_time(std::time::Duration::from_secs(3));
    c.bench_function("rads_point_oc3072", |b| {
        b.iter(|| rads_point(LineRate::Oc3072, 512, 32, 15_873, &node));
    });
    let cfg = CfdsConfig::builder()
        .num_queues(512)
        .granularity(4)
        .rads_granularity(32)
        .num_banks(256)
        .build()
        .unwrap();
    c.bench_function("cfds_point_oc3072_b4", |b| {
        b.iter(|| cfds_point(&cfg, cfg.min_lookahead(), &node));
    });
    c.bench_function("fig11_max_queues_cfds_b4", |b| {
        b.iter(|| max_queues_meeting_target(LineRate::Oc3072, 4, 32, 256, &node));
    });
    c.finish();
}

criterion_group!(benches, bench_sizing);
criterion_main!(benches);
