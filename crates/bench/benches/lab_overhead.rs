//! Criterion micro-benchmark: dispatch overhead of the `LabRunner` /
//! `ExperimentSpec` abstraction versus driving `SimulationEngine` directly
//! with the same scenario. Guards against the declarative layer costing
//! simulation throughput: per slot the runner should add only setup noise
//! (expansion, boxing, one thread hop), not per-slot work.

use criterion::{criterion_group, criterion_main, Criterion};
use sim::lab::LabRunner;
use sim::scenario::{DesignKind, Scenario, Workload};
use sim::spec::{ExperimentSpec, Sweep};
use sim::SimulationEngine;

const SLOTS: u64 = 8_192;

fn scenario() -> Scenario {
    Scenario {
        design: DesignKind::Cfds,
        workload: Workload::AdversarialRoundRobin,
        num_queues: 32,
        granularity: 4,
        rads_granularity: 16,
        num_banks: 64,
        preload_cells_per_queue: 0,
        arrival_slots: SLOTS,
        seed: 1,
        ..Scenario::small_cfds()
    }
}

fn spec() -> ExperimentSpec {
    let s = scenario();
    ExperimentSpec::builder()
        .name("lab-overhead")
        .designs([s.design])
        .workloads([s.workload])
        .num_queues(Sweep::fixed(s.num_queues as u64))
        .granularity(Sweep::fixed(s.granularity as u64))
        .rads_granularity(Sweep::fixed(s.rads_granularity as u64))
        .num_banks(Sweep::fixed(s.num_banks as u64))
        .arrival_slots(s.arrival_slots)
        .seeds([s.seed])
        .build()
        .expect("the overhead spec is valid")
}

fn bench_lab_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("lab_overhead");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));

    // Baseline: one scenario driven straight through the engine.
    group.bench_function("engine_direct", |b| {
        b.iter(|| {
            let report = scenario().run();
            assert!(report.stats.grants > 0);
            report.stats.grants
        });
    });

    // Same run through the full declarative stack, single worker.
    group.bench_function("lab_runner_1_thread", |b| {
        let spec = spec();
        let runner = LabRunner::new().with_threads(1);
        b.iter(|| {
            let report = runner.run(&spec).expect("spec runs");
            assert_eq!(report.runs.len(), 1);
            report.aggregate.total_grants
        });
    });

    group.finish();
}

fn bench_engine_reference(c: &mut Criterion) {
    // Reference point: the engine without even the scenario layer, to see
    // what the scenario convenience itself costs.
    let mut group = c.benchmark_group("engine_reference");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("engine_raw", |b| {
        b.iter(|| {
            let s = scenario();
            let mut buffer = s.build_buffer();
            let mut arrivals = traffic::UniformArrivals::new(32, 0.9, 1);
            let mut requests = traffic::AdversarialRoundRobin::new(32);
            let report =
                SimulationEngine::new(buffer.as_mut()).run(&mut arrivals, &mut requests, SLOTS);
            assert!(report.stats.grants > 0);
            report.stats.grants
        });
    });
    group.finish();
}

criterion_group!(benches, bench_lab_overhead, bench_engine_reference);
criterion_main!(benches);
