//! Criterion micro-benchmark: overhead of the queue-renaming layer
//! (allocation, per-block bookkeeping, release) under a hot-queue pattern.

use cfds::RenamingTable;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dram_sim::GroupId;
use pktbuf_model::LogicalQueueId;

fn bench_renaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("renaming");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for blocks in [1_000usize, 10_000] {
        group.bench_with_input(
            BenchmarkId::new("hot_queue_write_read", blocks),
            &blocks,
            |b, &n| {
                b.iter(|| {
                    let mut table = RenamingTable::new(512, 1024, 32);
                    let preferred: Vec<GroupId> = (0..32).map(GroupId::new).collect();
                    let q = LogicalQueueId::new(7);
                    for _ in 0..n {
                        let _ = table.physical_for_write(q, |_| true, &preferred).unwrap();
                        table.note_block_written(q);
                    }
                    for _ in 0..n {
                        table.physical_for_read(q).unwrap();
                        table.note_block_read(q);
                    }
                    table.allocations()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_renaming);
criterion_main!(benches);
