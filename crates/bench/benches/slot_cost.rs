//! Criterion micro-benchmark: per-slot simulation cost of the three designs
//! (E10). Useful to keep the simulator fast enough for the long validation
//! runs.
//!
//! Three views per design:
//!
//! * `slot_cost/*` — preloaded adversarial drain (requests only), the
//!   historical measurement;
//! * `slot_cost_live/*` — live arrivals plus the round-robin drain, so the
//!   tail path (arena, writebacks, DRAM scheduler submissions) is costed
//!   alongside the head path;
//! * `slot_cost_batch/*` — the same live workload through the fused
//!   `step_batch` loops in 256-slot chunks, isolating what batching buys
//!   over the per-slot `step` calls of `slot_cost_live`.
//!
//! The end-to-end number (engine + generators, wall-clock slots/sec) lives in
//! `pktbuf-lab bench` / `BENCH_hotpath.json`; this bench isolates per-design
//! `step()` cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pktbuf::{CfdsBuffer, DramOnlyBuffer, GrantSink, PacketBuffer, RadsBuffer};
use pktbuf_model::{Cell, CfdsConfig, LineRate, LogicalQueueId, RadsConfig};
use sim::GeneratorSource;
use traffic::{preload_cells, AdversarialRoundRobin, RequestGenerator};

fn rads_cfg(q: usize) -> RadsConfig {
    RadsConfig {
        line_rate: LineRate::Oc3072,
        num_queues: q,
        granularity: 16,
        lookahead: None,
        dram: Default::default(),
    }
}

fn cfds_cfg(q: usize) -> CfdsConfig {
    CfdsConfig::builder()
        .line_rate(LineRate::Oc3072)
        .num_queues(q)
        .granularity(4)
        .rads_granularity(16)
        .num_banks(64)
        .build()
        .unwrap()
}

fn drive(buf: &mut dyn PacketBuffer, requests: &mut AdversarialRoundRobin, slots: u64) {
    for t in 0..slots {
        let request = requests.next(t, &|q: LogicalQueueId| buf.requestable_cells(q));
        buf.step(None, request);
    }
}

/// Drives one cell arrival every other slot plus the round-robin drain.
fn drive_live(buf: &mut dyn PacketBuffer, requests: &mut AdversarialRoundRobin, slots: u64) {
    let q = buf.num_queues() as u64;
    let mut seqs = vec![0u64; q as usize];
    for t in 0..slots {
        let arrival = if t % 2 == 0 {
            let qi = ((t / 2) % q) as usize;
            let cell = Cell::new(LogicalQueueId::new(qi as u32), seqs[qi], t);
            seqs[qi] += 1;
            Some(cell)
        } else {
            None
        };
        let request = requests.next(t, &|queue: LogicalQueueId| buf.requestable_cells(queue));
        buf.step(arrival, request);
    }
}

fn bench_slot_cost_live(c: &mut Criterion) {
    let mut group = c.benchmark_group("slot_cost_live");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for q in [16usize, 64] {
        group.bench_with_input(BenchmarkId::new("dram_only", q), &q, |b, &q| {
            b.iter(|| {
                let mut buf = DramOnlyBuffer::new(rads_cfg(q));
                drive_live(&mut buf, &mut AdversarialRoundRobin::new(q), 4_096);
            });
        });
        group.bench_with_input(BenchmarkId::new("rads", q), &q, |b, &q| {
            b.iter(|| {
                let mut buf = RadsBuffer::new(rads_cfg(q));
                drive_live(&mut buf, &mut AdversarialRoundRobin::new(q), 4_096);
            });
        });
        group.bench_with_input(BenchmarkId::new("cfds", q), &q, |b, &q| {
            b.iter(|| {
                let mut buf = CfdsBuffer::new(cfds_cfg(q));
                drive_live(&mut buf, &mut AdversarialRoundRobin::new(q), 4_096);
            });
        });
    }
    group.finish();
}

/// Drives the same live workload as `drive_live` through `step_batch` in
/// 256-slot chunks: the per-design cost of the fused batch loop, to compare
/// against the per-slot `slot_cost_live` numbers.
fn drive_live_batch<B: PacketBuffer>(buf: &mut B, mut requests: AdversarialRoundRobin, slots: u64) {
    let q = buf.num_queues() as u64;
    let mut seqs = vec![0u64; q as usize];
    // The exact engine-side adapter, so the bench measures the production
    // probe chain.
    let mut source = GeneratorSource(&mut requests);
    let mut sink = GrantSink::new(false);
    let mut ring: Vec<Option<Cell>> = vec![None; 256];
    let mut t = 0u64;
    while t < slots {
        let len = 256.min((slots - t) as usize);
        let chunk = &mut ring[..len];
        for (i, slot) in chunk.iter_mut().enumerate() {
            let at = t + i as u64;
            *slot = if at.is_multiple_of(2) {
                let qi = ((at / 2) % q) as usize;
                let cell = Cell::new(LogicalQueueId::new(qi as u32), seqs[qi], at);
                seqs[qi] += 1;
                Some(cell)
            } else {
                None
            };
        }
        buf.step_batch(chunk, &mut source, &mut sink);
        t += len as u64;
    }
}

fn bench_slot_cost_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("slot_cost_batch");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for q in [16usize, 64] {
        group.bench_with_input(BenchmarkId::new("dram_only", q), &q, |b, &q| {
            b.iter(|| {
                let mut buf = DramOnlyBuffer::new(rads_cfg(q));
                drive_live_batch(&mut buf, AdversarialRoundRobin::new(q), 4_096);
            });
        });
        group.bench_with_input(BenchmarkId::new("rads", q), &q, |b, &q| {
            b.iter(|| {
                let mut buf = RadsBuffer::new(rads_cfg(q));
                drive_live_batch(&mut buf, AdversarialRoundRobin::new(q), 4_096);
            });
        });
        group.bench_with_input(BenchmarkId::new("cfds", q), &q, |b, &q| {
            b.iter(|| {
                let mut buf = CfdsBuffer::new(cfds_cfg(q));
                drive_live_batch(&mut buf, AdversarialRoundRobin::new(q), 4_096);
            });
        });
    }
    group.finish();
}

fn bench_slot_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("slot_cost");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for q in [16usize, 64] {
        group.bench_with_input(BenchmarkId::new("dram_only", q), &q, |b, &q| {
            b.iter(|| {
                let mut buf = DramOnlyBuffer::new(rads_cfg(q));
                for (queue, cells) in preload_cells(q, 64) {
                    buf.preload(queue, cells);
                }
                drive(&mut buf, &mut AdversarialRoundRobin::new(q), 4_096);
            });
        });
        group.bench_with_input(BenchmarkId::new("rads", q), &q, |b, &q| {
            b.iter(|| {
                let mut buf = RadsBuffer::new(rads_cfg(q));
                for (queue, cells) in preload_cells(q, 64) {
                    buf.preload_dram(queue, cells);
                }
                drive(&mut buf, &mut AdversarialRoundRobin::new(q), 4_096);
            });
        });
        group.bench_with_input(BenchmarkId::new("cfds", q), &q, |b, &q| {
            b.iter(|| {
                let mut buf = CfdsBuffer::new(cfds_cfg(q));
                for (queue, cells) in preload_cells(q, 64) {
                    buf.preload_dram(queue, cells);
                }
                drive(&mut buf, &mut AdversarialRoundRobin::new(q), 4_096);
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_slot_cost,
    bench_slot_cost_live,
    bench_slot_cost_batch
);
criterion_main!(benches);
