//! Criterion micro-benchmark: cost of one DSA selection as a function of the
//! Requests-Register occupancy (the software analogue of Table 2's scheduling
//! time discussion).

use cfds::{DramSchedulerSubsystem, DsaPolicy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dram_sim::{AddressMapper, InterleavingConfig};
use pktbuf_model::PhysicalQueueId;

fn bench_dsa_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsa_select");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for rr_fill in [16usize, 64, 256, 1024] {
        group.bench_with_input(
            BenchmarkId::new("oldest_first", rr_fill),
            &rr_fill,
            |b, &n| {
                b.iter(|| {
                    let mapper = AddressMapper::new(InterleavingConfig::new(256, 8, 1024).unwrap());
                    let mut dss = DramSchedulerSubsystem::new(mapper, 8, DsaPolicy::OldestFirst);
                    for i in 0..n {
                        dss.submit_read(PhysicalQueueId::new((i % 1024) as u32), i as u64);
                    }
                    let mut issued = 0;
                    let mut t = 0u64;
                    while issued < n {
                        if dss.issue(t).is_some() {
                            issued += 1;
                        }
                        t += 4;
                    }
                    issued
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dsa_select);
criterion_main!(benches);
