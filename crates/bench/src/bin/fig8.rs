//! Figure 8: RADS h-SRAM access time and area as a function of the lookahead,
//! for the global CAM and the time-multiplexed unified linked list, at OC-768
//! (Q = 128, B = 8) and OC-3072 (Q = 512, B = 32).

use bench::{lookahead_sweep, oc3072_parameters, oc768_parameters};
use cacti_lite::ProcessNode;
use pktbuf_model::LineRate;
use sim::report::{format_bytes, TextTable};
use sim::techeval::rads_point;
use sram_buf::SramImplKind;

fn panel(rate: LineRate, q: usize, big_b: usize, node: &ProcessNode) {
    println!(
        "-- {rate}: Q = {q}, B = {big_b} (slot = {:.1} ns) --\n",
        rate.slot_duration().as_ns()
    );
    let mut table = TextTable::new(vec![
        "lookahead (slots)",
        "h-SRAM size",
        "CAM access (ns)",
        "CAM area (cm2)",
        "LL time-mux access (ns)",
        "LL time-mux area (cm2)",
    ]);
    for lookahead in lookahead_sweep(q, big_b, 10) {
        let p = rads_point(rate, q, big_b, lookahead, node);
        let cam = p.head_impl(SramImplKind::GlobalCam);
        let ll = p.head_impl(SramImplKind::UnifiedLinkedListTimeMux);
        table.push_row(vec![
            format!("{lookahead}"),
            format_bytes((p.head_sram_cells * 64) as f64),
            format!("{:.2}", cam.access_time_ns),
            format!("{:.3}", cam.area_cm2),
            format!("{:.2}", ll.access_time_ns),
            format!("{:.3}", ll.area_cm2),
        ]);
    }
    println!("{}", table.render());
}

fn main() {
    let node = ProcessNode::node_130nm();
    println!("== Figure 8: RADS SRAM cost vs. lookahead (0.13 um) ==\n");
    let (rate768, q768, b768) = oc768_parameters();
    panel(rate768, q768, b768, &node);
    let (rate3072, q3072, b3072, _) = oc3072_parameters();
    panel(rate3072, q3072, b3072, &node);
    println!("Paper shape: OC-768 meets its 12.8 ns slot easily with ~0.1 cm2; at OC-3072 no");
    println!("implementation reaches the 3.2 ns slot and the areas approach or exceed 1 cm2.");
}
