//! Figure 8: RADS h-SRAM access time and area as a function of the lookahead,
//! for the global CAM and the time-multiplexed unified linked list, at OC-768
//! (Q = 128, B = 8) and OC-3072 (Q = 512, B = 32).
//!
//! Thin wrapper: the experiment is defined once in [`bench::paper::fig8`]
//! (also reachable as `pktbuf-lab paper fig8`).

fn main() {
    bench::paper::fig8();
}
