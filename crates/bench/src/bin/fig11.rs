//! Figure 11: the maximum number of queues each configuration can support at
//! OC-3072 while keeping the head-SRAM access time within the 3.2 ns slot
//! (using the maximum lookahead, i.e. the smallest SRAM).

use cacti_lite::ProcessNode;
use pktbuf_model::LineRate;
use sim::report::TextTable;
use sim::techeval::max_queues_meeting_target;

fn main() {
    let node = ProcessNode::node_130nm();
    println!(
        "== Figure 11: maximum number of queues meeting the OC-3072 access-time constraint ==\n"
    );
    let mut table = TextTable::new(vec!["b", "design", "max queues"]);
    let mut rads_max = 0usize;
    let mut best_cfds = 0usize;
    for b in [32usize, 16, 8, 4, 2, 1] {
        let design = if b == 32 { "RADS" } else { "CFDS" };
        let qmax = max_queues_meeting_target(LineRate::Oc3072, b, 32, 256, &node);
        if b == 32 {
            rads_max = qmax;
        } else {
            best_cfds = best_cfds.max(qmax);
        }
        table.push_row(vec![format!("{b}"), design.to_string(), format!("{qmax}")]);
    }
    println!("{}", table.render());
    println!(
        "CFDS supports {:.1}x more queues than RADS at its best granularity ({} vs {}).",
        best_cfds as f64 / rads_max.max(1) as f64,
        best_cfds,
        rads_max
    );
    println!("Paper: roughly 6x (up to ~850 physical queues vs ~140 for RADS).");
}
