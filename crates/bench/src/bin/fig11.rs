//! Figure 11: the maximum number of queues each configuration can support at
//! OC-3072 while keeping the head-SRAM access time within the 3.2 ns slot
//! (using the maximum lookahead, i.e. the smallest SRAM).
//!
//! Thin wrapper: the experiment is defined once in [`bench::paper::fig11`]
//! (also reachable as `pktbuf-lab paper fig11`).

fn main() {
    bench::paper::fig11();
}
