//! Table 2: Requests-Register size and the time available to schedule one
//! request, for OC-768 and OC-3072, as the CFDS granularity b varies.
//!
//! Thin wrapper: the experiment is defined once in [`bench::paper::table2`]
//! (also reachable as `pktbuf-lab paper table2`).

fn main() {
    bench::paper::table2();
}
