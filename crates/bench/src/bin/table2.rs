//! Table 2: Requests-Register size and the time available to schedule one
//! request, for OC-768 and OC-3072, as the CFDS granularity b varies.

use cfds::sizing::{rr_size, scheduling_time_ns};
use pktbuf_model::{CfdsConfig, LineRate};
use sim::report::TextTable;

fn row(rate: LineRate, q: usize, big_b: usize, m: usize) {
    println!("-- {rate}: Q = {q}, B = {big_b}, M = {m} --\n");
    let mut table = TextTable::new(vec!["b", "RR size (entries)", "scheduling time (ns)"]);
    for b in [32usize, 16, 8, 4, 2, 1] {
        if b > big_b || !big_b.is_multiple_of(b) || !m.is_multiple_of(big_b / b) {
            continue;
        }
        let cfg = CfdsConfig::builder()
            .line_rate(rate)
            .num_queues(q)
            .granularity(b)
            .rads_granularity(big_b)
            .num_banks(m)
            .build()
            .expect("valid configuration");
        table.push_row(vec![
            format!("{b}"),
            format!("{}", rr_size(&cfg)),
            format!("{:.1}", scheduling_time_ns(&cfg)),
        ]);
    }
    println!("{}", table.render());
}

fn main() {
    println!("== Table 2: Requests Register size and scheduling time ==\n");
    row(LineRate::Oc768, 128, 8, 256);
    row(LineRate::Oc3072, 512, 32, 256);
    println!("Paper (OC-3072): RR = 0, 8, 64, 256, 1024, 4096 for b = 32…1;");
    println!("our closed form matches for b <= 8 and reports the conservative bound at b = 16.");
    println!("Reference point: the Alpha 21264 selects from a 20-entry window in ~1 ns (0.35 um).");
}
