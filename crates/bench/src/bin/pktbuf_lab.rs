//! `pktbuf-lab`: the single command line for every experiment in this
//! repository.
//!
//! Experiments are *data*: a serializable [`ExperimentSpec`] (designs ×
//! workloads × swept parameters × seeds) executed by a multi-threaded
//! [`LabRunner`]. The legacy one-off binaries (`fig8`, `validate`, …) remain
//! as thin wrappers over `pktbuf-lab paper <name>`.
//!
//! ```text
//! pktbuf-lab run   --spec lab.json [--threads N] [--json out.json] [--csv out.csv]
//! pktbuf-lab run   --designs cfds --workloads bursty --queues 32 --slots 20000
//! pktbuf-lab sweep --designs rads,cfds --workloads all --queues 64..1024*2 -b 1,2,4,8
//! pktbuf-lab paper <fig8|fig10|fig11|table2|validate|dram_only|fragmentation|ablation_dsa>
//! pktbuf-lab spec  # print a template spec to adapt
//! ```

use bench::cli::{
    parse_int, parse_list, parse_sweep, read_spec_text, write_artifact, OutputOptions,
};
use serde::{Serialize, Serializer};
use sim::clos::{ClosLabReport, ClosSpec, DispatchChoice, ObsScenario, TransportScenario};
use sim::fabric::{ArbiterChoice, FabricDesign, FabricLabReport, FabricSpec, FabricWorkload};
use sim::lab::{ExperimentReport, LabRunner};
use sim::report::TextTable;
use sim::scenario::{DesignKind, Workload};
use sim::spec::{ExperimentSpec, Sweep};
use sim::{FaultEvent, FaultKind, FaultPlan, LinkBoundary, RecoveryReport, TransportReport};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((command, rest)) => (command.as_str(), rest),
        None => {
            print_usage();
            return ExitCode::from(2);
        }
    };
    let result = match command {
        "run" => run_command(rest, false),
        "sweep" => run_command(rest, true),
        "bench" => bench_command(rest),
        "fabric" => fabric_command(rest),
        "clos" => clos_command(rest),
        "analyze" => analyze_command(rest),
        "paper" => paper_command(rest),
        "spec" => {
            println!("{}", template_spec().to_json());
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command {other:?} (try `pktbuf-lab help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("pktbuf-lab: {message}");
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    println!(
        "pktbuf-lab — declarative packet-buffer experiments

USAGE:
    pktbuf-lab run    [SPEC FLAGS] [OUTPUT FLAGS]  execute a spec (file or inline flags)
    pktbuf-lab sweep  [SPEC FLAGS] [OUTPUT FLAGS]  same, and print the per-run table
    pktbuf-lab fabric [FABRIC FLAGS]               run N×N VOQ switch-fabric experiments
    pktbuf-lab clos   [CLOS FLAGS]                 run three-stage Clos fabric experiments
    pktbuf-lab bench  [BENCH FLAGS]                run the hot-path benchmark suite
    pktbuf-lab analyze [ANALYZE FLAGS]             check the source-level invariants
    pktbuf-lab paper  <ARTEFACT>                   regenerate a paper artefact
    pktbuf-lab spec                                print a template spec JSON

ANALYZE FLAGS (static invariant checker: hot-path allocation/panic freedom,
report determinism, cross-crate dispatch sync; rules and waiver syntax are
documented in crates/analysis and README 'Static analysis'; exits non-zero
on any unwaived error-severity diagnostic):
    --root <DIR>             workspace root to scan            (default .)
    --config <FILE>          rule config                       (default <root>/analysis.toml)
    --json <FILE>            write the diagnostics artifact ('-' = stdout)
    --show-waived            also print findings suppressed by waivers

FABRIC FLAGS (whole-router runs: per-port packet buffers + crossbar arbiter +
rate-limited egress; sweepable axes accept the same sweep syntax as below):
    --spec <FILE>            read a fabric spec from JSON ('-' = stdin); flags override it
    --print-spec             print the resulting spec as JSON and exit (save to adapt)
    --smoke                  run the acceptance gate suite (16×16 CFDS incast +
                             uniform at 95% load, both arbiters): fails unless every
                             run is zero-loss and iSLIP sustains >= 90% crossbar
                             utilisation under the admissible uniform load
    --ports <SWEEP>          fabric port count N                 (default 8)
    --designs <LIST|all>     dram-only, rads, cfds, mixed        (default cfds)
    --workloads <LIST|all>   uniform, hotspot, incast, bursty    (default uniform)
    --arbiters <LIST|all>    islip, maximal                      (default islip)
    --iters <N>              iSLIP iterations per slot, 0 = auto (default 0)
    --load <SWEEP>           offered load per port, percent      (default 90)
    --egress-period <N>      slots per egress cell, 1 = line rate (default 1)
    -b/-B/--banks, --rate, --slots, --seeds, --name, --threads, --json, --csv
                             as for `run`/`sweep`

CLOS FLAGS (three-stage folded Clos: r ingress switches of radix N, m middle,
r egress, credit-flow-controlled inter-stage links; sweepable axes accept the
same sweep syntax as below):
    --spec <FILE>            read a Clos spec from JSON ('-' = stdin); flags override it
    --print-spec             print the resulting spec as JSON and exit (save to adapt)
    --smoke                  run the acceptance gate suite (the 64-port-equivalent
                             r=8, m=8 Clos of 8×8 RADS switches, spray + flow-hash
                             dispatch): fails unless every run is zero-loss and
                             conserving and flow-hash delivers zero reordered cells;
                             then re-runs the same Clos under a fixed fault plan
                             (a mid-run middle-switch death + one link flap) and
                             fails unless conservation still closes through the
                             fault ledger with bounded reordering; finally runs
                             the closed-loop recovery leg — the reliable transport
                             over a 16-port cut-through Clos, fault-free and under
                             a fixed death+flap plan — and fails unless delivery
                             is exactly-once, the transport ledger closes, and
                             goodput recovers within a bounded window
    --radix <SWEEP>          switch radix N                      (default 4)
    --ingress <SWEEP>        ingress (= egress) switches r       (default 4)
    --middle <SWEEP>         middle switches m (<= N)            (default 4)
    --designs <LIST|all>     dram-only, rads, cfds, mixed        (default rads)
    --workloads <LIST|all>   uniform, hotspot, incast, bursty    (default uniform)
    --dispatches <LIST|all>  spray, flowhash, occupancy-spray    (default spray)
    --arbiters <LIST|all>    islip, maximal                      (default islip)
    --iters <N>              iSLIP iterations per slot, 0 = auto (default 0)
    --load <SWEEP>           offered load per external port, %   (default 80)
    --link-capacity <SWEEP>  credits (= FIFO slots) per link     (default 8)
    --link-latency <N>       one-way link latency, slots         (default 1)
    --egress-period <N>      slots per egress cell, 1 = line rate (default 1)
    --workers <N>            per-stage worker threads inside each run (default 1)
    --faults <FILE>          arm a fault plan in every run: a JSON list of fault
                             events ('-' = stdin; see README 'Fault injection')
    --faults-json <FILE>     write the per-run fault ledgers as JSON ('-' = stdout)
    --transport              layer the closed-loop reliable transport over every
                             run (forces cut-through RADS granularity 1; the
                             sources self-clock, so --workloads/--load are inert)
    --recovery-json <FILE>   write the smoke recovery reports as JSON
                             ('-' = stdout; requires --smoke)
    --obs                    arm the standard deterministic probes in every run:
                             latency + occupancy histograms and series sampling
                             every 64 slots (the JSON report gains an 'obs'
                             section, the CSV its latency percentile columns;
                             the report stays worker-count-invariant)
    --series <STRIDE>        sample per-stage throughput/occupancy/stall series
                             every STRIDE slots (arms --obs if it is not)
    --series-csv <FILE>      write the per-run, per-stage series samples as CSV
                             ('-' = stdout; needs --series or --obs)
    --trace-json <FILE>      write a cell-lifecycle flight-recorder dump as
                             Chrome trace-event JSON ('-' = stdout; open in
                             ui.perfetto.dev): with --smoke, re-runs the
                             recovery leg's faulted run with the recorder
                             armed over the fault windows; otherwise arms the
                             recorder in every run and dumps the first one
    --rate, -b/-B/--banks, --slots, --seeds, --name, --threads, --json, --csv
                             as for `run`/`sweep`

BENCH FLAGS (all designs x all workloads + drain/idle showcase points, both
engines — chunked and per-slot — per point; fails if the chunked engine is
slower than per-slot anywhere, beyond a fixed 10% same-run noise floor):
    --smoke                  short runs for CI (default: >= 1M slots per run)
    --out <FILE>             write the JSON artifact (default BENCH_hotpath.json)
    --no-out                 measure and print only, write nothing
    --repeat <N>             repeat the matrix N times, keep best-of-N per entry
    --before <FILE>          embed FILE as the 'before' section and compute speedups
    --compare <FILE>         fail on a slots/sec regression vs FILE
    --max-regression <PCT>   regression tolerance (default 15)
    --tag <TAG>              append a trajectory entry (e.g. PR-4) carrying the
                             previous artifact's history forward; refuses a tag
                             that is already recorded
    --force                  allow --tag to append under an already-recorded tag

SPEC FLAGS (inline specs; every axis accepts 'v', 'v1,v2,…', 'a..b*factor', 'a..b+step'):
    --spec <FILE>            read the spec from a JSON file ('-' = stdin); other spec flags override it
    --name <NAME>            experiment name
    --designs <LIST|all>     dram-only, rads, cfds            (default cfds)
    --workloads <LIST|all>   adversarial-round-robin, uniform-random, bursty, hotspot, greedy-drain
    --rate <RATE>            oc192 | oc768 | oc3072 | <Gb/s>  (default oc3072)
    --queues <SWEEP>         logical queues Q                 (default 32)
    -b, --granularity <SWEEP>     CFDS granularity b          (default 4)
    -B, --rads-granularity <SWEEP> RADS granularity B         (default 16)
    --banks <SWEEP>          DRAM banks M                     (default 64)
    --slots <N>              live-arrival slots               (default 10000)
    --preload <N>            preloaded cells/queue instead of live arrivals
    --seeds <LIST>           RNG seeds                        (default 1)
    --record-grants          record per-grant queue logs

OUTPUT FLAGS:
    --threads <N>            worker threads (default: all cores)
    --json <FILE>            write the full report as JSON ('-' = stdout)
    --csv <FILE>             write one CSV row per run ('-' = stdout)

PAPER ARTEFACTS:
    {}",
        bench::paper::ARTEFACTS.join(", ")
    );
}

/// The template printed by `pktbuf-lab spec`: a small two-design sweep that
/// finishes quickly and demonstrates every field.
fn template_spec() -> ExperimentSpec {
    ExperimentSpec::builder()
        .name("example-sweep")
        .designs([DesignKind::Rads, DesignKind::Cfds])
        .workloads([Workload::AdversarialRoundRobin, Workload::Bursty])
        .num_queues(Sweep::list([16, 32]))
        .granularity(Sweep::fixed(4))
        .rads_granularity(Sweep::fixed(16))
        .num_banks(Sweep::fixed(64))
        .arrival_slots(5_000)
        .seeds([1, 101])
        .build()
        .expect("the template spec is valid")
}

fn bench_command(args: &[String]) -> Result<(), String> {
    use bench::hotpath::{run_bench, BenchOptions, BENCH_DEFAULT_OUT};
    let mut options = BenchOptions {
        out: Some(BENCH_DEFAULT_OUT.to_owned()),
        ..BenchOptions::default()
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--smoke" => options.smoke = true,
            "--out" => options.out = Some(value("--out")?),
            "--no-out" => options.out = None,
            "--before" => options.before = Some(value("--before")?),
            "--compare" => options.compare = Some(value("--compare")?),
            "--tag" => options.tag = Some(value("--tag")?),
            "--force" => options.force = true,
            "--repeat" => {
                let v = value("--repeat")?;
                options.repeat = Some(
                    v.parse()
                        .map_err(|_| format!("--repeat: {v:?} is not a count"))?,
                );
            }
            "--max-regression" => {
                let v = value("--max-regression")?;
                options.max_regression_pct = Some(
                    v.parse()
                        .map_err(|_| format!("--max-regression: {v:?} is not a number"))?,
                );
            }
            other => return Err(format!("unknown bench flag {other:?}")),
        }
    }
    match run_bench(&options) {
        Ok(true) => Ok(()),
        Ok(false) => Err("bench regression check failed".to_owned()),
        Err(message) => Err(message),
    }
}

fn analyze_command(args: &[String]) -> Result<(), String> {
    let mut root = ".".to_owned();
    let mut config_path: Option<String> = None;
    let mut json_out: Option<String> = None;
    let mut show_waived = false;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--root" => root = value("--root")?,
            "--config" => config_path = Some(value("--config")?),
            "--json" => json_out = Some(value("--json")?),
            "--show-waived" => show_waived = true,
            other => return Err(format!("unknown analyze flag {other:?}")),
        }
    }
    let root = std::path::PathBuf::from(root);
    let config_file =
        config_path.map_or_else(|| root.join("analysis.toml"), std::path::PathBuf::from);
    let config = analysis::load_config(&config_file)?;
    let report = analysis::analyze_workspace(&root, &config)?;
    // Machine artifact on stdout moves the human lines to stderr, exactly
    // like the run/fabric reports.
    let machine_stdout = json_out.as_deref() == Some("-");
    let emit = |line: &str| {
        if machine_stdout {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    for diag in &report.diagnostics {
        if !diag.waived || show_waived {
            emit(&diag.to_string());
        }
    }
    emit(&format!(
        "analyze: {} files, {} errors, {} warnings, {} waived",
        report.files_scanned,
        report.error_count(),
        report.warning_count(),
        report.waived_count(),
    ));
    if let Some(path) = &json_out {
        write_artifact(path, &report.to_json(), "analysis JSON report")?;
    }
    if report.error_count() > 0 {
        return Err(format!(
            "analyze found {} unwaived error(s)",
            report.error_count()
        ));
    }
    Ok(())
}

/// Crossbar utilisation the `--smoke` gate requires under the admissible
/// uniform load (the acceptance criterion of the fabric layer).
const SMOKE_MIN_UTILIZATION: f64 = 0.90;

/// Offered loads the `--smoke` gate crosses with its workloads. 95% is the
/// near-saturation point the utilisation gate runs at; 25% matters for the
/// *incast* runs: at 16 ports and 95% load the admissible incast fraction is
/// clamped to the uniform share (the matrix degenerates to uniform), while
/// at 25% the target output absorbs ~3.8× its uniform share — genuine
/// many-to-one convergence with the target still at 95% of its line rate.
const SMOKE_LOADS: [u64; 2] = [25, 95];

/// The `fabric --smoke` gate suite: the 16×16 per-port-CFDS fabric under the
/// incast and the admissible-uniform workload, both arbiters, at a
/// convergent and a near-saturation load.
fn fabric_smoke_spec() -> FabricSpec {
    FabricSpec::builder()
        .name("fabric-smoke")
        .designs([FabricDesign::Fixed(DesignKind::Cfds)])
        .workloads([FabricWorkload::Incast, FabricWorkload::Uniform])
        .arbiters(ArbiterChoice::all())
        .ports(Sweep::fixed(16))
        .load_percent(Sweep::list(SMOKE_LOADS))
        .arrival_slots(20_000)
        .build()
        .expect("the fabric smoke spec is valid")
}

fn fabric_command(args: &[String]) -> Result<(), String> {
    type FabricEdit = Box<dyn FnOnce(&mut FabricSpec) -> Result<(), String>>;
    let mut base: Option<FabricSpec> = None;
    let mut output = OutputOptions {
        threads: None,
        json: None,
        csv: None,
    };
    let mut smoke = false;
    let mut print_spec = false;
    let mut edits: Vec<FabricEdit> = Vec::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--print-spec" => print_spec = true,
            "--spec" => {
                let text = read_spec_text(&value("--spec")?)?;
                base = Some(FabricSpec::from_json(&text).map_err(|e| e.to_string())?);
            }
            "--name" => {
                let v = value("--name")?;
                edits.push(Box::new(move |s| {
                    s.name = v;
                    Ok(())
                }));
            }
            "--ports" => {
                let v = value("--ports")?;
                edits.push(Box::new(move |s| {
                    s.ports = parse_sweep(&v, "--ports")?;
                    Ok(())
                }));
            }
            "--designs" => {
                let v = value("--designs")?;
                edits.push(Box::new(move |s| {
                    s.designs = if v.eq_ignore_ascii_case("all") {
                        FabricDesign::all().to_vec()
                    } else {
                        parse_list(&v, "fabric design")?
                    };
                    Ok(())
                }));
            }
            "--workloads" => {
                let v = value("--workloads")?;
                edits.push(Box::new(move |s| {
                    s.workloads = if v.eq_ignore_ascii_case("all") {
                        FabricWorkload::all().to_vec()
                    } else {
                        parse_list(&v, "fabric workload")?
                    };
                    Ok(())
                }));
            }
            "--arbiters" => {
                let v = value("--arbiters")?;
                edits.push(Box::new(move |s| {
                    s.arbiters = if v.eq_ignore_ascii_case("all") {
                        ArbiterChoice::all().to_vec()
                    } else {
                        parse_list(&v, "arbiter")?
                    };
                    Ok(())
                }));
            }
            "--iters" => {
                let v = value("--iters")?;
                edits.push(Box::new(move |s| {
                    s.islip_iterations = parse_int(&v, "--iters")?;
                    Ok(())
                }));
            }
            "--load" => {
                let v = value("--load")?;
                edits.push(Box::new(move |s| {
                    s.load_percent = parse_sweep(&v, "--load")?;
                    Ok(())
                }));
            }
            "--egress-period" => {
                let v = value("--egress-period")?;
                edits.push(Box::new(move |s| {
                    s.egress_period = parse_int(&v, "--egress-period")?;
                    Ok(())
                }));
            }
            "--rate" => {
                let v = value("--rate")?;
                edits.push(Box::new(move |s| {
                    s.line_rate = v.parse().map_err(|e| format!("--rate: {e}"))?;
                    Ok(())
                }));
            }
            "-b" | "--granularity" => {
                let v = value("--granularity")?;
                edits.push(Box::new(move |s| {
                    s.granularity = parse_sweep(&v, "--granularity")?;
                    Ok(())
                }));
            }
            "-B" | "--rads-granularity" => {
                let v = value("--rads-granularity")?;
                edits.push(Box::new(move |s| {
                    s.rads_granularity = parse_sweep(&v, "--rads-granularity")?;
                    Ok(())
                }));
            }
            "--banks" => {
                let v = value("--banks")?;
                edits.push(Box::new(move |s| {
                    s.num_banks = parse_sweep(&v, "--banks")?;
                    Ok(())
                }));
            }
            "--slots" => {
                let v = value("--slots")?;
                edits.push(Box::new(move |s| {
                    s.arrival_slots = parse_int(&v, "--slots")?;
                    Ok(())
                }));
            }
            "--seeds" => {
                let v = value("--seeds")?;
                edits.push(Box::new(move |s| {
                    s.seeds = v
                        .split(',')
                        .map(|part| parse_int(part, "--seeds"))
                        .collect::<Result<Vec<u64>, String>>()?;
                    Ok(())
                }));
            }
            "--threads" => {
                output.threads = Some(parse_int(&value("--threads")?, "--threads")? as usize);
            }
            "--json" => output.json = Some(value("--json")?),
            "--csv" => output.csv = Some(value("--csv")?),
            other => return Err(format!("unknown fabric flag {other:?}")),
        }
    }
    let mut spec = if smoke {
        // The smoke suite is a *fixed* acceptance gate: letting spec flags
        // through would let a typo (or a well-meaning CI edit) weaken the
        // gated scenario while still reporting "gate held".
        if base.is_some() || !edits.is_empty() {
            return Err(
                "--smoke runs the fixed gate suite; drop --spec and the spec flags \
                 (--threads/--json/--csv remain available)"
                    .to_owned(),
            );
        }
        fabric_smoke_spec()
    } else {
        base.unwrap_or_else(|| {
            FabricSpec::builder()
                .build()
                .expect("the default fabric spec is valid")
        })
    };
    for edit in edits {
        edit(&mut spec)?;
    }
    spec.expand().map_err(|e| e.to_string())?;
    if print_spec {
        println!("{}", spec.to_json());
        return Ok(());
    }
    let machine_stdout = output.machine_stdout()?;
    let mut runner = LabRunner::new();
    if let Some(threads) = output.threads {
        runner = runner.with_threads(threads);
    }
    let report = runner.run_fabric(&spec).map_err(|e| e.to_string())?;
    print_fabric_summary(&report, machine_stdout);
    output.write_reports("fabric ", || report.to_json(), || report.to_csv())?;
    if smoke {
        gate_fabric_smoke(&report)?;
    }
    Ok(())
}

/// The `fabric --smoke` acceptance gates: zero lost cells everywhere, and
/// crossbar utilisation at least [`SMOKE_MIN_UTILIZATION`] on the iSLIP run
/// under the admissible uniform load.
fn gate_fabric_smoke(report: &FabricLabReport) -> Result<(), String> {
    let mut failures = Vec::new();
    for run in &report.runs {
        if !run.report.zero_loss {
            failures.push(format!(
                "run {} ({}x{} {}/{}) lost {} cells",
                run.index,
                run.scenario.ports,
                run.scenario.ports,
                run.scenario.workload,
                run.scenario.arbiter,
                run.report.lost_cells,
            ));
        }
        let is_gated_utilization = run.scenario.workload == FabricWorkload::Uniform
            && run.scenario.arbiter == ArbiterChoice::Islip
            && run.scenario.load_percent >= 90;
        if is_gated_utilization && run.report.crossbar_utilization < SMOKE_MIN_UTILIZATION {
            failures.push(format!(
                "run {}: crossbar utilisation {:.3} under admissible uniform load is \
                 below the {SMOKE_MIN_UTILIZATION} gate",
                run.index, run.report.crossbar_utilization,
            ));
        }
    }
    if failures.is_empty() {
        eprintln!(
            "fabric smoke: all {} runs zero-loss; iSLIP utilisation gate ({}+) held",
            report.runs.len(),
            SMOKE_MIN_UTILIZATION,
        );
        Ok(())
    } else {
        Err(format!("fabric smoke gate failed: {}", failures.join("; ")))
    }
}

fn print_fabric_summary(report: &FabricLabReport, to_stderr: bool) {
    let emit = |line: &str| {
        if to_stderr {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    let mut table = TextTable::new(vec![
        "run",
        "ports",
        "design",
        "workload",
        "arbiter",
        "load%",
        "seed",
        "arrivals",
        "delivered",
        "lost",
        "resident",
        "util",
        "latency",
        "zero-loss",
    ]);
    for run in &report.runs {
        let s = &run.scenario;
        let r = &run.report;
        table.push_row(vec![
            run.index.to_string(),
            s.ports.to_string(),
            s.design.to_string(),
            s.workload.to_string(),
            s.arbiter.to_string(),
            s.load_percent.to_string(),
            s.seed.to_string(),
            r.arrivals.to_string(),
            r.transmitted.to_string(),
            r.lost_cells.to_string(),
            r.resident_cells.to_string(),
            format!("{:.3}", r.crossbar_utilization),
            format!("{:.1}", r.mean_latency_slots),
            r.zero_loss.to_string(),
        ]);
    }
    emit(&table.render());
    let agg = &report.aggregate;
    emit(&format!(
        "{}: {} runs ({} skipped invalid), {} zero-loss, {} arrivals, {} delivered, \
         {} lost, {} resident, mean util {:.3}, min util {:.3}, max latency {} slots",
        report.spec.name,
        agg.runs,
        report.skipped_invalid,
        agg.zero_loss_runs,
        agg.total_arrivals,
        agg.total_transmitted,
        agg.total_lost_cells,
        agg.total_resident_cells,
        agg.mean_crossbar_utilization,
        agg.min_crossbar_utilization,
        agg.max_latency_slots,
    ));
}

/// The `clos --smoke` gate suite: the 64-port-equivalent three-stage Clos
/// (r = 8 ingress/egress switches of radix 8, m = 8 middle switches) with
/// per-port RADS buffers under the uniform workload, crossing both dispatch
/// policies with a moderate and a near-saturation load. Spray at 85% is the
/// stress point (every uplink load-balanced); flow-hash runs gate the
/// ordering guarantee on top of zero loss.
fn clos_smoke_spec() -> ClosSpec {
    ClosSpec::builder()
        .name("clos-smoke")
        .designs([FabricDesign::Fixed(DesignKind::Rads)])
        .workloads([FabricWorkload::Uniform])
        .dispatches(DispatchChoice::all())
        .radix(Sweep::fixed(8))
        .ingress_switches(Sweep::fixed(8))
        .middle_switches(Sweep::fixed(8))
        .load_percent(Sweep::list([50, 85]))
        .arrival_slots(10_000)
        .build()
        .expect("the clos smoke spec is valid")
}

/// The fixed fault plan of the `clos --smoke` degraded-mode leg: middle
/// switch 3 dies at slot 2 000 and revives 3 000 slots later (spray must
/// route around it on live credit occupancy, flow-hash must fail over), then
/// the ingress→middle link `2 → 5` flaps for 400 slots near the end of the
/// live phase (stall-and-recover, no loss).
fn clos_fault_smoke_plan() -> FaultPlan {
    FaultPlan::new([
        FaultEvent::windowed(FaultKind::MiddleDeath { switch: 3 }, 2_000, 3_000),
        FaultEvent::windowed(
            FaultKind::LinkFlap {
                boundary: LinkBoundary::IngressMiddle,
                switch: 2,
                output: 5,
            },
            6_500,
            400,
        ),
    ])
}

/// The degraded-mode leg of the `clos --smoke` gate: the same
/// 64-port-equivalent Clos as [`clos_smoke_spec`], spray + flow-hash at the
/// near-saturation load, with [`clos_fault_smoke_plan`] armed in every run.
fn clos_fault_smoke_spec() -> ClosSpec {
    ClosSpec::builder()
        .name("clos-fault-smoke")
        .designs([FabricDesign::Fixed(DesignKind::Rads)])
        .workloads([FabricWorkload::Uniform])
        .dispatches(DispatchChoice::all())
        .radix(Sweep::fixed(8))
        .ingress_switches(Sweep::fixed(8))
        .middle_switches(Sweep::fixed(8))
        .load_percent(Sweep::fixed(85))
        .arrival_slots(10_000)
        .faults(clos_fault_smoke_plan())
        .build()
        .expect("the clos fault smoke spec is valid")
}

/// Flight-recorder ring capacity (events per stage) the `--trace-json` flag
/// arms when the spec has not sized one itself: a million events per stage
/// bounds the dump at tens of megabytes while covering every cell of the
/// smoke-scale runs inside the recorded window.
const CLOS_TRACE_CAPACITY: usize = 1 << 20;

/// Renders every armed run's per-stage time-series as the `--series-csv`
/// artifact: one row per sample, identified by run index and stage.
///
/// # Errors
///
/// Fails when no run armed the series probes (`--series`/`--obs`).
fn clos_series_csv(report: &ClosLabReport) -> Result<String, String> {
    let mut table = TextTable::new(vec![
        "index",
        "stage",
        "slot",
        "transmitted",
        "occupancy",
        "credit_stall_slots",
    ]);
    let mut sampled = false;
    for run in &report.runs {
        let Some(obs) = &run.report.obs else { continue };
        for stage in &obs.stages {
            let Some(series) = &stage.series else {
                continue;
            };
            sampled = true;
            for (i, slot) in series.slots.iter().enumerate() {
                table.push_row(vec![
                    run.index.to_string(),
                    stage.stage.to_owned(),
                    slot.to_string(),
                    series.transmitted[i].to_string(),
                    series.occupancy[i].to_string(),
                    series.stalls[i].to_string(),
                ]);
            }
        }
    }
    if !sampled {
        return Err(
            "--series-csv needs armed series probes: pass --series <stride> or --obs".to_owned(),
        );
    }
    Ok(table.to_csv())
}

/// The flight-recorder leg of `clos --smoke --trace-json`: re-runs the
/// recovery leg's faulted run (the closed-loop transport under the
/// death+flap plan of [`clos_recovery_smoke_plan`]) with the recorder armed
/// over the fault windows, and renders the merged timeline as Chrome
/// trace-event JSON. The closed loop is the leg with the full event
/// vocabulary — injections, retransmissions, fault marks, egress transmits —
/// and a separate re-run keeps the gated smoke runs byte-identical to an
/// unarmed suite.
///
/// # Errors
///
/// Fails when the recovery leg is empty (it never is — the spec is fixed).
fn clos_smoke_trace(faulted: &ClosLabReport) -> Result<String, String> {
    let run = faulted
        .runs
        .first()
        .ok_or_else(|| "the recovery smoke leg produced no runs".to_owned())?;
    let mut scenario = run.scenario.clone();
    scenario.obs = Some(ObsScenario {
        trace_capacity: CLOS_TRACE_CAPACITY,
        // Bracket both fault windows of `clos_recovery_smoke_plan` (the
        // middle death at 1000..2500 and the link flap at 2800..3100) with
        // margin for the timeouts and retransmissions around them.
        trace_from_slot: 900,
        trace_to_slot: 3_300,
        ..ObsScenario::standard()
    });
    let traced = scenario.run();
    eprintln!(
        "clos smoke: re-ran {} run {} with the flight recorder armed over slots 900..=3300",
        faulted.spec.name, run.index,
    );
    traced
        .trace_json()
        .ok_or_else(|| "the traced re-run produced no recorder dump".to_owned())
}

/// One run's slice of the `--faults-json` artifact: enough scenario context
/// to identify the run, plus its full fault ledger.
struct ClosFaultRecord<'a> {
    index: usize,
    experiment: &'a str,
    dispatch: DispatchChoice,
    load_percent: u64,
    seed: u64,
    ledger: &'a sim::FaultLedger,
}

impl Serialize for ClosFaultRecord<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("ClosFaultRecord", 6)?;
        st.serialize_field("index", &self.index)?;
        st.serialize_field("experiment", &self.experiment)?;
        st.serialize_field("dispatch", &self.dispatch)?;
        st.serialize_field("load_percent", &self.load_percent)?;
        st.serialize_field("seed", &self.seed)?;
        st.serialize_field("ledger", &self.ledger)?;
        st.end()
    }
}

/// The closed-loop transport leg of the `clos --smoke` gate: a 16-port
/// cut-through Clos (r = 4 ingress/egress switches of radix 4, m = 4 middle)
/// running the default reliable transport under spray dispatch. Cut-through
/// (RADS write granularity 1) is what the transport requires fabric-wide:
/// batched writeback would park sub-batch tails as permanent residents and
/// the reliable sources would retransmit against them forever.
fn clos_transport_smoke_spec() -> ClosSpec {
    ClosSpec::builder()
        .name("clos-transport-smoke")
        .designs([FabricDesign::Fixed(DesignKind::Rads)])
        .workloads([FabricWorkload::Uniform])
        .dispatches([DispatchChoice::Spray])
        .radix(Sweep::fixed(4))
        .ingress_switches(Sweep::fixed(4))
        .middle_switches(Sweep::fixed(4))
        .load_percent(Sweep::fixed(85))
        .rads_granularity(1)
        .arrival_slots(6_000)
        .transport(TransportScenario::default())
        .build()
        .expect("the clos transport smoke spec is valid")
}

/// The fixed fault plan of the recovery leg: middle switch 1 dies at slot
/// 1 000 and revives 1 500 slots later (a quarter of the middle capacity
/// gone — in-flight cells are lost and must be retransmitted), then the
/// ingress→middle link `2 → 1` flaps for 300 slots. The last window closes
/// at slot 3 100, leaving 2 900 live slots for goodput to climb back to the
/// fault-free twin's.
fn clos_recovery_smoke_plan() -> FaultPlan {
    FaultPlan::new([
        FaultEvent::windowed(FaultKind::MiddleDeath { switch: 1 }, 1_000, 1_500),
        FaultEvent::windowed(
            FaultKind::LinkFlap {
                boundary: LinkBoundary::IngressMiddle,
                switch: 2,
                output: 1,
            },
            2_800,
            300,
        ),
    ])
}

/// The faulted twin of [`clos_transport_smoke_spec`]: same geometry, same
/// sources, same transport config, with [`clos_recovery_smoke_plan`] armed.
fn clos_recovery_fault_smoke_spec() -> ClosSpec {
    let mut spec = clos_transport_smoke_spec();
    spec.name = "clos-recovery-smoke".to_owned();
    spec.faults = clos_recovery_smoke_plan();
    spec
}

/// One paired run's slice of the `--recovery-json` artifact: the fault-free
/// and faulted transport reports side by side, the faulted run's ledger, and
/// the measured time-to-recover.
struct ClosRecoveryRecord<'a> {
    index: usize,
    dispatch: DispatchChoice,
    seed: u64,
    fault_free: Option<&'a TransportReport>,
    faulted: Option<&'a TransportReport>,
    ledger: Option<&'a sim::FaultLedger>,
    recovery: Option<RecoveryReport>,
}

impl Serialize for ClosRecoveryRecord<'_> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("ClosRecoveryRecord", 7)?;
        st.serialize_field("index", &self.index)?;
        st.serialize_field("dispatch", &self.dispatch)?;
        st.serialize_field("seed", &self.seed)?;
        st.serialize_field("fault_free", &self.fault_free)?;
        st.serialize_field("faulted", &self.faulted)?;
        st.serialize_field("ledger", &self.ledger)?;
        st.serialize_field("recovery", &self.recovery)?;
        st.end()
    }
}

/// Renders the recovery leg (fault-free twin + faulted twin, paired run by
/// run) as the pretty-JSON `--recovery-json` artifact.
fn clos_recovery_json(healthy: &ClosLabReport, faulted: &ClosLabReport) -> String {
    let records: Vec<ClosRecoveryRecord<'_>> = faulted
        .runs
        .iter()
        .map(|fault_run| {
            let twin = healthy.runs.iter().find(|h| {
                h.scenario.dispatch == fault_run.scenario.dispatch
                    && h.scenario.seed == fault_run.scenario.seed
            });
            ClosRecoveryRecord {
                index: fault_run.index,
                dispatch: fault_run.scenario.dispatch,
                seed: fault_run.scenario.seed,
                fault_free: twin.and_then(|h| h.report.transport.as_ref()),
                faulted: fault_run.report.transport.as_ref(),
                ledger: fault_run.report.faults.as_ref(),
                recovery: twin.and_then(|h| RecoveryReport::measure(&h.report, &fault_run.report)),
            }
        })
        .collect();
    serde_json::to_string_pretty(&records).expect("recovery records always serialize")
}

/// Renders every faulted run's ledger (across one or two lab reports) as the
/// pretty-JSON `--faults-json` artifact.
fn clos_fault_ledgers_json(reports: &[&ClosLabReport]) -> String {
    let records: Vec<ClosFaultRecord<'_>> = reports
        .iter()
        .flat_map(|report| {
            report.runs.iter().filter_map(|run| {
                run.report.faults.as_ref().map(|ledger| ClosFaultRecord {
                    index: run.index,
                    experiment: &report.spec.name,
                    dispatch: run.scenario.dispatch,
                    load_percent: run.scenario.load_percent,
                    seed: run.scenario.seed,
                    ledger,
                })
            })
        })
        .collect();
    serde_json::to_string_pretty(&records).expect("fault ledgers always serialize")
}

fn clos_command(args: &[String]) -> Result<(), String> {
    type ClosEdit = Box<dyn FnOnce(&mut ClosSpec) -> Result<(), String>>;
    let mut base: Option<ClosSpec> = None;
    let mut output = OutputOptions::default();
    let mut smoke = false;
    let mut print_spec = false;
    let mut faults_json: Option<String> = None;
    let mut recovery_json: Option<String> = None;
    let mut series_csv: Option<String> = None;
    let mut trace_json: Option<String> = None;
    let mut edits: Vec<ClosEdit> = Vec::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--smoke" => smoke = true,
            "--print-spec" => print_spec = true,
            "--spec" => {
                let text = read_spec_text(&value("--spec")?)?;
                base = Some(ClosSpec::from_json(&text).map_err(|e| e.to_string())?);
            }
            "--name" => {
                let v = value("--name")?;
                edits.push(Box::new(move |s| {
                    s.name = v;
                    Ok(())
                }));
            }
            "--radix" => {
                let v = value("--radix")?;
                edits.push(Box::new(move |s| {
                    s.radix = parse_sweep(&v, "--radix")?;
                    Ok(())
                }));
            }
            "--ingress" => {
                let v = value("--ingress")?;
                edits.push(Box::new(move |s| {
                    s.ingress_switches = parse_sweep(&v, "--ingress")?;
                    Ok(())
                }));
            }
            "--middle" => {
                let v = value("--middle")?;
                edits.push(Box::new(move |s| {
                    s.middle_switches = parse_sweep(&v, "--middle")?;
                    Ok(())
                }));
            }
            "--designs" => {
                let v = value("--designs")?;
                edits.push(Box::new(move |s| {
                    s.designs = if v.eq_ignore_ascii_case("all") {
                        FabricDesign::all().to_vec()
                    } else {
                        parse_list(&v, "fabric design")?
                    };
                    Ok(())
                }));
            }
            "--workloads" => {
                let v = value("--workloads")?;
                edits.push(Box::new(move |s| {
                    s.workloads = if v.eq_ignore_ascii_case("all") {
                        FabricWorkload::all().to_vec()
                    } else {
                        parse_list(&v, "fabric workload")?
                    };
                    Ok(())
                }));
            }
            "--dispatches" => {
                let v = value("--dispatches")?;
                edits.push(Box::new(move |s| {
                    s.dispatches = if v.eq_ignore_ascii_case("all") {
                        DispatchChoice::all().to_vec()
                    } else {
                        parse_list(&v, "dispatch policy")?
                    };
                    Ok(())
                }));
            }
            "--arbiters" => {
                let v = value("--arbiters")?;
                edits.push(Box::new(move |s| {
                    s.arbiters = if v.eq_ignore_ascii_case("all") {
                        ArbiterChoice::all().to_vec()
                    } else {
                        parse_list(&v, "arbiter")?
                    };
                    Ok(())
                }));
            }
            "--iters" => {
                let v = value("--iters")?;
                edits.push(Box::new(move |s| {
                    s.islip_iterations = parse_int(&v, "--iters")?;
                    Ok(())
                }));
            }
            "--load" => {
                let v = value("--load")?;
                edits.push(Box::new(move |s| {
                    s.load_percent = parse_sweep(&v, "--load")?;
                    Ok(())
                }));
            }
            "--link-capacity" => {
                let v = value("--link-capacity")?;
                edits.push(Box::new(move |s| {
                    s.link_capacity = parse_sweep(&v, "--link-capacity")?;
                    Ok(())
                }));
            }
            "--link-latency" => {
                let v = value("--link-latency")?;
                edits.push(Box::new(move |s| {
                    s.link_latency = parse_int(&v, "--link-latency")?;
                    Ok(())
                }));
            }
            "--egress-period" => {
                let v = value("--egress-period")?;
                edits.push(Box::new(move |s| {
                    s.egress_period = parse_int(&v, "--egress-period")?;
                    Ok(())
                }));
            }
            "--workers" => {
                let v = value("--workers")?;
                edits.push(Box::new(move |s| {
                    s.workers = parse_int(&v, "--workers")?;
                    Ok(())
                }));
            }
            "--rate" => {
                let v = value("--rate")?;
                edits.push(Box::new(move |s| {
                    s.line_rate = v.parse().map_err(|e| format!("--rate: {e}"))?;
                    Ok(())
                }));
            }
            "-b" | "--granularity" => {
                let v = value("--granularity")?;
                edits.push(Box::new(move |s| {
                    s.granularity = parse_int(&v, "--granularity")?;
                    Ok(())
                }));
            }
            "-B" | "--rads-granularity" => {
                let v = value("--rads-granularity")?;
                edits.push(Box::new(move |s| {
                    s.rads_granularity = parse_int(&v, "--rads-granularity")?;
                    Ok(())
                }));
            }
            "--banks" => {
                let v = value("--banks")?;
                edits.push(Box::new(move |s| {
                    s.num_banks = parse_int(&v, "--banks")?;
                    Ok(())
                }));
            }
            "--slots" => {
                let v = value("--slots")?;
                edits.push(Box::new(move |s| {
                    s.arrival_slots = parse_int(&v, "--slots")?;
                    Ok(())
                }));
            }
            "--seeds" => {
                let v = value("--seeds")?;
                edits.push(Box::new(move |s| {
                    s.seeds = v
                        .split(',')
                        .map(|part| parse_int(part, "--seeds"))
                        .collect::<Result<Vec<u64>, String>>()?;
                    Ok(())
                }));
            }
            "--faults" => {
                let text = read_spec_text(&value("--faults")?)?;
                let plan: FaultPlan =
                    serde_json::from_str(&text).map_err(|e| format!("--faults: {e}"))?;
                edits.push(Box::new(move |s| {
                    s.faults = plan;
                    Ok(())
                }));
            }
            "--faults-json" => faults_json = Some(value("--faults-json")?),
            "--transport" => {
                edits.push(Box::new(|s| {
                    s.transport = Some(TransportScenario::default());
                    s.rads_granularity = 1;
                    Ok(())
                }));
            }
            "--recovery-json" => recovery_json = Some(value("--recovery-json")?),
            "--obs" => {
                edits.push(Box::new(|s| {
                    s.obs.get_or_insert_with(ObsScenario::standard);
                    Ok(())
                }));
            }
            "--series" => {
                let v = value("--series")?;
                edits.push(Box::new(move |s| {
                    let stride = parse_int(&v, "--series")?;
                    if stride == 0 {
                        return Err("--series needs a stride of at least 1 slot".to_owned());
                    }
                    let o = s.obs.get_or_insert_with(ObsScenario::standard);
                    o.series_stride = stride;
                    o.series_capacity = o.series_capacity.max(1024);
                    Ok(())
                }));
            }
            "--series-csv" => series_csv = Some(value("--series-csv")?),
            "--trace-json" => trace_json = Some(value("--trace-json")?),
            "--threads" => {
                output.threads = Some(parse_int(&value("--threads")?, "--threads")? as usize);
            }
            "--json" => output.json = Some(value("--json")?),
            "--csv" => output.csv = Some(value("--csv")?),
            other => return Err(format!("unknown clos flag {other:?}")),
        }
    }
    let mut spec = if smoke {
        // The smoke suite is a *fixed* acceptance gate, exactly like
        // `fabric --smoke`: spec flags cannot weaken the gated scenario.
        if base.is_some() || !edits.is_empty() {
            return Err(
                "--smoke runs the fixed gate suite; drop --spec and the spec flags \
                 (--threads/--json/--csv remain available)"
                    .to_owned(),
            );
        }
        clos_smoke_spec()
    } else {
        base.unwrap_or_else(|| {
            ClosSpec::builder()
                .build()
                .expect("the default clos spec is valid")
        })
    };
    for edit in edits {
        edit(&mut spec)?;
    }
    if trace_json.is_some() && !smoke {
        // `--trace-json` without `--smoke` arms the recorder in the spec
        // itself (the smoke suite instead re-runs its degraded leg traced,
        // keeping the gated runs byte-identical to an unarmed suite).
        let o = spec.obs.get_or_insert_with(ObsScenario::standard);
        if o.trace_capacity == 0 {
            o.trace_capacity = CLOS_TRACE_CAPACITY;
        }
    }
    spec.expand().map_err(|e| e.to_string())?;
    if print_spec {
        println!("{}", spec.to_json());
        return Ok(());
    }
    let machine_stdout = output.machine_stdout()?;
    let mut runner = LabRunner::new();
    if let Some(threads) = output.threads {
        runner = runner.with_threads(threads);
    }
    let report = runner.run_clos(&spec).map_err(|e| e.to_string())?;
    print_clos_summary(&report, machine_stdout);
    output.write_reports("clos ", || report.to_json(), || report.to_csv())?;
    let fault_report = if smoke {
        // The degraded-mode leg: same Clos, fixed fault plan. Run and write
        // the ledger artifact *before* gating either leg, so a gate failure
        // still leaves the evidence on disk for CI to upload.
        let fault_spec = clos_fault_smoke_spec();
        let fault_report = runner.run_clos(&fault_spec).map_err(|e| e.to_string())?;
        print_clos_summary(&fault_report, machine_stdout);
        Some(fault_report)
    } else {
        None
    };
    let recovery_legs = if smoke {
        // The end-to-end recovery leg: the closed-loop reliable transport
        // over a cut-through Clos, once fault-free and once under the fixed
        // death+flap plan. Run both and write the artifact *before* gating,
        // so a gate failure still leaves the evidence on disk.
        let healthy = runner
            .run_clos(&clos_transport_smoke_spec())
            .map_err(|e| e.to_string())?;
        print_clos_summary(&healthy, machine_stdout);
        let faulted = runner
            .run_clos(&clos_recovery_fault_smoke_spec())
            .map_err(|e| e.to_string())?;
        print_clos_summary(&faulted, machine_stdout);
        Some((healthy, faulted))
    } else {
        None
    };
    if let Some(path) = &faults_json {
        let sources: Vec<&ClosLabReport> = match &fault_report {
            Some(faulted) => vec![&report, faulted],
            None => vec![&report],
        };
        write_artifact(path, &clos_fault_ledgers_json(&sources), "fault ledgers")?;
    }
    if let Some(path) = &recovery_json {
        let Some((healthy, faulted)) = &recovery_legs else {
            return Err(
                "--recovery-json needs --smoke (only the smoke suite runs the recovery leg)"
                    .to_owned(),
            );
        };
        write_artifact(
            path,
            &clos_recovery_json(healthy, faulted),
            "recovery reports",
        )?;
    }
    if let Some(path) = &series_csv {
        write_artifact(path, &clos_series_csv(&report)?, "series samples")?;
    }
    if let Some(path) = &trace_json {
        // Written before the gates, like every other smoke artifact, so a
        // gate failure still leaves the trace on disk for CI to upload.
        let dump = if smoke {
            let (_, faulted) = recovery_legs.as_ref().expect("smoke ran the recovery legs");
            clos_smoke_trace(faulted)?
        } else {
            report
                .runs
                .first()
                .and_then(|run| run.report.trace_json())
                .ok_or_else(|| "the spec produced no traced run".to_owned())?
        };
        write_artifact(path, &dump, "flight-recorder trace")?;
    }
    if smoke {
        gate_clos_smoke(&report)?;
        gate_clos_fault_smoke(
            fault_report.as_ref().expect("smoke ran the fault leg"),
            &report,
        )?;
        let (healthy, faulted) = recovery_legs.as_ref().expect("smoke ran the recovery legs");
        gate_clos_recovery_smoke(healthy, faulted)?;
    }
    Ok(())
}

/// The end-to-end recovery gates of `clos --smoke`: pairing each faulted
/// transport run with its fault-free twin, every leg must deliver
/// exactly-once (zero duplicate deliveries), close both the transport ledger
/// (`injected = acked + in-flight + queued retransmissions + abandoned`) and
/// the fabric conservation balance, and abandon nothing (both faults are
/// windowed, so the retry budget must carry every cell across); the
/// fault-free twin must drain completely (every injected cell acked), the
/// faulted run must actually feel the plan (timeouts fired), and goodput
/// must regain ≥95% of the twin's within `MAX_SLOTS_TO_RECOVER` slots of
/// the last fault window closing.
fn gate_clos_recovery_smoke(
    healthy: &ClosLabReport,
    faulted: &ClosLabReport,
) -> Result<(), String> {
    /// Recovery deadline, in slots after the last fault window closes.
    const MAX_SLOTS_TO_RECOVER: u64 = 2_000;
    let mut failures = Vec::new();
    if healthy.runs.len() != faulted.runs.len() {
        return Err(format!(
            "recovery legs diverged: {} fault-free runs vs {} faulted",
            healthy.runs.len(),
            faulted.runs.len(),
        ));
    }
    let mut recovered_slots = Vec::new();
    for (h, f) in healthy.runs.iter().zip(&faulted.runs) {
        let label = format!("recovery run {} ({})", f.index, f.scenario.dispatch);
        let (Some(ht), Some(ft)) = (h.report.transport.as_ref(), f.report.transport.as_ref())
        else {
            failures.push(format!("{label} is missing a transport report"));
            continue;
        };
        for (leg, run, t) in [("fault-free", &h.report, ht), ("faulted", &f.report, ft)] {
            if t.duplicate_deliveries != 0 {
                failures.push(format!(
                    "{label} {leg} leg delivered {} duplicates past dedup",
                    t.duplicate_deliveries,
                ));
            }
            if !run.transport_conservation_holds() {
                failures.push(format!(
                    "{label} {leg} leg broke the transport ledger: {} injected vs \
                     {} acked + {} in flight + {} queued + {} abandoned",
                    t.injected_cells,
                    t.acked_cells,
                    t.in_flight_at_end,
                    t.retransmissions_outstanding_at_end,
                    t.gave_up_cells,
                ));
            }
            if !run.conservation_holds() {
                failures.push(format!(
                    "{label} {leg} leg broke fabric conservation: {} arrived vs {} delivered",
                    run.arrivals, run.delivered,
                ));
            }
            if t.gave_up_cells != 0 {
                failures.push(format!(
                    "{label} {leg} leg abandoned {} cells under windowed faults",
                    t.gave_up_cells,
                ));
            }
        }
        if ht.acked_cells != ht.injected_cells {
            failures.push(format!(
                "{label} fault-free leg left {} of {} cells unacked",
                ht.injected_cells - ht.acked_cells,
                ht.injected_cells,
            ));
        }
        if ft.timeouts_fired == 0 {
            failures.push(format!("{label} fired no timeouts — the plan did not bite"));
        }
        match RecoveryReport::measure(&h.report, &f.report) {
            None => failures.push(format!("{label} produced no recovery measurement")),
            Some(rec) => {
                if !rec.recovered {
                    failures.push(format!(
                        "{label} never regained 95% goodput after the fault window \
                         closed at slot {}",
                        rec.fault_close_slot,
                    ));
                } else {
                    let slots = rec.slots_to_recover.unwrap_or(u64::MAX);
                    if slots > MAX_SLOTS_TO_RECOVER {
                        failures.push(format!(
                            "{label} took {slots} slots to recover \
                             (bound {MAX_SLOTS_TO_RECOVER})",
                        ));
                    } else {
                        recovered_slots.push(slots);
                    }
                }
            }
        }
    }
    if failures.is_empty() {
        eprintln!(
            "clos recovery smoke: all {} paired runs exactly-once with closed transport \
             ledgers; goodput recovered within {:?} slots of the fault window closing",
            faulted.runs.len(),
            recovered_slots,
        );
        Ok(())
    } else {
        Err(format!(
            "clos recovery smoke gate failed: {}",
            failures.join("; ")
        ))
    }
}

/// The degraded-mode acceptance gates of `clos --smoke`: under the fixed
/// fault plan every run must still conserve cells (the fault ledger closes
/// the balance), lose nothing silently (both faults are windowed, so no cell
/// may be stranded or dropped — only delayed), keep reordering bounded
/// (spray reorders by design, so its rate may grow at most 1.5× over the
/// fault-free leg's rate at the same dispatch and load, plus a tenth of
/// deliveries of slack that also covers flow-hash failover from its healthy
/// zero), and actually feel the faults (a run whose ledger shows no stalled
/// cells did not exercise the plan).
fn gate_clos_fault_smoke(report: &ClosLabReport, healthy: &ClosLabReport) -> Result<(), String> {
    let mut failures = Vec::new();
    for run in &report.runs {
        let label = format!(
            "fault run {} ({}@{}%)",
            run.index, run.scenario.dispatch, run.scenario.load_percent,
        );
        let r = &run.report;
        let healthy_rate = healthy
            .runs
            .iter()
            .find(|h| {
                h.scenario.dispatch == run.scenario.dispatch
                    && h.scenario.load_percent == run.scenario.load_percent
            })
            .map_or(0.0, |h| {
                h.report.reordered_cells as f64 / h.report.delivered.max(1) as f64
            });
        let Some(ledger) = r.faults.as_ref() else {
            failures.push(format!("{label} reported no fault ledger"));
            continue;
        };
        if !r.conservation_holds() {
            failures.push(format!(
                "{label} broke degraded-mode conservation: {} arrived vs {} delivered, \
                 ledger {:?}",
                r.arrivals, r.delivered, ledger,
            ));
        }
        if r.lost_cells != ledger.refused_cells + ledger.dropped_cells {
            failures.push(format!(
                "{label} lost {} cells but the ledger only explains {}",
                r.lost_cells,
                ledger.refused_cells + ledger.dropped_cells,
            ));
        }
        if ledger.stranded_cells != 0 || ledger.dropped_cells != 0 || ledger.refused_cells != 0 {
            failures.push(format!(
                "{label}: windowed faults must only delay cells, ledger {ledger:?}"
            ));
        }
        if ledger.stalled_cell_slots == 0 {
            failures.push(format!("{label} never stalled — the plan did not bite"));
        }
        let bound = healthy_rate * 1.5 + 0.1;
        if r.reordered_cells as f64 > r.delivered as f64 * bound {
            failures.push(format!(
                "{label} reordered {} of {} delivered cells (bound {:.1}%)",
                r.reordered_cells,
                r.delivered,
                bound * 100.0,
            ));
        }
    }
    if failures.is_empty() {
        let stalled: u64 = report
            .runs
            .iter()
            .filter_map(|run| run.report.faults.as_ref())
            .map(|ledger| ledger.stalled_cell_slots)
            .sum();
        eprintln!(
            "clos fault smoke: all {} degraded runs conserving with every cell ledgered \
             ({} stalled cell-slots across ledgers); reordering bounded",
            report.runs.len(),
            stalled,
        );
        Ok(())
    } else {
        Err(format!(
            "clos fault smoke gate failed: {}",
            failures.join("; ")
        ))
    }
}

/// The `clos --smoke` acceptance gates: zero lost cells and fabric-wide cell
/// conservation on every run, and zero reordered deliveries on the flow-hash
/// runs (the ordering guarantee pinned fabric-wide). Spray reordering is
/// *reported* — load-balancing trades order for balance by design — but not
/// gated.
fn gate_clos_smoke(report: &ClosLabReport) -> Result<(), String> {
    let mut failures = Vec::new();
    let mut spray_reordered = 0u64;
    for run in &report.runs {
        let s = &run.scenario;
        let label = format!(
            "run {} ({}x{} r={} m={} {}/{}@{}%)",
            run.index,
            s.radix,
            s.radix,
            s.ingress_switches,
            s.middle_switches,
            s.workload,
            s.dispatch,
            s.load_percent,
        );
        if !run.report.zero_loss {
            failures.push(format!("{label} lost {} cells", run.report.lost_cells));
        }
        if !run.report.conservation_holds() {
            failures.push(format!(
                "{label} broke conservation: {} arrived vs {} delivered + {} resident",
                run.report.arrivals,
                run.report.delivered,
                run.report.resident_cells + run.report.link_resident_cells,
            ));
        }
        match s.dispatch {
            DispatchChoice::FlowHash => {
                if run.report.reordered_cells > 0 {
                    failures.push(format!(
                        "{label} reordered {} cells under flow-hash pinning",
                        run.report.reordered_cells,
                    ));
                }
            }
            DispatchChoice::Spray | DispatchChoice::OccupancySpray => {
                spray_reordered += run.report.reordered_cells;
            }
        }
    }
    if failures.is_empty() {
        eprintln!(
            "clos smoke: all {} runs zero-loss and conserving; flow-hash in order; \
             spray reordered {} cells (reported, not gated)",
            report.runs.len(),
            spray_reordered,
        );
        Ok(())
    } else {
        Err(format!("clos smoke gate failed: {}", failures.join("; ")))
    }
}

fn print_clos_summary(report: &ClosLabReport, to_stderr: bool) {
    let emit = |line: &str| {
        if to_stderr {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    let mut table = TextTable::new(vec![
        "run",
        "N",
        "r",
        "m",
        "design",
        "workload",
        "dispatch",
        "arbiter",
        "load%",
        "seed",
        "arrivals",
        "delivered",
        "lost",
        "reordered",
        "stalls",
        "peak-link",
        "latency",
        "zero-loss",
        "conserving",
    ]);
    for run in &report.runs {
        let s = &run.scenario;
        let r = &run.report;
        table.push_row(vec![
            run.index.to_string(),
            s.radix.to_string(),
            s.ingress_switches.to_string(),
            s.middle_switches.to_string(),
            s.design.to_string(),
            s.workload.to_string(),
            s.dispatch.to_string(),
            s.arbiter.to_string(),
            s.load_percent.to_string(),
            s.seed.to_string(),
            r.arrivals.to_string(),
            r.delivered.to_string(),
            r.lost_cells.to_string(),
            r.reordered_cells.to_string(),
            r.credit_stall_slots.to_string(),
            r.peak_link_depth.to_string(),
            format!("{:.1}", r.mean_latency_slots),
            r.zero_loss.to_string(),
            r.conservation_holds().to_string(),
        ]);
    }
    emit(&table.render());
    for run in &report.runs {
        if let Some(t) = &run.report.transport {
            emit(&format!(
                "  run {} transport: {} injected, {} acked, {} retransmitted, \
                 {} timeouts, {} duplicates filtered, {} duplicate deliveries, \
                 {} abandoned, ledger {}",
                run.index,
                t.injected_cells,
                t.acked_cells,
                t.retransmitted_cells,
                t.timeouts_fired,
                t.duplicates_filtered,
                t.duplicate_deliveries,
                t.gave_up_cells,
                if run.report.transport_conservation_holds() {
                    "closed"
                } else {
                    "OPEN"
                },
            ));
        }
    }
    let agg = &report.aggregate;
    emit(&format!(
        "{}: {} runs ({} skipped invalid), {} zero-loss, {} conserving, {} arrivals, \
         {} delivered, {} lost, {} reordered, {} credit-stall slots, peak link depth {}, \
         mean latency {:.1}, max latency {} slots",
        report.spec.name,
        agg.runs,
        report.skipped_invalid,
        agg.zero_loss_runs,
        agg.conserving_runs,
        agg.total_arrivals,
        agg.total_delivered,
        agg.total_lost_cells,
        agg.total_reordered_cells,
        agg.total_credit_stall_slots,
        agg.peak_link_depth,
        agg.mean_latency_slots,
        agg.max_latency_slots,
    ));
}

fn paper_command(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or_else(|| {
        format!(
            "paper needs an artefact name: {}",
            bench::paper::ARTEFACTS.join(", ")
        )
    })?;
    if args.len() > 1 {
        return Err(format!("unexpected argument {:?}", args[1]));
    }
    match bench::paper::run_artefact(name) {
        Some(true) => Ok(()),
        Some(false) => Err(format!("artefact {name:?} reported a failure")),
        None => Err(format!(
            "unknown artefact {name:?} (expected one of: {})",
            bench::paper::ARTEFACTS.join(", ")
        )),
    }
}

fn run_command(args: &[String], print_runs: bool) -> Result<(), String> {
    let (spec, output) = parse_spec_args(args)?;
    let machine_stdout = output.machine_stdout()?;
    let mut runner = LabRunner::new();
    if let Some(threads) = output.threads {
        runner = runner.with_threads(threads);
    }
    let report = runner.run(&spec).map_err(|e| e.to_string())?;
    print_summary(&report, print_runs, machine_stdout);
    output.write_reports("", || report.to_json(), || report.to_csv())
}

/// A deferred spec mutation from one inline flag.
type SpecEdit = Box<dyn FnOnce(&mut ExperimentSpec) -> Result<(), String>>;

fn parse_spec_args(args: &[String]) -> Result<(ExperimentSpec, OutputOptions), String> {
    let mut base: Option<ExperimentSpec> = None;
    let mut output = OutputOptions {
        threads: None,
        json: None,
        csv: None,
    };
    // Inline flags are collected first, then applied over the (optional)
    // spec-file base, so `--spec file --seeds 9` reseeds a saved experiment.
    let mut edits: Vec<SpecEdit> = Vec::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--spec" => {
                let text = read_spec_text(&value("--spec")?)?;
                base = Some(ExperimentSpec::from_json(&text).map_err(|e| e.to_string())?);
            }
            "--name" => {
                let v = value("--name")?;
                edits.push(Box::new(move |s| {
                    s.name = v;
                    Ok(())
                }));
            }
            "--designs" => {
                let v = value("--designs")?;
                edits.push(Box::new(move |s| {
                    s.designs = if v.eq_ignore_ascii_case("all") {
                        DesignKind::all().to_vec()
                    } else {
                        parse_list(&v, "design")?
                    };
                    Ok(())
                }));
            }
            "--workloads" => {
                let v = value("--workloads")?;
                edits.push(Box::new(move |s| {
                    s.workloads = if v.eq_ignore_ascii_case("all") {
                        Workload::all().to_vec()
                    } else {
                        parse_list(&v, "workload")?
                    };
                    Ok(())
                }));
            }
            "--rate" => {
                let v = value("--rate")?;
                edits.push(Box::new(move |s| {
                    s.line_rate = v.parse().map_err(|e| format!("--rate: {e}"))?;
                    Ok(())
                }));
            }
            "--queues" => {
                let v = value("--queues")?;
                edits.push(Box::new(move |s| {
                    s.num_queues = parse_sweep(&v, "--queues")?;
                    Ok(())
                }));
            }
            "-b" | "--granularity" => {
                let v = value("--granularity")?;
                edits.push(Box::new(move |s| {
                    s.granularity = parse_sweep(&v, "--granularity")?;
                    Ok(())
                }));
            }
            "-B" | "--rads-granularity" => {
                let v = value("--rads-granularity")?;
                edits.push(Box::new(move |s| {
                    s.rads_granularity = parse_sweep(&v, "--rads-granularity")?;
                    Ok(())
                }));
            }
            "--banks" => {
                let v = value("--banks")?;
                edits.push(Box::new(move |s| {
                    s.num_banks = parse_sweep(&v, "--banks")?;
                    Ok(())
                }));
            }
            "--slots" => {
                let v = value("--slots")?;
                edits.push(Box::new(move |s| {
                    s.arrival_slots = parse_int(&v, "--slots")?;
                    if s.arrival_slots > 0 {
                        s.preload_cells_per_queue = 0;
                    }
                    Ok(())
                }));
            }
            "--preload" => {
                let v = value("--preload")?;
                edits.push(Box::new(move |s| {
                    s.preload_cells_per_queue = parse_int(&v, "--preload")?;
                    if s.preload_cells_per_queue > 0 {
                        s.arrival_slots = 0;
                    }
                    Ok(())
                }));
            }
            "--seeds" => {
                let v = value("--seeds")?;
                edits.push(Box::new(move |s| {
                    s.seeds = v
                        .split(',')
                        .map(|part| parse_int(part, "--seeds"))
                        .collect::<Result<Vec<u64>, String>>()?;
                    Ok(())
                }));
            }
            "--record-grants" => {
                edits.push(Box::new(|s| {
                    s.record_grants = true;
                    Ok(())
                }));
            }
            "--threads" => {
                output.threads = Some(parse_int(&value("--threads")?, "--threads")? as usize);
            }
            "--json" => output.json = Some(value("--json")?),
            "--csv" => output.csv = Some(value("--csv")?),
            other => return Err(format!("unknown flag {other:?} (try `pktbuf-lab help`)")),
        }
    }
    let mut spec = base.unwrap_or_else(|| {
        ExperimentSpec::builder()
            .build()
            .expect("the default spec is valid")
    });
    for edit in edits {
        edit(&mut spec)?;
    }
    spec.expand().map_err(|e| e.to_string())?;
    Ok((spec, output))
}

fn print_summary(report: &ExperimentReport, print_runs: bool, to_stderr: bool) {
    let emit = |line: &str| {
        if to_stderr {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    if print_runs {
        let mut table = TextTable::new(vec![
            "run",
            "design",
            "workload",
            "Q",
            "b",
            "B",
            "M",
            "seed",
            "grants",
            "misses",
            "drops",
            "conflicts",
            "grants/slot",
            "loss-free",
        ]);
        for run in &report.runs {
            let s = &run.scenario;
            let r = &run.report;
            table.push_row(vec![
                run.index.to_string(),
                s.design.to_string(),
                s.workload.to_string(),
                s.num_queues.to_string(),
                s.granularity.to_string(),
                s.rads_granularity.to_string(),
                s.num_banks.to_string(),
                s.seed.to_string(),
                r.stats.grants.to_string(),
                r.stats.misses.to_string(),
                r.stats.drops.to_string(),
                r.stats.bank_conflicts.to_string(),
                format!("{:.3}", r.grants_per_slot()),
                r.stats.is_loss_free().to_string(),
            ]);
        }
        emit(&table.render());
    }
    let agg = &report.aggregate;
    emit(&format!(
        "{}: {} runs ({} skipped invalid), {} loss-free, {} grants, {} misses, {} drops, \
         {} conflicts, mean {:.3} grants/slot, peak h-SRAM {} cells, peak RR {} entries",
        report.spec.name,
        agg.runs,
        report.skipped_invalid,
        agg.loss_free_runs,
        agg.total_grants,
        agg.total_misses,
        agg.total_drops,
        agg.total_bank_conflicts,
        agg.mean_grants_per_slot,
        agg.peak_head_sram_cells,
        agg.peak_rr_entries,
    ));
}
