//! `pktbuf-lab`: the single command line for every experiment in this
//! repository.
//!
//! Experiments are *data*: a serializable [`ExperimentSpec`] (designs ×
//! workloads × swept parameters × seeds) executed by a multi-threaded
//! [`LabRunner`]. The legacy one-off binaries (`fig8`, `validate`, …) remain
//! as thin wrappers over `pktbuf-lab paper <name>`.
//!
//! ```text
//! pktbuf-lab run   --spec lab.json [--threads N] [--json out.json] [--csv out.csv]
//! pktbuf-lab run   --designs cfds --workloads bursty --queues 32 --slots 20000
//! pktbuf-lab sweep --designs rads,cfds --workloads all --queues 64..1024*2 -b 1,2,4,8
//! pktbuf-lab paper <fig8|fig10|fig11|table2|validate|dram_only|fragmentation|ablation_dsa>
//! pktbuf-lab spec  # print a template spec to adapt
//! ```

use sim::lab::{ExperimentReport, LabRunner};
use sim::report::TextTable;
use sim::scenario::{DesignKind, Workload};
use sim::spec::{ExperimentSpec, Sweep};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((command, rest)) => (command.as_str(), rest),
        None => {
            print_usage();
            return ExitCode::from(2);
        }
    };
    let result = match command {
        "run" => run_command(rest, false),
        "sweep" => run_command(rest, true),
        "bench" => bench_command(rest),
        "paper" => paper_command(rest),
        "spec" => {
            println!("{}", template_spec().to_json());
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command {other:?} (try `pktbuf-lab help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("pktbuf-lab: {message}");
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    println!(
        "pktbuf-lab — declarative packet-buffer experiments

USAGE:
    pktbuf-lab run   [SPEC FLAGS] [OUTPUT FLAGS]   execute a spec (file or inline flags)
    pktbuf-lab sweep [SPEC FLAGS] [OUTPUT FLAGS]   same, and print the per-run table
    pktbuf-lab bench [BENCH FLAGS]                 run the hot-path benchmark suite
    pktbuf-lab paper <ARTEFACT>                    regenerate a paper artefact
    pktbuf-lab spec                                print a template spec JSON

BENCH FLAGS (all designs x all workloads + drain/idle showcase points, both
engines — chunked and per-slot — per point; fails if the chunked engine is
slower than per-slot anywhere, beyond a fixed 10% same-run noise floor):
    --smoke                  short runs for CI (default: >= 1M slots per run)
    --out <FILE>             write the JSON artifact (default BENCH_hotpath.json)
    --no-out                 measure and print only, write nothing
    --repeat <N>             repeat the matrix N times, keep best-of-N per entry
    --before <FILE>          embed FILE as the 'before' section and compute speedups
    --compare <FILE>         fail on a slots/sec regression vs FILE
    --max-regression <PCT>   regression tolerance (default 15)
    --tag <TAG>              append a trajectory entry (e.g. PR-4) carrying the
                             previous artifact's history forward

SPEC FLAGS (inline specs; every axis accepts 'v', 'v1,v2,…', 'a..b*factor', 'a..b+step'):
    --spec <FILE>            read the spec from a JSON file ('-' = stdin); other spec flags override it
    --name <NAME>            experiment name
    --designs <LIST|all>     dram-only, rads, cfds            (default cfds)
    --workloads <LIST|all>   adversarial-round-robin, uniform-random, bursty, hotspot, greedy-drain
    --rate <RATE>            oc192 | oc768 | oc3072 | <Gb/s>  (default oc3072)
    --queues <SWEEP>         logical queues Q                 (default 32)
    -b, --granularity <SWEEP>     CFDS granularity b          (default 4)
    -B, --rads-granularity <SWEEP> RADS granularity B         (default 16)
    --banks <SWEEP>          DRAM banks M                     (default 64)
    --slots <N>              live-arrival slots               (default 10000)
    --preload <N>            preloaded cells/queue instead of live arrivals
    --seeds <LIST>           RNG seeds                        (default 1)
    --record-grants          record per-grant queue logs

OUTPUT FLAGS:
    --threads <N>            worker threads (default: all cores)
    --json <FILE>            write the full report as JSON ('-' = stdout)
    --csv <FILE>             write one CSV row per run ('-' = stdout)

PAPER ARTEFACTS:
    {}",
        bench::paper::ARTEFACTS.join(", ")
    );
}

/// The template printed by `pktbuf-lab spec`: a small two-design sweep that
/// finishes quickly and demonstrates every field.
fn template_spec() -> ExperimentSpec {
    ExperimentSpec::builder()
        .name("example-sweep")
        .designs([DesignKind::Rads, DesignKind::Cfds])
        .workloads([Workload::AdversarialRoundRobin, Workload::Bursty])
        .num_queues(Sweep::list([16, 32]))
        .granularity(Sweep::fixed(4))
        .rads_granularity(Sweep::fixed(16))
        .num_banks(Sweep::fixed(64))
        .arrival_slots(5_000)
        .seeds([1, 101])
        .build()
        .expect("the template spec is valid")
}

fn bench_command(args: &[String]) -> Result<(), String> {
    use bench::hotpath::{run_bench, BenchOptions, BENCH_DEFAULT_OUT};
    let mut options = BenchOptions {
        out: Some(BENCH_DEFAULT_OUT.to_owned()),
        ..BenchOptions::default()
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--smoke" => options.smoke = true,
            "--out" => options.out = Some(value("--out")?),
            "--no-out" => options.out = None,
            "--before" => options.before = Some(value("--before")?),
            "--compare" => options.compare = Some(value("--compare")?),
            "--tag" => options.tag = Some(value("--tag")?),
            "--repeat" => {
                let v = value("--repeat")?;
                options.repeat = Some(
                    v.parse()
                        .map_err(|_| format!("--repeat: {v:?} is not a count"))?,
                );
            }
            "--max-regression" => {
                let v = value("--max-regression")?;
                options.max_regression_pct = Some(
                    v.parse()
                        .map_err(|_| format!("--max-regression: {v:?} is not a number"))?,
                );
            }
            other => return Err(format!("unknown bench flag {other:?}")),
        }
    }
    match run_bench(&options) {
        Ok(true) => Ok(()),
        Ok(false) => Err("bench regression check failed".to_owned()),
        Err(message) => Err(message),
    }
}

fn paper_command(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or_else(|| {
        format!(
            "paper needs an artefact name: {}",
            bench::paper::ARTEFACTS.join(", ")
        )
    })?;
    if args.len() > 1 {
        return Err(format!("unexpected argument {:?}", args[1]));
    }
    match bench::paper::run_artefact(name) {
        Some(true) => Ok(()),
        Some(false) => Err(format!("artefact {name:?} reported a failure")),
        None => Err(format!(
            "unknown artefact {name:?} (expected one of: {})",
            bench::paper::ARTEFACTS.join(", ")
        )),
    }
}

/// Parsed output options shared by `run` and `sweep`.
struct OutputOptions {
    threads: Option<usize>,
    json: Option<String>,
    csv: Option<String>,
}

fn run_command(args: &[String], print_runs: bool) -> Result<(), String> {
    let (spec, output) = parse_spec_args(args)?;
    let mut runner = LabRunner::new();
    if let Some(threads) = output.threads {
        runner = runner.with_threads(threads);
    }
    let report = runner.run(&spec).map_err(|e| e.to_string())?;
    // When a machine-readable artifact targets stdout ('-'), the human
    // summary moves to stderr so the stream stays valid JSON/CSV. Two
    // artifacts cannot share stdout — the concatenation would be neither.
    if output.json.as_deref() == Some("-") && output.csv.as_deref() == Some("-") {
        return Err("--json - and --csv - cannot both write to stdout".to_owned());
    }
    let machine_stdout = output.json.as_deref() == Some("-") || output.csv.as_deref() == Some("-");
    print_summary(&report, print_runs, machine_stdout);
    if let Some(path) = &output.json {
        write_artifact(path, &report.to_json(), "JSON report")?;
    }
    if let Some(path) = &output.csv {
        write_artifact(path, &report.to_csv(), "CSV report")?;
    }
    Ok(())
}

fn write_artifact(path: &str, content: &str, what: &str) -> Result<(), String> {
    if path == "-" {
        println!("{content}");
        Ok(())
    } else {
        std::fs::write(path, content)
            .map_err(|e| format!("cannot write {what} to {path:?}: {e}"))?;
        eprintln!("wrote {what} to {path}");
        Ok(())
    }
}

/// A deferred spec mutation from one inline flag.
type SpecEdit = Box<dyn FnOnce(&mut ExperimentSpec) -> Result<(), String>>;

fn parse_spec_args(args: &[String]) -> Result<(ExperimentSpec, OutputOptions), String> {
    let mut base: Option<ExperimentSpec> = None;
    let mut output = OutputOptions {
        threads: None,
        json: None,
        csv: None,
    };
    // Inline flags are collected first, then applied over the (optional)
    // spec-file base, so `--spec file --seeds 9` reseeds a saved experiment.
    let mut edits: Vec<SpecEdit> = Vec::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--spec" => {
                let path = value("--spec")?;
                let text = if path == "-" {
                    use std::io::Read as _;
                    let mut buffer = String::new();
                    std::io::stdin()
                        .read_to_string(&mut buffer)
                        .map_err(|e| format!("cannot read stdin: {e}"))?;
                    buffer
                } else {
                    std::fs::read_to_string(&path)
                        .map_err(|e| format!("cannot read {path:?}: {e}"))?
                };
                base = Some(ExperimentSpec::from_json(&text).map_err(|e| e.to_string())?);
            }
            "--name" => {
                let v = value("--name")?;
                edits.push(Box::new(move |s| {
                    s.name = v;
                    Ok(())
                }));
            }
            "--designs" => {
                let v = value("--designs")?;
                edits.push(Box::new(move |s| {
                    s.designs = if v.eq_ignore_ascii_case("all") {
                        DesignKind::all().to_vec()
                    } else {
                        parse_list(&v, "design")?
                    };
                    Ok(())
                }));
            }
            "--workloads" => {
                let v = value("--workloads")?;
                edits.push(Box::new(move |s| {
                    s.workloads = if v.eq_ignore_ascii_case("all") {
                        Workload::all().to_vec()
                    } else {
                        parse_list(&v, "workload")?
                    };
                    Ok(())
                }));
            }
            "--rate" => {
                let v = value("--rate")?;
                edits.push(Box::new(move |s| {
                    s.line_rate = v.parse().map_err(|e| format!("--rate: {e}"))?;
                    Ok(())
                }));
            }
            "--queues" => {
                let v = value("--queues")?;
                edits.push(Box::new(move |s| {
                    s.num_queues = parse_sweep(&v, "--queues")?;
                    Ok(())
                }));
            }
            "-b" | "--granularity" => {
                let v = value("--granularity")?;
                edits.push(Box::new(move |s| {
                    s.granularity = parse_sweep(&v, "--granularity")?;
                    Ok(())
                }));
            }
            "-B" | "--rads-granularity" => {
                let v = value("--rads-granularity")?;
                edits.push(Box::new(move |s| {
                    s.rads_granularity = parse_sweep(&v, "--rads-granularity")?;
                    Ok(())
                }));
            }
            "--banks" => {
                let v = value("--banks")?;
                edits.push(Box::new(move |s| {
                    s.num_banks = parse_sweep(&v, "--banks")?;
                    Ok(())
                }));
            }
            "--slots" => {
                let v = value("--slots")?;
                edits.push(Box::new(move |s| {
                    s.arrival_slots = parse_int(&v, "--slots")?;
                    if s.arrival_slots > 0 {
                        s.preload_cells_per_queue = 0;
                    }
                    Ok(())
                }));
            }
            "--preload" => {
                let v = value("--preload")?;
                edits.push(Box::new(move |s| {
                    s.preload_cells_per_queue = parse_int(&v, "--preload")?;
                    if s.preload_cells_per_queue > 0 {
                        s.arrival_slots = 0;
                    }
                    Ok(())
                }));
            }
            "--seeds" => {
                let v = value("--seeds")?;
                edits.push(Box::new(move |s| {
                    s.seeds = v
                        .split(',')
                        .map(|part| parse_int(part, "--seeds"))
                        .collect::<Result<Vec<u64>, String>>()?;
                    Ok(())
                }));
            }
            "--record-grants" => {
                edits.push(Box::new(|s| {
                    s.record_grants = true;
                    Ok(())
                }));
            }
            "--threads" => {
                output.threads = Some(parse_int(&value("--threads")?, "--threads")? as usize)
            }
            "--json" => output.json = Some(value("--json")?),
            "--csv" => output.csv = Some(value("--csv")?),
            other => return Err(format!("unknown flag {other:?} (try `pktbuf-lab help`)")),
        }
    }
    let mut spec = base.unwrap_or_else(|| {
        ExperimentSpec::builder()
            .build()
            .expect("the default spec is valid")
    });
    for edit in edits {
        edit(&mut spec)?;
    }
    spec.expand().map_err(|e| e.to_string())?;
    Ok((spec, output))
}

fn parse_int(text: &str, flag: &str) -> Result<u64, String> {
    text.trim()
        .parse()
        .map_err(|_| format!("{flag}: {text:?} is not an unsigned integer"))
}

fn parse_sweep(text: &str, flag: &str) -> Result<Sweep, String> {
    text.parse().map_err(|e| format!("{flag}: {e}"))
}

fn parse_list<T: std::str::FromStr>(text: &str, what: &str) -> Result<Vec<T>, String>
where
    T::Err: std::fmt::Display,
{
    let items = text
        .split(',')
        .filter(|part| !part.trim().is_empty())
        .map(|part| part.trim().parse::<T>().map_err(|e| e.to_string()))
        .collect::<Result<Vec<T>, String>>()?;
    if items.is_empty() {
        Err(format!("empty {what} list"))
    } else {
        Ok(items)
    }
}

fn print_summary(report: &ExperimentReport, print_runs: bool, to_stderr: bool) {
    let emit = |line: &str| {
        if to_stderr {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    if print_runs {
        let mut table = TextTable::new(vec![
            "run",
            "design",
            "workload",
            "Q",
            "b",
            "B",
            "M",
            "seed",
            "grants",
            "misses",
            "drops",
            "conflicts",
            "grants/slot",
            "loss-free",
        ]);
        for run in &report.runs {
            let s = &run.scenario;
            let r = &run.report;
            table.push_row(vec![
                run.index.to_string(),
                s.design.to_string(),
                s.workload.to_string(),
                s.num_queues.to_string(),
                s.granularity.to_string(),
                s.rads_granularity.to_string(),
                s.num_banks.to_string(),
                s.seed.to_string(),
                r.stats.grants.to_string(),
                r.stats.misses.to_string(),
                r.stats.drops.to_string(),
                r.stats.bank_conflicts.to_string(),
                format!("{:.3}", r.grants_per_slot()),
                r.stats.is_loss_free().to_string(),
            ]);
        }
        emit(&table.render());
    }
    let agg = &report.aggregate;
    emit(&format!(
        "{}: {} runs ({} skipped invalid), {} loss-free, {} grants, {} misses, {} drops, \
         {} conflicts, mean {:.3} grants/slot, peak h-SRAM {} cells, peak RR {} entries",
        report.spec.name,
        agg.runs,
        report.skipped_invalid,
        agg.loss_free_runs,
        agg.total_grants,
        agg.total_misses,
        agg.total_drops,
        agg.total_bank_conflicts,
        agg.mean_grants_per_slot,
        agg.peak_head_sram_cells,
        agg.peak_rr_entries,
    ));
}
