//! Experiment E7: slot-level validation of the worst-case claims of §5 —
//! zero misses, zero drops, FIFO order, zero bank conflicts and bounded
//! Requests-Register occupancy — for RADS and CFDS under every workload.

use sim::report::TextTable;
use sim::scenario::{DesignKind, Scenario, Workload};

fn main() {
    println!("== E7: slot-level validation of the worst-case guarantees ==\n");
    let mut table = TextTable::new(vec![
        "design",
        "workload",
        "grants",
        "misses",
        "drops",
        "conflicts",
        "peak h-SRAM",
        "peak RR",
        "loss-free",
    ]);
    for design in [DesignKind::Rads, DesignKind::Cfds] {
        for workload in Workload::all() {
            let scenario = Scenario {
                design,
                workload,
                num_queues: 32,
                granularity: 4,
                rads_granularity: 16,
                num_banks: 64,
                preload_cells_per_queue: 0,
                arrival_slots: 20_000,
                seed: 7,
            };
            let r = scenario.run();
            table.push_row(vec![
                r.design.clone(),
                format!("{workload:?}"),
                format!("{}", r.stats.grants),
                format!("{}", r.stats.misses),
                format!("{}", r.stats.drops),
                format!("{}", r.stats.bank_conflicts),
                format!("{}", r.stats.peak_head_sram_cells),
                format!("{}", r.stats.peak_rr_entries),
                format!("{}", r.stats.is_loss_free()),
            ]);
        }
    }
    // The preloaded adversarial drain (the paper's worst case) at a larger
    // scale.
    for design in [DesignKind::Rads, DesignKind::Cfds] {
        let scenario = Scenario {
            design,
            workload: Workload::AdversarialRoundRobin,
            num_queues: 64,
            granularity: 4,
            rads_granularity: 16,
            num_banks: 64,
            preload_cells_per_queue: 128,
            arrival_slots: 0,
            seed: 11,
        };
        let r = scenario.run();
        table.push_row(vec![
            format!("{} (preloaded)", r.design),
            "AdversarialRoundRobin".to_string(),
            format!("{}", r.stats.grants),
            format!("{}", r.stats.misses),
            format!("{}", r.stats.drops),
            format!("{}", r.stats.bank_conflicts),
            format!("{}", r.stats.peak_head_sram_cells),
            format!("{}", r.stats.peak_rr_entries),
            format!("{}", r.stats.is_loss_free()),
        ]);
    }
    println!("{}", table.render());
    println!("Every row must report zero misses, drops and conflicts (the DRAM-only baseline,");
    println!("by contrast, misses heavily — see the `dram_only` binary).");
}
