//! Experiment E7: slot-level validation of the worst-case claims of §5 —
//! zero misses, zero drops, FIFO order, zero bank conflicts and bounded
//! Requests-Register occupancy — for RADS and CFDS under every workload.
//!
//! Thin wrapper: the experiment is defined once in [`bench::paper::validate`]
//! (spec-driven; also reachable as `pktbuf-lab paper validate`).

use std::process::ExitCode;

fn main() -> ExitCode {
    let (live, preloaded) = bench::paper::validate();
    if live.aggregate.all_loss_free && preloaded.aggregate.all_loss_free {
        ExitCode::SUCCESS
    } else {
        eprintln!("validate: FAILED — a run violated the worst-case guarantees");
        ExitCode::FAILURE
    }
}
