//! Experiment E8 (§6): DRAM fragmentation with and without queue renaming.
//!
//! A skewed workload concentrates cells on a few logical queues. Without
//! renaming a logical queue can only use the capacity of its statically
//! assigned group (1/G of the DRAM); with renaming it chains physical queues
//! across groups and can use the whole memory.

use pktbuf::{CfdsBuffer, CfdsBufferOptions, PacketBuffer};
use pktbuf_model::{Cell, CfdsConfig, LineRate, LogicalQueueId};
use sim::report::TextTable;

fn run(oversubscription: usize, hot_queues: usize) -> (f64, usize, u64) {
    let cfg = CfdsConfig::builder()
        .line_rate(LineRate::Oc3072)
        .num_queues(32)
        .granularity(2)
        .rads_granularity(8)
        .num_banks(32)
        .physical_queue_factor(oversubscription)
        .build()
        .expect("valid configuration");
    // Small DRAM so that per-group capacity actually binds: 512 blocks total.
    let options = CfdsBufferOptions {
        dram_capacity_cells: Some(1024),
        ..CfdsBufferOptions::default()
    };
    let mut buf = CfdsBuffer::with_options(cfg, options);
    // Feed cells only to the hot queues through the tail path until writebacks
    // start being blocked or the DRAM is effectively full.
    let mut seqs = vec![0u64; hot_queues];
    for t in 0..40_000u64 {
        let qi = (t % hot_queues as u64) as usize;
        let cell = Cell::new(LogicalQueueId::new(qi as u32), seqs[qi], t);
        seqs[qi] += 1;
        buf.step(Some(cell), None);
        if buf.dram_utilisation() > 0.99 {
            break;
        }
    }
    let max_chain = (0..hot_queues)
        .map(|q| buf.renaming_chain_length(LogicalQueueId::new(q as u32)))
        .max()
        .unwrap_or(0);
    (
        buf.dram_utilisation(),
        max_chain,
        buf.stats().blocked_writebacks,
    )
}

fn main() {
    println!("== E8: DRAM fragmentation and queue renaming (32 queues, 16 groups, tiny DRAM) ==\n");
    let num_groups = 16.0f64;
    let mut table = TextTable::new(vec![
        "physical queues / logical",
        "hot queues",
        "static assignment limit",
        "utilisation with renaming",
        "max renaming chain",
        "blocked writebacks",
    ]);
    for (oversub, hot) in [(1usize, 1usize), (1, 2), (2, 1), (2, 2), (4, 4)] {
        let (util, chain, blocked) = run(oversub, hot);
        // Without renaming a logical queue is pinned to one group, so `hot`
        // active queues can use at most hot/G of the DRAM.
        let static_limit = (hot as f64 / num_groups).min(1.0);
        table.push_row(vec![
            format!("{oversub}x"),
            format!("{hot}"),
            format!("{:.2}", static_limit),
            format!("{:.2}", util),
            format!("{chain}"),
            format!("{blocked}"),
        ]);
    }
    println!("{}", table.render());
    println!("With the static queue-to-group assignment alone, `hot` backlogged queues could use");
    println!("at most hot/G of the DRAM (the fragmentation problem of §6). The renaming layer");
    println!("chains physical queues across groups and reaches essentially full utilisation in");
    println!("every case, while the chain stays short and names are recycled.");
}
