//! Experiment E8 (§6): DRAM fragmentation with and without queue renaming.
//!
//! A skewed workload concentrates cells on a few logical queues. Without
//! renaming a logical queue can only use the capacity of its statically
//! assigned group (1/G of the DRAM); with renaming it chains physical queues
//! across groups and can use the whole memory.
//!
//! Thin wrapper: the experiment is defined once in
//! [`bench::paper::fragmentation`] (also reachable as `pktbuf-lab paper
//! fragmentation`).

fn main() {
    bench::paper::fragmentation();
}
