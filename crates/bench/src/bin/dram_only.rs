//! Experiment E1 (§1): peak vs. worst-case guaranteed bandwidth of DRAM-only
//! buffers, and how wider multi-chip buses hit diminishing returns.

use dram_sim::{MultiChipConfig, SdramChip};
use pktbuf::{DramOnlyBuffer, PacketBuffer};
use pktbuf_model::{LineRate, LogicalQueueId, RadsConfig};
use sim::report::TextTable;
use traffic::preload_cells;

fn main() {
    println!("== E1a: SDRAM chip model (16-bit, 100 MHz reference chip of [9]) ==\n");
    let chip = SdramChip::reference_16mb();
    let mut table = TextTable::new(vec![
        "chips",
        "bus bits",
        "peak Gb/s",
        "guaranteed Gb/s",
        "efficiency",
    ]);
    for chips in [1u32, 2, 4, 8, 16, 32] {
        let cfg = MultiChipConfig::new(chip, chips);
        table.push_row(vec![
            format!("{chips}"),
            format!("{}", chip.data_width_bits * chips),
            format!("{:.2}", cfg.peak_bandwidth_bps() / 1e9),
            format!("{:.2}", cfg.guaranteed_bandwidth_bps() / 1e9),
            format!("{:.2}", cfg.worst_case_efficiency()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Paper quotes: single chip 1.6 Gb/s peak vs 1.2 Gb/s guaranteed; 8 chips only 5.12 Gb/s.\n"
    );

    println!("== E1b: slot-level DRAM-only buffer under back-to-back requests ==\n");
    let cfg = RadsConfig {
        line_rate: LineRate::Oc3072,
        num_queues: 16,
        granularity: 32,
        lookahead: None,
        dram: Default::default(),
    };
    let mut buf = DramOnlyBuffer::new(cfg);
    for (q, cells) in preload_cells(16, 256) {
        buf.preload(q, cells);
    }
    let mut requests_issued = 0u64;
    for t in 0..16 * 256u64 {
        let q = LogicalQueueId::new((t % 16) as u32);
        if buf.requestable_cells(q) > 0 {
            requests_issued += 1;
            buf.step(None, Some(q));
        } else {
            buf.step(None, None);
        }
    }
    let s = buf.stats();
    println!(
        "requests {requests_issued}, grants {}, misses {}, sustained fraction of line rate {:.3} (worst-case model {:.3})",
        s.grants,
        s.misses,
        s.grants as f64 / requests_issued.max(1) as f64,
        buf.worst_case_throughput_fraction()
    );
}
