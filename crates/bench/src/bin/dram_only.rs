//! Experiment E1 (§1): peak vs. worst-case guaranteed bandwidth of DRAM-only
//! buffers, and how wider multi-chip buses hit diminishing returns.
//!
//! Thin wrapper: the experiment is defined once in [`bench::paper::dram_only`]
//! (also reachable as `pktbuf-lab paper dram_only`).

fn main() {
    bench::paper::dram_only();
}
