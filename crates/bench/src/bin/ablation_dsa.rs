//! Experiment E9 (ablation): how much of CFDS's behaviour comes from the
//! oldest-first reordering DSA, compared with a strict-FIFO scheduler (no
//! reordering) and a random-eligible scheduler (eligibility without age
//! order), under a bursty live workload that concentrates traffic on few
//! queues (and hence few bank groups).

use cfds::DsaPolicy;
use pktbuf::{CfdsBuffer, CfdsBufferOptions, PacketBuffer};
use pktbuf_model::{CfdsConfig, LineRate, LogicalQueueId};
use sim::report::TextTable;
use traffic::{AdversarialRoundRobin, ArrivalGenerator, BurstyArrivals, RequestGenerator};

fn run(policy: DsaPolicy) -> (String, pktbuf::BufferStats, usize, u64) {
    let cfg = CfdsConfig::builder()
        .line_rate(LineRate::Oc3072)
        .num_queues(32)
        .granularity(2)
        .rads_granularity(8)
        .num_banks(32)
        .physical_queue_factor(2)
        .build()
        .expect("valid configuration");
    let options = CfdsBufferOptions {
        dsa: policy,
        ..CfdsBufferOptions::default()
    };
    let mut buf = CfdsBuffer::with_options(cfg, options);
    let mut arrivals = BurstyArrivals::new(32, 64.0, 4.0, 99);
    let mut requests = AdversarialRoundRobin::new(32);
    let active = 20_000u64;
    for t in 0..(active + buf.pipeline_delay_slots() as u64 + 2_048) {
        let arrival = (t < active).then(|| arrivals.next(t)).flatten();
        let request = requests.next(t, &|q: LogicalQueueId| buf.requestable_cells(q));
        buf.step(arrival, request);
    }
    let label = match policy {
        DsaPolicy::OldestFirst => "oldest-first (paper)",
        DsaPolicy::FifoOnly => "strict FIFO (no reordering)",
        DsaPolicy::RandomEligible { .. } => "random eligible",
    };
    (
        label.to_string(),
        *buf.stats(),
        buf.peak_rr_occupancy(),
        buf.stats().max_dss_delay_slots,
    )
}

fn main() {
    println!("== E9: DRAM Scheduler Algorithm ablation (bursty live traffic, 32 queues) ==\n");
    let mut table = TextTable::new(vec![
        "DSA policy",
        "grants",
        "misses",
        "DSS stalls",
        "peak RR",
        "max DSS delay (slots)",
    ]);
    for policy in [
        DsaPolicy::OldestFirst,
        DsaPolicy::FifoOnly,
        DsaPolicy::RandomEligible { seed: 42 },
    ] {
        let (label, stats, peak_rr, max_delay) = run(policy);
        table.push_row(vec![
            label,
            format!("{}", stats.grants),
            format!("{}", stats.misses),
            format!("{}", stats.dss_stalls),
            format!("{peak_rr}"),
            format!("{max_delay}"),
        ]);
    }
    println!("{}", table.render());
    println!("The oldest-first issue-queue policy keeps the Requests Register and the worst-case");
    println!("DSS delay bounded; the alternatives waste issue opportunities on locked banks or");
    println!("let old requests starve, which shows up as larger RR occupancy, larger delays and");
    println!("eventually misses.");
}
