//! Experiment E9 (ablation): how much of CFDS's behaviour comes from the
//! oldest-first reordering DSA, compared with a strict-FIFO scheduler (no
//! reordering) and a random-eligible scheduler (eligibility without age
//! order), under a bursty live workload that concentrates traffic on few
//! queues (and hence few bank groups).
//!
//! Thin wrapper: the experiment is defined once in
//! [`bench::paper::ablation_dsa`] (also reachable as `pktbuf-lab paper
//! ablation_dsa`).

fn main() {
    bench::paper::ablation_dsa();
}
