//! Figure 10: SRAM area (head + tail) and most restrictive access time as a
//! function of the scheduler-visible delay, for RADS (b = 32) and CFDS
//! configurations (b = 16 … 1) at OC-3072, Q = 512, M = 256.
//!
//! Thin wrapper: the experiment is defined once in [`bench::paper::fig10`]
//! (also reachable as `pktbuf-lab paper fig10`).

fn main() {
    bench::paper::fig10();
}
