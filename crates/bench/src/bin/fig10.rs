//! Figure 10: SRAM area (head + tail) and most restrictive access time as a
//! function of the scheduler-visible delay, for RADS (b = 32) and CFDS
//! configurations (b = 16 … 1) at OC-3072, Q = 512, M = 256.

use bench::{lookahead_sweep, oc3072_parameters};
use cacti_lite::ProcessNode;
use pktbuf_model::CfdsConfig;
use sim::report::TextTable;
use sim::techeval::{cfds_point, rads_point, DesignPoint};

fn print_series(label: &str, points: &[DesignPoint]) {
    println!("-- {label} --\n");
    let mut table = TextTable::new(vec![
        "delay (us)",
        "head SRAM (cells)",
        "access time (ns)",
        "area h+t (cm2)",
        "meets 3.2 ns",
    ]);
    for p in points {
        table.push_row(vec![
            format!("{:.1}", p.delay_seconds * 1e6),
            format!("{}", p.head_sram_cells),
            format!("{:.2}", p.best_access_time_ns()),
            format!("{:.2}", p.total_area_cm2()),
            format!("{}", p.meets(pktbuf_model::LineRate::Oc3072)),
        ]);
    }
    println!("{}", table.render());
}

fn main() {
    let node = ProcessNode::node_130nm();
    let (rate, q, big_b, m) = oc3072_parameters();
    println!("== Figure 10: RADS vs CFDS SRAM cost as a function of delay (OC-3072, Q = 512) ==\n");

    let rads: Vec<DesignPoint> = lookahead_sweep(q, big_b, 6)
        .into_iter()
        .map(|l| rads_point(rate, q, big_b, l, &node))
        .collect();
    print_series("RADS (b = 32)", &rads);

    for b in [16usize, 8, 4, 2, 1] {
        let Ok(cfg) = CfdsConfig::builder()
            .line_rate(rate)
            .num_queues(q)
            .granularity(b)
            .rads_granularity(big_b)
            .num_banks(m)
            .build()
        else {
            continue;
        };
        let points: Vec<DesignPoint> = lookahead_sweep(q, b, 6)
            .into_iter()
            .map(|l| cfds_point(&cfg, l, &node))
            .collect();
        print_series(&format!("CFDS (b = {b})"), &points);
    }
    println!("Paper shape: CFDS with b = 4–8 meets the 3.2 ns target with ~10 us of delay and");
    println!("well under 1 cm2, while RADS needs > 50 us and still cannot reach 3.2 ns; too");
    println!("small a granularity (b = 1–2) loses the advantage again to reordering overhead.");
}
