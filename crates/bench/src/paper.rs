//! The paper's evaluation artefacts as callable functions.
//!
//! Every figure, table and validation experiment lives here exactly once;
//! the eight legacy binaries (`fig8`, `validate`, …) and the `pktbuf-lab paper`
//! subcommand are thin wrappers around these functions, so their stdout is
//! identical however an artefact is invoked.
//!
//! The slot-level experiments are expressed through the declarative spec
//! layer ([`sim::spec::ExperimentSpec`] + [`sim::lab::LabRunner`]) where the
//! engine's run shape matches the original experiment; the artefacts that
//! need bespoke stepping (utilisation probes, fixed-horizon drains) keep
//! their own loops but share the same configuration vocabulary.

use crate::{lookahead_sweep, oc3072_parameters, oc768_parameters};
use cacti_lite::ProcessNode;
use cfds::DsaPolicy;
use dram_sim::{MultiChipConfig, SdramChip};
use pktbuf::{CfdsBuffer, CfdsBufferOptions, DramOnlyBuffer, PacketBuffer};
use pktbuf_model::{Cell, CfdsConfig, LineRate, LogicalQueueId, RadsConfig};
use sim::lab::{ExperimentReport, LabRunner};
use sim::report::{format_bytes, TextTable};
use sim::scenario::{DesignKind, Workload};
use sim::spec::{ExperimentSpec, Sweep};
use sim::techeval::{cfds_point, max_queues_meeting_target, rads_point, DesignPoint};
use traffic::{
    preload_cells, AdversarialRoundRobin, ArrivalGenerator, BurstyArrivals, RequestGenerator,
};

/// The names `paper` artefacts are addressable by (CLI + CI).
pub const ARTEFACTS: [&str; 8] = [
    "dram_only",
    "fig8",
    "table2",
    "fig10",
    "fig11",
    "validate",
    "fragmentation",
    "ablation_dsa",
];

/// Runs the artefact with the given name.
///
/// Accepts the canonical names of [`ARTEFACTS`] with `-`/`_` used
/// interchangeably. Returns `None` for an unknown name, and otherwise
/// whether the artefact *passed*: `validate` fails when any run violates a
/// worst-case guarantee (so CI actually gates on the paper's claims); the
/// purely descriptive artefacts always pass.
pub fn run_artefact(name: &str) -> Option<bool> {
    match name.replace('-', "_").as_str() {
        "dram_only" => dram_only(),
        "fig8" => fig8(),
        "table2" => table2(),
        "fig10" => fig10(),
        "fig11" => fig11(),
        "validate" => {
            let (live, preloaded) = validate();
            let ok = live.aggregate.all_loss_free && preloaded.aggregate.all_loss_free;
            if !ok {
                eprintln!("validate: FAILED — a run violated the worst-case guarantees");
            }
            return Some(ok);
        }
        "fragmentation" => fragmentation(),
        "ablation_dsa" => ablation_dsa(),
        _ => return None,
    }
    Some(true)
}

/// Experiment E1 (§1): peak vs. worst-case guaranteed bandwidth of DRAM-only
/// buffers, and how wider multi-chip buses hit diminishing returns.
pub fn dram_only() {
    println!("== E1a: SDRAM chip model (16-bit, 100 MHz reference chip of [9]) ==\n");
    let chip = SdramChip::reference_16mb();
    let mut table = TextTable::new(vec![
        "chips",
        "bus bits",
        "peak Gb/s",
        "guaranteed Gb/s",
        "efficiency",
    ]);
    for chips in [1u32, 2, 4, 8, 16, 32] {
        let cfg = MultiChipConfig::new(chip, chips);
        table.push_row(vec![
            format!("{chips}"),
            format!("{}", chip.data_width_bits * chips),
            format!("{:.2}", cfg.peak_bandwidth_bps() / 1e9),
            format!("{:.2}", cfg.guaranteed_bandwidth_bps() / 1e9),
            format!("{:.2}", cfg.worst_case_efficiency()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Paper quotes: single chip 1.6 Gb/s peak vs 1.2 Gb/s guaranteed; 8 chips only 5.12 Gb/s.\n"
    );

    println!("== E1b: slot-level DRAM-only buffer under back-to-back requests ==\n");
    let cfg = RadsConfig {
        line_rate: LineRate::Oc3072,
        num_queues: 16,
        granularity: 32,
        lookahead: None,
        dram: Default::default(),
    };
    let mut buf = DramOnlyBuffer::new(cfg);
    for (q, cells) in preload_cells(16, 256) {
        buf.preload(q, cells);
    }
    let mut requests_issued = 0u64;
    for t in 0..16 * 256u64 {
        let q = LogicalQueueId::new((t % 16) as u32);
        if buf.requestable_cells(q) > 0 {
            requests_issued += 1;
            buf.step(None, Some(q));
        } else {
            buf.step(None, None);
        }
    }
    let s = buf.stats();
    println!(
        "requests {requests_issued}, grants {}, misses {}, sustained fraction of line rate {:.3} (worst-case model {:.3})",
        s.grants,
        s.misses,
        s.grants as f64 / requests_issued.max(1) as f64,
        buf.worst_case_throughput_fraction()
    );
}

fn fig8_panel(rate: LineRate, q: usize, big_b: usize, node: &ProcessNode) {
    use sram_buf::SramImplKind;
    println!(
        "-- {rate}: Q = {q}, B = {big_b} (slot = {:.1} ns) --\n",
        rate.slot_duration().as_ns()
    );
    let mut table = TextTable::new(vec![
        "lookahead (slots)",
        "h-SRAM size",
        "CAM access (ns)",
        "CAM area (cm2)",
        "LL time-mux access (ns)",
        "LL time-mux area (cm2)",
    ]);
    for lookahead in lookahead_sweep(q, big_b, 10) {
        let p = rads_point(rate, q, big_b, lookahead, node);
        let cam = p.head_impl(SramImplKind::GlobalCam);
        let ll = p.head_impl(SramImplKind::UnifiedLinkedListTimeMux);
        table.push_row(vec![
            format!("{lookahead}"),
            format_bytes((p.head_sram_cells * 64) as f64),
            format!("{:.2}", cam.access_time_ns),
            format!("{:.3}", cam.area_cm2),
            format!("{:.2}", ll.access_time_ns),
            format!("{:.3}", ll.area_cm2),
        ]);
    }
    println!("{}", table.render());
}

/// Figure 8: RADS h-SRAM access time and area as a function of the lookahead,
/// at OC-768 and OC-3072.
pub fn fig8() {
    let node = ProcessNode::node_130nm();
    println!("== Figure 8: RADS SRAM cost vs. lookahead (0.13 um) ==\n");
    let (rate768, q768, b768) = oc768_parameters();
    fig8_panel(rate768, q768, b768, &node);
    let (rate3072, q3072, b3072, _) = oc3072_parameters();
    fig8_panel(rate3072, q3072, b3072, &node);
    println!("Paper shape: OC-768 meets its 12.8 ns slot easily with ~0.1 cm2; at OC-3072 no");
    println!("implementation reaches the 3.2 ns slot and the areas approach or exceed 1 cm2.");
}

fn table2_row(rate: LineRate, q: usize, big_b: usize, m: usize) {
    use cfds::sizing::{rr_size, scheduling_time_ns};
    println!("-- {rate}: Q = {q}, B = {big_b}, M = {m} --\n");
    let mut table = TextTable::new(vec!["b", "RR size (entries)", "scheduling time (ns)"]);
    for b in [32usize, 16, 8, 4, 2, 1] {
        if b > big_b || !big_b.is_multiple_of(b) || !m.is_multiple_of(big_b / b) {
            continue;
        }
        let cfg = CfdsConfig::builder()
            .line_rate(rate)
            .num_queues(q)
            .granularity(b)
            .rads_granularity(big_b)
            .num_banks(m)
            .build()
            .expect("valid configuration");
        table.push_row(vec![
            format!("{b}"),
            format!("{}", rr_size(&cfg)),
            format!("{:.1}", scheduling_time_ns(&cfg)),
        ]);
    }
    println!("{}", table.render());
}

/// Table 2: Requests-Register size and scheduling time vs. granularity `b`.
pub fn table2() {
    println!("== Table 2: Requests Register size and scheduling time ==\n");
    table2_row(LineRate::Oc768, 128, 8, 256);
    table2_row(LineRate::Oc3072, 512, 32, 256);
    println!("Paper (OC-3072): RR = 0, 8, 64, 256, 1024, 4096 for b = 32…1;");
    println!("our closed form matches for b <= 8 and reports the conservative bound at b = 16.");
    println!("Reference point: the Alpha 21264 selects from a 20-entry window in ~1 ns (0.35 um).");
}

fn fig10_series(label: &str, points: &[DesignPoint]) {
    println!("-- {label} --\n");
    let mut table = TextTable::new(vec![
        "delay (us)",
        "head SRAM (cells)",
        "access time (ns)",
        "area h+t (cm2)",
        "meets 3.2 ns",
    ]);
    for p in points {
        table.push_row(vec![
            format!("{:.1}", p.delay_seconds * 1e6),
            format!("{}", p.head_sram_cells),
            format!("{:.2}", p.best_access_time_ns()),
            format!("{:.2}", p.total_area_cm2()),
            format!("{}", p.meets(pktbuf_model::LineRate::Oc3072)),
        ]);
    }
    println!("{}", table.render());
}

/// Figure 10: RADS vs. CFDS SRAM cost as a function of the scheduler-visible
/// delay at OC-3072.
pub fn fig10() {
    let node = ProcessNode::node_130nm();
    let (rate, q, big_b, m) = oc3072_parameters();
    println!("== Figure 10: RADS vs CFDS SRAM cost as a function of delay (OC-3072, Q = 512) ==\n");

    let rads: Vec<DesignPoint> = lookahead_sweep(q, big_b, 6)
        .into_iter()
        .map(|l| rads_point(rate, q, big_b, l, &node))
        .collect();
    fig10_series("RADS (b = 32)", &rads);

    for b in [16usize, 8, 4, 2, 1] {
        let Ok(cfg) = CfdsConfig::builder()
            .line_rate(rate)
            .num_queues(q)
            .granularity(b)
            .rads_granularity(big_b)
            .num_banks(m)
            .build()
        else {
            continue;
        };
        let points: Vec<DesignPoint> = lookahead_sweep(q, b, 6)
            .into_iter()
            .map(|l| cfds_point(&cfg, l, &node))
            .collect();
        fig10_series(&format!("CFDS (b = {b})"), &points);
    }
    println!("Paper shape: CFDS with b = 4–8 meets the 3.2 ns target with ~10 us of delay and");
    println!("well under 1 cm2, while RADS needs > 50 us and still cannot reach 3.2 ns; too");
    println!("small a granularity (b = 1–2) loses the advantage again to reordering overhead.");
}

/// Figure 11: the maximum number of queues each configuration supports at
/// OC-3072 within the 3.2 ns access-time constraint.
pub fn fig11() {
    let node = ProcessNode::node_130nm();
    println!(
        "== Figure 11: maximum number of queues meeting the OC-3072 access-time constraint ==\n"
    );
    let mut table = TextTable::new(vec!["b", "design", "max queues"]);
    let mut rads_max = 0usize;
    let mut best_cfds = 0usize;
    for b in [32usize, 16, 8, 4, 2, 1] {
        let design = if b == 32 { "RADS" } else { "CFDS" };
        let qmax = max_queues_meeting_target(LineRate::Oc3072, b, 32, 256, &node);
        if b == 32 {
            rads_max = qmax;
        } else {
            best_cfds = best_cfds.max(qmax);
        }
        table.push_row(vec![format!("{b}"), design.to_string(), format!("{qmax}")]);
    }
    println!("{}", table.render());
    println!(
        "CFDS supports {:.1}x more queues than RADS at its best granularity ({} vs {}).",
        best_cfds as f64 / rads_max.max(1) as f64,
        best_cfds,
        rads_max
    );
    println!("Paper: roughly 6x (up to ~850 physical queues vs ~140 for RADS).");
}

/// The declarative spec behind the live-workload half of [`validate`]:
/// RADS × CFDS under every workload at the standard validation design point.
pub fn validate_spec() -> ExperimentSpec {
    ExperimentSpec::builder()
        .name("validate-live")
        .designs([DesignKind::Rads, DesignKind::Cfds])
        .workloads(Workload::all())
        .num_queues(Sweep::fixed(32))
        .granularity(Sweep::fixed(4))
        .rads_granularity(Sweep::fixed(16))
        .num_banks(Sweep::fixed(64))
        .arrival_slots(20_000)
        .seeds([7])
        .build()
        .expect("the validation spec is valid")
}

/// The preloaded adversarial-drain half of [`validate`] (the paper's worst
/// case) at a larger scale.
pub fn validate_preload_spec() -> ExperimentSpec {
    ExperimentSpec::builder()
        .name("validate-preloaded")
        .designs([DesignKind::Rads, DesignKind::Cfds])
        .workloads([Workload::AdversarialRoundRobin])
        .num_queues(Sweep::fixed(64))
        .granularity(Sweep::fixed(4))
        .rads_granularity(Sweep::fixed(16))
        .num_banks(Sweep::fixed(64))
        .preload_cells_per_queue(128)
        .seeds([11])
        .build()
        .expect("the preloaded validation spec is valid")
}

/// Experiment E7: slot-level validation of the worst-case claims of §5 —
/// zero misses, zero drops, FIFO order, zero bank conflicts and bounded
/// Requests-Register occupancy — for RADS and CFDS under every workload.
///
/// Fully spec-driven: both halves expand through [`validate_spec`] /
/// [`validate_preload_spec`] and run on a [`LabRunner`]. Returns the two
/// reports so callers (CI, tests) can persist or assert on them.
pub fn validate() -> (ExperimentReport, ExperimentReport) {
    println!("== E7: slot-level validation of the worst-case guarantees ==\n");
    let runner = LabRunner::new();
    let live = runner.run(&validate_spec()).expect("validation spec runs");
    let preloaded = runner
        .run(&validate_preload_spec())
        .expect("preloaded validation spec runs");
    let mut table = TextTable::new(vec![
        "design",
        "workload",
        "grants",
        "misses",
        "drops",
        "conflicts",
        "peak h-SRAM",
        "peak RR",
        "loss-free",
    ]);
    for run in &live.runs {
        table.push_row(validate_row(run, false));
    }
    for run in &preloaded.runs {
        table.push_row(validate_row(run, true));
    }
    println!("{}", table.render());
    println!("Every row must report zero misses, drops and conflicts (the DRAM-only baseline,");
    println!("by contrast, misses heavily — see the `dram_only` binary).");
    (live, preloaded)
}

fn validate_row(run: &sim::lab::RunRecord, preloaded: bool) -> Vec<String> {
    let r = &run.report;
    let design = if preloaded {
        format!("{} (preloaded)", r.design)
    } else {
        r.design.to_owned()
    };
    vec![
        design,
        format!("{:?}", run.scenario.workload),
        format!("{}", r.stats.grants),
        format!("{}", r.stats.misses),
        format!("{}", r.stats.drops),
        format!("{}", r.stats.bank_conflicts),
        format!("{}", r.stats.peak_head_sram_cells),
        format!("{}", r.stats.peak_rr_entries),
        format!("{}", r.stats.is_loss_free()),
    ]
}

fn fragmentation_run(oversubscription: usize, hot_queues: usize) -> (f64, usize, u64) {
    let cfg = CfdsConfig::builder()
        .line_rate(LineRate::Oc3072)
        .num_queues(32)
        .granularity(2)
        .rads_granularity(8)
        .num_banks(32)
        .physical_queue_factor(oversubscription)
        .build()
        .expect("valid configuration");
    // Small DRAM so that per-group capacity actually binds: 512 blocks total.
    let options = CfdsBufferOptions {
        dram_capacity_cells: Some(1024),
        ..CfdsBufferOptions::default()
    };
    let mut buf = CfdsBuffer::with_options(cfg, options);
    // Feed cells only to the hot queues through the tail path until writebacks
    // start being blocked or the DRAM is effectively full.
    let mut seqs = vec![0u64; hot_queues];
    for t in 0..40_000u64 {
        let qi = (t % hot_queues as u64) as usize;
        let cell = Cell::new(LogicalQueueId::new(qi as u32), seqs[qi], t);
        seqs[qi] += 1;
        buf.step(Some(cell), None);
        if buf.dram_utilisation() > 0.99 {
            break;
        }
    }
    let max_chain = (0..hot_queues)
        .map(|q| buf.renaming_chain_length(LogicalQueueId::new(q as u32)))
        .max()
        .unwrap_or(0);
    (
        buf.dram_utilisation(),
        max_chain,
        buf.stats().blocked_writebacks,
    )
}

/// Experiment E8 (§6): DRAM fragmentation with and without queue renaming.
pub fn fragmentation() {
    println!("== E8: DRAM fragmentation and queue renaming (32 queues, 16 groups, tiny DRAM) ==\n");
    let num_groups = 16.0f64;
    let mut table = TextTable::new(vec![
        "physical queues / logical",
        "hot queues",
        "static assignment limit",
        "utilisation with renaming",
        "max renaming chain",
        "blocked writebacks",
    ]);
    for (oversub, hot) in [(1usize, 1usize), (1, 2), (2, 1), (2, 2), (4, 4)] {
        let (util, chain, blocked) = fragmentation_run(oversub, hot);
        // Without renaming a logical queue is pinned to one group, so `hot`
        // active queues can use at most hot/G of the DRAM.
        let static_limit = (hot as f64 / num_groups).min(1.0);
        table.push_row(vec![
            format!("{oversub}x"),
            format!("{hot}"),
            format!("{:.2}", static_limit),
            format!("{:.2}", util),
            format!("{chain}"),
            format!("{blocked}"),
        ]);
    }
    println!("{}", table.render());
    println!("With the static queue-to-group assignment alone, `hot` backlogged queues could use");
    println!("at most hot/G of the DRAM (the fragmentation problem of §6). The renaming layer");
    println!("chains physical queues across groups and reaches essentially full utilisation in");
    println!("every case, while the chain stays short and names are recycled.");
}

fn ablation_run(policy: DsaPolicy) -> (String, pktbuf::BufferStats, usize, u64) {
    let cfg = CfdsConfig::builder()
        .line_rate(LineRate::Oc3072)
        .num_queues(32)
        .granularity(2)
        .rads_granularity(8)
        .num_banks(32)
        .physical_queue_factor(2)
        .build()
        .expect("valid configuration");
    let options = CfdsBufferOptions {
        dsa: policy,
        ..CfdsBufferOptions::default()
    };
    let mut buf = CfdsBuffer::with_options(cfg, options);
    let mut arrivals = BurstyArrivals::new(32, 64.0, 4.0, 99);
    let mut requests = AdversarialRoundRobin::new(32);
    let active = 20_000u64;
    for t in 0..(active + buf.pipeline_delay_slots() as u64 + 2_048) {
        let arrival = (t < active).then(|| arrivals.next(t)).flatten();
        let request = requests.next(t, &|q: LogicalQueueId| buf.requestable_cells(q));
        buf.step(arrival, request);
    }
    let label = match policy {
        DsaPolicy::OldestFirst => "oldest-first (paper)",
        DsaPolicy::FifoOnly => "strict FIFO (no reordering)",
        DsaPolicy::RandomEligible { .. } => "random eligible",
    };
    (
        label.to_string(),
        *buf.stats(),
        buf.peak_rr_occupancy(),
        buf.stats().max_dss_delay_slots,
    )
}

/// Experiment E9 (ablation): oldest-first vs. strict-FIFO vs. random-eligible
/// DRAM scheduling under bursty live traffic.
pub fn ablation_dsa() {
    println!("== E9: DRAM Scheduler Algorithm ablation (bursty live traffic, 32 queues) ==\n");
    let mut table = TextTable::new(vec![
        "DSA policy",
        "grants",
        "misses",
        "DSS stalls",
        "peak RR",
        "max DSS delay (slots)",
    ]);
    for policy in [
        DsaPolicy::OldestFirst,
        DsaPolicy::FifoOnly,
        DsaPolicy::RandomEligible { seed: 42 },
    ] {
        let (label, stats, peak_rr, max_delay) = ablation_run(policy);
        table.push_row(vec![
            label,
            format!("{}", stats.grants),
            format!("{}", stats.misses),
            format!("{}", stats.dss_stalls),
            format!("{peak_rr}"),
            format!("{max_delay}"),
        ]);
    }
    println!("{}", table.render());
    println!("The oldest-first issue-queue policy keeps the Requests Register and the worst-case");
    println!("DSS delay bounded; the alternatives waste issue opportunities on locked banks or");
    println!("let old requests starve, which shows up as larger RR occupancy, larger delays and");
    println!("eventually misses.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artefact_names_dispatch() {
        assert_eq!(run_artefact("nonexistent"), None);
        assert_eq!(ARTEFACTS.len(), 8);
    }

    #[test]
    fn validation_specs_expand_to_the_legacy_run_sets() {
        let live = validate_spec().expand().unwrap();
        assert_eq!(live.runs.len(), 2 * 5, "2 designs x 5 workloads");
        assert_eq!(live.skipped_invalid, 0);
        let preloaded = validate_preload_spec().expand().unwrap();
        assert_eq!(preloaded.runs.len(), 2);
        assert!(preloaded
            .runs
            .iter()
            .all(|r| r.arrival_slots == 0 && r.preload_cells_per_queue == 128));
    }
}
