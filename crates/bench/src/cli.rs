//! Shared guard rails of the `pktbuf-lab` subcommands.
//!
//! Every subcommand that writes machine-readable artifacts shares the same
//! failure modes, and each used to carry its own copy of the protections:
//!
//! * **stdout conflicts** — `--json -` and `--csv -` cannot both stream to
//!   stdout (the concatenation is neither valid JSON nor valid CSV), and a
//!   stdout-bound artifact must move the human summary to stderr. Checked
//!   *before* a run starts, so a long sweep is never discarded on output.
//! * **history collisions** — re-recording a `--tag` that a trajectory
//!   already carries would make the per-PR performance history ambiguous;
//!   the guard refuses unless `--force` is passed.
//!
//! [`OutputOptions`] and [`guard_fresh_tag`] centralise both, next to the
//! artifact read/write and flag-parsing helpers every subcommand uses, so a
//! new subcommand (e.g. `clos`) inherits the full guard set by construction.

use serde_json::Value;
use sim::spec::Sweep;

/// Parsed `--threads`/`--json`/`--csv` output options shared by the `run`,
/// `sweep`, `fabric` and `clos` subcommands.
#[derive(Debug, Clone, Default)]
pub struct OutputOptions {
    /// Worker threads for the lab runner (`None` = all cores).
    pub threads: Option<usize>,
    /// JSON report destination (`'-'` = stdout).
    pub json: Option<String>,
    /// CSV report destination (`'-'` = stdout).
    pub csv: Option<String>,
}

impl OutputOptions {
    /// Whether a machine-readable artifact targets stdout (`'-'`) — the
    /// human summary then moves to stderr so the stream stays valid
    /// JSON/CSV. Checked *before* a run starts: two artifacts cannot share
    /// stdout (the concatenation would be neither), and discovering that
    /// only after a long sweep would discard it.
    ///
    /// # Errors
    ///
    /// Errors when both `--json -` and `--csv -` were requested.
    pub fn machine_stdout(&self) -> Result<bool, String> {
        if self.json.as_deref() == Some("-") && self.csv.as_deref() == Some("-") {
            return Err("--json - and --csv - cannot both write to stdout".to_owned());
        }
        Ok(self.json.as_deref() == Some("-") || self.csv.as_deref() == Some("-"))
    }

    /// Writes the JSON/CSV artifacts that were requested; the renderers run
    /// lazily so an unrequested format costs nothing.
    ///
    /// # Errors
    ///
    /// Propagates [`write_artifact`] failures (unwritable destination).
    pub fn write_reports(
        &self,
        what: &str,
        json: impl FnOnce() -> String,
        csv: impl FnOnce() -> String,
    ) -> Result<(), String> {
        if let Some(path) = &self.json {
            write_artifact(path, &json(), &format!("{what}JSON report"))?;
        }
        if let Some(path) = &self.csv {
            write_artifact(path, &csv(), &format!("{what}CSV report"))?;
        }
        Ok(())
    }
}

/// Writes one artifact to `path`, or to stdout for `'-'` (the status line
/// then goes to stderr, keeping stdout machine-clean).
///
/// # Errors
///
/// Errors when the destination file cannot be written.
pub fn write_artifact(path: &str, content: &str, what: &str) -> Result<(), String> {
    if path == "-" {
        println!("{content}");
        Ok(())
    } else {
        std::fs::write(path, content)
            .map_err(|e| format!("cannot write {what} to {path:?}: {e}"))?;
        eprintln!("wrote {what} to {path}");
        Ok(())
    }
}

/// Reads a spec's JSON text from a file path, or from stdin for `'-'`
/// (shared by the `run`/`sweep`, `fabric` and `clos` `--spec` flags).
///
/// # Errors
///
/// Errors when the file (or stdin) cannot be read.
pub fn read_spec_text(path: &str) -> Result<String, String> {
    if path == "-" {
        use std::io::Read as _;
        let mut buffer = String::new();
        std::io::stdin()
            .read_to_string(&mut buffer)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        Ok(buffer)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))
    }
}

/// Loads a JSON artifact (bench history, spec, …) from `path`.
///
/// # Errors
///
/// Errors when the file cannot be read or does not parse as JSON.
pub fn load_artifact(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path:?}: {e}"))
}

/// Whether a previously recorded artifact's trajectory already carries an
/// entry under `tag`.
pub fn trajectory_has_tag(artifact: &Value, tag: &str) -> bool {
    let Some(Value::Array(rows)) = artifact.as_object().and_then(|o| o.get("trajectory")) else {
        return false;
    };
    rows.iter().any(|row| {
        row.as_object()
            .and_then(|o| o.get("tag"))
            .and_then(Value::as_str)
            == Some(tag)
    })
}

/// The `--tag` re-recording guard: refuses to append a trajectory entry
/// under a tag the previous artifact already carries, unless `force`.
/// Run it *before* the (minutes-long) measurement, not after.
///
/// # Errors
///
/// Errors when `previous` already has an entry tagged `tag` and `force` is
/// not set.
pub fn guard_fresh_tag(previous: Option<&Value>, tag: &str, force: bool) -> Result<(), String> {
    if let Some(previous) = previous {
        if !force && trajectory_has_tag(previous, tag) {
            return Err(format!(
                "trajectory already has an entry tagged {tag:?}; re-recording would \
                 make the per-PR history ambiguous (pass --force to append anyway)"
            ));
        }
    }
    Ok(())
}

/// Parses one unsigned-integer flag value.
///
/// # Errors
///
/// Errors when `text` is not an unsigned integer, naming `flag`.
pub fn parse_int(text: &str, flag: &str) -> Result<u64, String> {
    text.trim()
        .parse()
        .map_err(|_| format!("{flag}: {text:?} is not an unsigned integer"))
}

/// Parses one sweep flag value (`v`, `v1,v2,…`, `a..b*factor`, `a..b+step`).
///
/// # Errors
///
/// Errors when `text` is not valid sweep syntax, naming `flag`.
pub fn parse_sweep(text: &str, flag: &str) -> Result<Sweep, String> {
    text.parse().map_err(|e| format!("{flag}: {e}"))
}

/// Parses one comma-separated list flag value into any `FromStr` item type.
///
/// # Errors
///
/// Errors when any item fails to parse or the list is empty, naming `what`.
pub fn parse_list<T: std::str::FromStr>(text: &str, what: &str) -> Result<Vec<T>, String>
where
    T::Err: std::fmt::Display,
{
    let items = text
        .split(',')
        .filter(|part| !part.trim().is_empty())
        .map(|part| part.trim().parse::<T>().map_err(|e| e.to_string()))
        .collect::<Result<Vec<T>, String>>()?;
    if items.is_empty() {
        Err(format!("empty {what} list"))
    } else {
        Ok(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn options(json: Option<&str>, csv: Option<&str>) -> OutputOptions {
        OutputOptions {
            threads: None,
            json: json.map(str::to_owned),
            csv: csv.map(str::to_owned),
        }
    }

    #[test]
    fn stdout_conflict_is_refused_before_any_run() {
        assert!(options(Some("-"), Some("-")).machine_stdout().is_err());
        assert!(!options(None, None).machine_stdout().unwrap());
        assert!(options(Some("-"), None).machine_stdout().unwrap());
        assert!(options(None, Some("-")).machine_stdout().unwrap());
        assert!(!options(Some("a.json"), Some("b.csv"))
            .machine_stdout()
            .unwrap());
    }

    #[test]
    fn fresh_tag_guard_refuses_duplicates_unless_forced() {
        let artifact = serde_json::from_str::<Value>(
            "{\"trajectory\":[{\"tag\":\"PR-6\"},{\"tag\":\"baseline\"}]}",
        )
        .unwrap();
        assert!(trajectory_has_tag(&artifact, "PR-6"));
        assert!(!trajectory_has_tag(&artifact, "PR-7"));
        assert!(guard_fresh_tag(Some(&artifact), "PR-6", false).is_err());
        assert!(guard_fresh_tag(Some(&artifact), "PR-6", true).is_ok());
        assert!(guard_fresh_tag(Some(&artifact), "PR-7", false).is_ok());
        assert!(guard_fresh_tag(None, "PR-6", false).is_ok());
        // No trajectory section: nothing to collide with.
        let empty = serde_json::from_str::<Value>("{}").unwrap();
        assert!(guard_fresh_tag(Some(&empty), "PR-6", false).is_ok());
    }

    #[test]
    fn flag_parsers_name_the_flag_in_errors() {
        assert_eq!(parse_int("42", "--slots").unwrap(), 42);
        assert!(parse_int("x", "--slots").unwrap_err().contains("--slots"));
        assert!(parse_sweep("4..16*2", "--ports").is_ok());
        assert!(parse_sweep("nope", "--ports")
            .unwrap_err()
            .contains("--ports"));
        let loads: Vec<u64> = parse_list("25, 95", "load").unwrap();
        assert_eq!(loads, [25, 95]);
        assert!(parse_list::<u64>(" , ", "load")
            .unwrap_err()
            .contains("load"));
    }
}
