//! Shared helpers for the experiment binaries and Criterion benches that
//! regenerate every table and figure of the paper's evaluation.
//!
//! | Binary          | Paper artefact | What it prints |
//! |-----------------|----------------|----------------|
//! | `dram_only`     | §1 motivation  | peak vs. guaranteed SDRAM bandwidth, 1–32 chips |
//! | `fig8`          | Figure 8       | RADS h-SRAM access time and area vs. lookahead |
//! | `table2`        | Table 2        | Requests-Register size and scheduling time vs. `b` |
//! | `fig10`         | Figure 10      | RADS vs. CFDS SRAM area and access time vs. delay |
//! | `fig11`         | Figure 11      | maximum number of queues under the 3.2 ns constraint |
//! | `validate`      | §5 claims      | slot-level zero-miss / conflict-free validation |
//! | `fragmentation` | §6             | DRAM utilisation with and without renaming |
//! | `ablation_dsa`  | design ablation| oldest-first vs. FIFO vs. random DSA |

#![forbid(unsafe_code)]

use pktbuf_model::{CfdsConfig, LineRate};

pub mod cli;
pub mod hotpath;
pub mod paper;

/// The OC-768 evaluation point of §7 (Q = 128, B = 8).
pub fn oc768_parameters() -> (LineRate, usize, usize) {
    (LineRate::Oc768, 128, 8)
}

/// The OC-3072 evaluation point of §7/§8 (Q = 512, B = 32, M = 256).
pub fn oc3072_parameters() -> (LineRate, usize, usize, usize) {
    (LineRate::Oc3072, 512, 32, 256)
}

/// CFDS configurations swept in Figures 10/11 and Table 2 (granularity `b`).
pub fn oc3072_cfds_sweep() -> Vec<CfdsConfig> {
    let (rate, q, big_b, m) = oc3072_parameters();
    [16usize, 8, 4, 2, 1]
        .iter()
        .filter_map(|b| {
            CfdsConfig::builder()
                .line_rate(rate)
                .num_queues(q)
                .granularity(*b)
                .rads_granularity(big_b)
                .num_banks(m)
                .build()
                .ok()
        })
        .collect()
}

/// Evenly spaced lookahead sweep between a small value and the ECQF maximum.
pub fn lookahead_sweep(num_queues: usize, granularity: usize, points: usize) -> Vec<usize> {
    let max = mma::sizing::min_lookahead(num_queues, granularity);
    let min = (num_queues / 2).max(1);
    (0..points)
        .map(|i| min + (max - min) * i / (points - 1).max(1))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_are_well_formed() {
        assert_eq!(oc3072_cfds_sweep().len(), 5);
        let sweep = lookahead_sweep(512, 32, 8);
        assert_eq!(sweep.len(), 8);
        assert!(sweep.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*sweep.last().unwrap(), 512 * 31 + 1);
        let (_, q, b) = oc768_parameters();
        assert_eq!((q, b), (128, 8));
    }
}
