//! The hot-path benchmark suite behind `pktbuf-lab bench`.
//!
//! Runs a fixed paper-scale workload matrix through the public [`Scenario`]
//! API — every design × every workload, plus two batch-engine showcase
//! points per design (a preloaded drain and a long-idle-gap trickle) — and
//! measures **both** engines per point: the chunked batch engine
//! (`run_chunked`, the production path) and the per-slot reference engine.
//! Wall-clock slots/sec and the process peak RSS land in a
//! `BENCH_hotpath.json` artifact so that every future change has a recorded
//! performance trajectory to compare against.
//!
//! Auxiliary modes close the loop:
//!
//! * `--before FILE` embeds a previously recorded run as the `"before"`
//!   section and computes per-entry speedups (used once per optimisation PR
//!   to pin the before/after pair into the committed artifact);
//! * `--compare FILE` checks the fresh run against a committed artifact and
//!   fails when any entry regressed by more than `--max-regression` percent
//!   (used by CI with `--smoke`);
//! * `--tag TAG` appends a trajectory entry (both engines' slots/sec per
//!   point, peak RSS, median speedup vs the previous entry) to the artifact
//!   instead of discarding history.
//!
//! Independent of any flag, a run **fails** if the chunked engine is slower
//! than the per-slot engine on any suite point (beyond a fixed 10% same-run
//! noise floor — batching must never pessimise) and asserts that both
//! engines simulated identical slot and grant counts.

use crate::cli::{guard_fresh_tag, load_artifact};
use serde_json::{Map, Number, Value};
use sim::clos::{ClosScenario, ObsScenario, TransportScenario};
use sim::fabric::{ArbiterChoice, FabricDesign, FabricScenario, FabricWorkload};
use sim::scenario::{DesignKind, Scenario, Workload};
use sim::SimulationEngine;
use std::time::Instant;
use traffic::{AdversarialRoundRobin, BurstyArrivals};

/// Version tag of the JSON artifact layout. v2: per-entry dual-engine
/// measurements, showcase points, and the `trajectory` section. v3: fabric
/// sections (`fabric_results`, `fabric_smoke_results`, and per-trajectory
/// `fabric_slots_per_sec`). v4: three-stage Clos sections (`clos_results`,
/// `clos_smoke_results`, and per-trajectory `clos_port_slots_per_sec`). v5:
/// the closed-loop transport Clos point (`+transport` key suffix, per-row
/// `transport`/`transport_ok` flags, and the exactly-once/conservation
/// standing gates over it). v6: the `obs_overhead` section — the headline
/// Clos point measured with the probes off and with the standard obs probe
/// set (`ObsScenario::standard`) armed, under a standing gate that the
/// instrumented run costs at most `OBS_OVERHEAD_MAX_PCT` percent.
pub const BENCH_SCHEMA: u64 = 6;

/// Default artifact path, relative to the invocation directory.
pub const BENCH_DEFAULT_OUT: &str = "BENCH_hotpath.json";

/// The headline entry the acceptance criteria gate on.
pub const BENCH_HEADLINE: &str = "CFDS/adversarial-round-robin";

/// Options of one `pktbuf-lab bench` invocation.
#[derive(Debug, Clone, Default)]
pub struct BenchOptions {
    /// Short runs (CI): fewer slots per run, same matrix.
    pub smoke: bool,
    /// Where to write the JSON artifact (`None` = don't write).
    pub out: Option<String>,
    /// Previously recorded artifact to embed as the `"before"` section.
    pub before: Option<String>,
    /// Committed artifact to regression-check the fresh run against.
    pub compare: Option<String>,
    /// Maximum tolerated slots/sec regression, in percent (default 15).
    pub max_regression_pct: Option<f64>,
    /// Repeat the whole matrix this many times and keep each entry's best
    /// (minimum-time) measurement — the standard throughput estimator under
    /// scheduler noise. Defaults to 1; the committed artifact uses 3.
    pub repeat: Option<usize>,
    /// Append a trajectory entry under this tag (e.g. `PR-4`) instead of
    /// dropping the previous artifact's history.
    pub tag: Option<String>,
    /// Allow `--tag` to overwrite-append even when the tag already exists in
    /// the artifact's trajectory (re-running a recording normally refuses,
    /// because two entries under one tag make the per-PR history ambiguous).
    pub force: bool,
}

/// Which engine loop a measurement drove.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Engine {
    Chunked,
    PerSlot,
}

/// One point of the suite: the standard matrix runs each design × workload
/// live; the showcase points exercise the batch engine's structural wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PointKind {
    /// Live arrivals + closed-loop requests through the `Scenario` API.
    Live(Workload),
    /// Preloaded adversarial drain (no arrivals): the chunked drain loop.
    DrainPreload,
    /// Long-idle-gap trickle (mean 32-cell bursts, mean 2048-slot gaps):
    /// most chunks carry no work at all and collapse to `advance_idle`.
    BurstyIdle,
}

impl PointKind {
    fn workload_name(self) -> String {
        match self {
            PointKind::Live(w) => w.to_string(),
            PointKind::DrainPreload => "adversarial-drain".to_owned(),
            PointKind::BurstyIdle => "bursty-idle".to_owned(),
        }
    }
}

fn suite_points() -> Vec<(DesignKind, PointKind)> {
    let mut points = Vec::new();
    for design in DesignKind::all() {
        for workload in Workload::all() {
            points.push((design, PointKind::Live(workload)));
        }
    }
    for design in DesignKind::all() {
        points.push((design, PointKind::DrainPreload));
        points.push((design, PointKind::BurstyIdle));
    }
    points
}

/// One measured run of the suite (both engines).
#[derive(Debug, Clone)]
struct BenchEntry {
    design: DesignKind,
    kind: PointKind,
    slots: u64,
    grants: u64,
    chunked_seconds: f64,
    per_slot_seconds: f64,
}

impl BenchEntry {
    fn key(&self) -> String {
        format!("{}/{}", self.design, self.kind.workload_name())
    }

    fn chunked_slots_per_sec(&self) -> f64 {
        slots_per_sec(self.slots, self.chunked_seconds)
    }

    fn per_slot_slots_per_sec(&self) -> f64 {
        slots_per_sec(self.slots, self.per_slot_seconds)
    }
}

fn slots_per_sec(slots: u64, seconds: f64) -> f64 {
    if seconds <= 0.0 {
        0.0
    } else {
        slots as f64 / seconds
    }
}

/// Logical queues of the fixed suite configuration.
const SUITE_QUEUES: usize = 64;

/// The fixed suite configuration: the §7 validation design point, scaled to
/// [`SUITE_QUEUES`] queues so a full run finishes in minutes while still
/// exercising the renaming and scheduling layers at depth.
fn suite_scenario(design: DesignKind, kind: PointKind, slots: u64) -> Scenario {
    let (workload, preload, arrival_slots) = match kind {
        PointKind::Live(workload) => (workload, 0, slots),
        // The preload is sized so the drain runs a comparable number of
        // slots: Q × cells/queue ≈ the live points' slot count.
        PointKind::DrainPreload => (
            Workload::AdversarialRoundRobin,
            slots / SUITE_QUEUES as u64,
            0,
        ),
        // Arrivals come from a custom generator; the scenario only shapes
        // the buffer.
        PointKind::BurstyIdle => (Workload::Bursty, 0, slots),
    };
    Scenario {
        design,
        workload,
        num_queues: SUITE_QUEUES,
        granularity: 4,
        rads_granularity: 16,
        num_banks: 64,
        preload_cells_per_queue: preload,
        arrival_slots,
        seed: 1,
        ..Scenario::small_cfds()
    }
}

/// Active slots per run: ≥ 1M at full scale, a fast smoke subset for CI.
/// Smoke runs still need tens of milliseconds per entry — much shorter and
/// fixed setup cost plus scheduler jitter dominate the measurement.
fn slots_for(smoke: bool) -> u64 {
    if smoke {
        250_000
    } else {
        1_000_000
    }
}

/// Fixed noise floor of the same-run chunked-vs-per-slot gate, in percent.
/// Both engines are measured back-to-back (best-of-N), so only scheduler
/// jitter separates them; a genuine batching pessimisation (the chunked loop
/// doing *more* work than the per-slot loop) shows up well beyond this.
///
/// 12% rather than 10%: the RNG-request workloads (e.g.
/// DRAM-only/uniform-random) cannot skip their per-slot draws, so chunked ≈
/// per-slot there *by design*, and those parity points swing under scheduler
/// jitter. Narrowed from 15% in PR 6: CI runs the gate with `--repeat 2`
/// (best-of-N), which pulled the worst observed single-run parity swing from
/// 0.85× to 0.98×, so 12% keeps margin without masking a real batching
/// pessimisation (which shows up at multiples of this on the points where
/// batching matters). See the `notes` section of `BENCH_hotpath.json` for
/// the PR-5 0.88× investigation that motivated the re-measurement.
const CHUNKED_GATE_NOISE_PCT: f64 = 12.0;

/// Entries whose chunked run finished faster than this are excluded from the
/// *cross-run* `--compare` gate: a handful of milliseconds of wall time is
/// jitter-dominated, and the chunked engine pushed several suite points into
/// that regime (fast-forwarded smoke runs complete in 3–10 ms). They remain
/// covered by the same-run chunked-vs-per-slot gate, whose slow side is
/// always a full-length measurement.
const MIN_COMPARE_SECONDS: f64 = 0.025;

/// Mean burst length (cells) of the bursty-idle showcase point.
const IDLE_BURST_CELLS: f64 = 32.0;
/// Mean idle gap (slots) of the bursty-idle showcase point: long enough that
/// most chunks carry no arrival and no requestable cell.
const IDLE_GAP_SLOTS: f64 = 2048.0;

/// An arrival generator that never produces a cell (the drain showcase
/// points run on preload only).
#[derive(Debug)]
struct NoArrivals {
    num_queues: usize,
}

impl traffic::ArrivalGenerator for NoArrivals {
    fn next(&mut self, _slot: u64) -> Option<pktbuf_model::Cell> {
        None
    }

    fn num_queues(&self) -> usize {
        self.num_queues
    }

    fn name(&self) -> &'static str {
        "preload-only"
    }
}

/// Runs one suite point through one engine and returns `(slots, grants,
/// seconds)`.
///
/// Only the engine run is timed: buffer construction — including the
/// ~`slots` cells of preload the drain points carry — happens before the
/// clock starts, so the chunked/per-slot ratio is not diluted by shared
/// setup cost.
fn run_point(design: DesignKind, kind: PointKind, slots: u64, engine: Engine) -> (u64, u64, f64) {
    let scenario = suite_scenario(design, kind, slots);
    let q = scenario.num_queues;
    // Generators and the workload label per point kind; `Live` points go
    // through the Scenario API below instead.
    macro_rules! drive {
        ($buffer:expr, $arrivals:expr, $label:literal, $active:expr) => {{
            let mut buffer = $buffer;
            let mut arrivals = $arrivals;
            let mut requests = AdversarialRoundRobin::new(q);
            let engine_loop = SimulationEngine::new_mono(&mut buffer).with_workload_label($label);
            let start = Instant::now();
            let report = match engine {
                Engine::Chunked => engine_loop.run_chunked(&mut arrivals, &mut requests, $active),
                Engine::PerSlot => engine_loop.run(&mut arrivals, &mut requests, $active),
            };
            (
                report.slots,
                report.stats.grants,
                start.elapsed().as_secs_f64(),
            )
        }};
    }
    macro_rules! dispatch_design {
        ($arrivals:expr, $label:literal, $active:expr) => {
            match design {
                DesignKind::DramOnly => {
                    drive!(scenario.build_dram_only(), $arrivals, $label, $active)
                }
                DesignKind::Rads => drive!(scenario.build_rads(), $arrivals, $label, $active),
                DesignKind::Cfds => drive!(scenario.build_cfds(), $arrivals, $label, $active),
            }
        };
    }
    match kind {
        PointKind::Live(_) => {
            // Buffer construction for live points is trivial (no preload);
            // the Scenario API keeps the workload definitions in one place.
            let start = Instant::now();
            let report = match engine {
                Engine::Chunked => scenario.run(),
                Engine::PerSlot => scenario.run_per_slot_with_grant_log(false),
            };
            (
                report.slots,
                report.stats.grants,
                start.elapsed().as_secs_f64(),
            )
        }
        PointKind::DrainPreload => {
            dispatch_design!(
                NoArrivals { num_queues: q },
                "preload-only+adversarial-round-robin",
                0
            )
        }
        PointKind::BurstyIdle => {
            // Custom burst/gap parameters are not expressible through the
            // scenario's fixed workload constants; drive the engine directly
            // over the scenario-built buffer.
            let seed = traffic::stream_seed(scenario.seed, 0);
            dispatch_design!(
                BurstyArrivals::new(q, IDLE_BURST_CELLS, IDLE_GAP_SLOTS, seed),
                "bursty+adversarial-round-robin",
                slots
            )
        }
    }
}

fn run_suite(smoke: bool, repeat: usize) -> Vec<BenchEntry> {
    let slots = slots_for(smoke);
    let points = suite_points();
    let mut entries: Vec<BenchEntry> = Vec::new();
    for round in 0..repeat.max(1) {
        for (i, (design, kind)) in points.iter().copied().enumerate() {
            let (c_slots, c_grants, c_seconds) = run_point(design, kind, slots, Engine::Chunked);
            let (p_slots, p_grants, p_seconds) = run_point(design, kind, slots, Engine::PerSlot);
            // The two engines must have simulated the same run — a cheap
            // standing differential check on every bench invocation.
            assert_eq!(
                (c_slots, c_grants),
                (p_slots, p_grants),
                "engines diverged on {design}/{}",
                kind.workload_name()
            );
            if round == 0 {
                entries.push(BenchEntry {
                    design,
                    kind,
                    slots: c_slots,
                    grants: c_grants,
                    chunked_seconds: c_seconds,
                    per_slot_seconds: p_seconds,
                });
            } else {
                // Simulation is deterministic: repeats must reproduce the
                // run exactly, only the wall time may differ. Keep the best.
                let best = &mut entries[i];
                assert_eq!((best.slots, best.grants), (c_slots, c_grants));
                best.chunked_seconds = best.chunked_seconds.min(c_seconds);
                best.per_slot_seconds = best.per_slot_seconds.min(p_seconds);
            }
        }
    }
    for entry in &entries {
        eprintln!(
            "bench: {:<32} {:>9} slots  chunked {:>12.0}/s  per-slot {:>12.0}/s  ({:>5.2}x)",
            entry.key(),
            entry.slots,
            entry.chunked_slots_per_sec(),
            entry.per_slot_slots_per_sec(),
            entry.chunked_slots_per_sec() / entry.per_slot_slots_per_sec().max(1.0),
        );
    }
    entries
}

/// Fabric slots per full-scale fabric bench point (the whole-router layer
/// simulates `ports` buffers plus arbitration per slot, so points are sized
/// below the single-buffer runs for comparable wall time).
const FABRIC_SLOTS_FULL: u64 = 200_000;
/// Fabric slots per smoke-mode fabric bench point.
const FABRIC_SLOTS_SMOKE: u64 = 50_000;

/// The fabric bench points: whole-router scenarios spanning the port-count,
/// design-mix, workload and arbiter axes. All four sit inside the documented
/// zero-loss envelope, so a lost cell is a standing failure.
fn fabric_suite_points(slots: u64) -> Vec<FabricScenario> {
    let base = FabricScenario {
        granularity: 4,
        rads_granularity: 16,
        num_banks: 64,
        load_percent: 90,
        arrival_slots: slots,
        ..FabricScenario::small()
    };
    vec![
        FabricScenario {
            ports: 8,
            design: FabricDesign::Fixed(DesignKind::Cfds),
            workload: FabricWorkload::Uniform,
            ..base
        },
        FabricScenario {
            ports: 8,
            design: FabricDesign::Fixed(DesignKind::Rads),
            workload: FabricWorkload::Bursty,
            ..base
        },
        FabricScenario {
            ports: 16,
            design: FabricDesign::Fixed(DesignKind::Cfds),
            workload: FabricWorkload::Incast,
            // At 16 ports the admissible incast fraction is clamped to the
            // uniform share for loads ≥ ~95/16%; 30% keeps the target output
            // at 0.95 of its line rate while drawing ~3.2× the uniform share
            // from every source — genuine many-to-one convergence.
            load_percent: 30,
            ..base
        },
        FabricScenario {
            ports: 8,
            design: FabricDesign::Mixed,
            workload: FabricWorkload::Hotspot,
            arbiter: ArbiterChoice::Maximal,
            ..base
        },
    ]
}

/// One measured fabric bench point.
#[derive(Debug, Clone)]
struct FabricBenchEntry {
    scenario: FabricScenario,
    slots: u64,
    transmitted: u64,
    zero_loss: bool,
    seconds: f64,
}

impl FabricBenchEntry {
    fn key(&self) -> String {
        let s = &self.scenario;
        format!(
            "fabric{0}x{0}-{1}/{2}+{3}",
            s.ports, s.design, s.workload, s.arbiter
        )
    }

    fn slots_per_sec(&self) -> f64 {
        slots_per_sec(self.slots, self.seconds)
    }
}

fn run_fabric_suite(smoke: bool, repeat: usize) -> Vec<FabricBenchEntry> {
    let slots = if smoke {
        FABRIC_SLOTS_SMOKE
    } else {
        FABRIC_SLOTS_FULL
    };
    let points = fabric_suite_points(slots);
    let mut entries: Vec<FabricBenchEntry> = Vec::new();
    for round in 0..repeat.max(1) {
        for (i, scenario) in points.iter().enumerate() {
            let start = Instant::now();
            let report = scenario.run();
            let seconds = start.elapsed().as_secs_f64();
            if round == 0 {
                entries.push(FabricBenchEntry {
                    scenario: *scenario,
                    slots: report.slots,
                    transmitted: report.transmitted,
                    zero_loss: report.zero_loss,
                    seconds,
                });
            } else {
                let best = &mut entries[i];
                // Deterministic simulation: repeats reproduce the run.
                assert_eq!(
                    (best.slots, best.transmitted),
                    (report.slots, report.transmitted)
                );
                best.seconds = best.seconds.min(seconds);
            }
        }
    }
    for entry in &entries {
        eprintln!(
            "bench: {:<40} {:>9} slots  fabric {:>12.0} slots/s  ({:>4} ports, zero-loss {})",
            entry.key(),
            entry.slots,
            entry.slots_per_sec(),
            entry.scenario.ports,
            entry.zero_loss,
        );
    }
    entries
}

fn fabric_results_json(entries: &[FabricBenchEntry]) -> Value {
    let mut rows = Vec::new();
    for e in entries {
        let mut row = Map::new();
        row.insert("key", Value::String(e.key()));
        row.insert(
            "ports",
            Value::Number(Number::from_u64(e.scenario.ports as u64)),
        );
        row.insert("design", Value::String(e.scenario.design.to_string()));
        row.insert("workload", Value::String(e.scenario.workload.to_string()));
        row.insert("arbiter", Value::String(e.scenario.arbiter.to_string()));
        row.insert(
            "load_percent",
            Value::Number(Number::from_u64(e.scenario.load_percent)),
        );
        row.insert("slots", Value::Number(Number::from_u64(e.slots)));
        row.insert(
            "transmitted",
            Value::Number(Number::from_u64(e.transmitted)),
        );
        row.insert("zero_loss", Value::Bool(e.zero_loss));
        row.insert("seconds", number(e.seconds));
        row.insert("slots_per_sec", number(e.slots_per_sec()));
        row.insert(
            "port_slots_per_sec",
            number(e.slots_per_sec() * e.scenario.ports as f64),
        );
        rows.push(Value::Object(row));
    }
    Value::Array(rows)
}

/// Active slots per full-scale Clos bench point. Every Clos slot steps all
/// `2r + m` switches (192 buffers at the 64-port point), so the slot budget
/// sits well below even the fabric points for comparable wall time.
const CLOS_SLOTS_FULL: u64 = 20_000;
/// Active slots per smoke-mode Clos bench point.
const CLOS_SLOTS_SMOKE: u64 = 5_000;

/// The Clos bench points: the 64-port-equivalent three-stage fabric
/// (`r = m = N = 8`) under uniform spray traffic. Three RADS points span the
/// arbiter × load plane — iSLIP and maximal at 85% near saturation, and
/// maximal at 50%, the headline point whose sustained throughput (in
/// port-slots/sec, `slots_per_sec × 64`) the acceptance criteria gate on.
/// The DRAM-only point is the §1 motivation baseline at Clos scale: its
/// buffers drop under contention *by design*, so it is exempt from the
/// zero-loss standing gate (conservation still must hold — every lost cell
/// accounted, none vanished). The transport point layers the closed-loop
/// reliable sources over a cut-through twin of the headline geometry: it
/// measures the ack/retransmit machinery's overhead and stands under the
/// exactly-once and end-to-end conservation gates.
fn clos_suite_points(slots: u64) -> Vec<ClosScenario> {
    let base = ClosScenario {
        radix: 8,
        ingress_switches: 8,
        middle_switches: 8,
        arrival_slots: slots,
        ..ClosScenario::small()
    };
    vec![
        ClosScenario {
            arbiter: ArbiterChoice::Islip,
            load_percent: 85,
            ..base.clone()
        },
        ClosScenario {
            arbiter: ArbiterChoice::Maximal,
            load_percent: 85,
            ..base.clone()
        },
        ClosScenario {
            arbiter: ArbiterChoice::Maximal,
            load_percent: 50,
            ..base.clone()
        },
        ClosScenario {
            design: FabricDesign::Fixed(DesignKind::DramOnly),
            arbiter: ArbiterChoice::Islip,
            load_percent: 85,
            ..base.clone()
        },
        ClosScenario {
            rads_granularity: 1,
            transport: Some(TransportScenario::default()),
            ..base
        },
    ]
}

/// Whether a Clos bench point sits inside the zero-loss envelope the standing
/// gate enforces. DRAM-only buffers miss grants under bank contention by
/// design (the paper's motivation baseline), so only the RADS/CFDS points
/// promise zero loss.
fn clos_point_expects_zero_loss(scenario: &ClosScenario) -> bool {
    scenario.design != FabricDesign::Fixed(DesignKind::DramOnly)
}

/// One measured Clos bench point.
#[derive(Debug, Clone)]
struct ClosBenchEntry {
    scenario: ClosScenario,
    slots: u64,
    delivered: u64,
    zero_loss: bool,
    conserving: bool,
    /// Open-loop points: trivially true. Transport points: exactly-once
    /// delivery (zero duplicates) and the end-to-end retry-loop ledger
    /// closed.
    transport_ok: bool,
    seconds: f64,
}

impl ClosBenchEntry {
    fn key(&self) -> String {
        let s = &self.scenario;
        let mut key = format!(
            "clos{}x{}x{}-{}/{}+{}@{}+{}",
            s.ingress_switches,
            s.middle_switches,
            s.radix,
            s.design,
            s.workload,
            s.arbiter,
            s.load_percent,
            s.dispatch,
        );
        if s.transport.is_some() {
            key.push_str("+transport");
        }
        key
    }

    fn slots_per_sec(&self) -> f64 {
        slots_per_sec(self.slots, self.seconds)
    }

    /// Port-normalised throughput: one Clos slot advances all `r·N` external
    /// ports, so this is the number a single-switch `slots_per_sec` is
    /// comparable against.
    fn port_slots_per_sec(&self) -> f64 {
        self.slots_per_sec() * self.scenario.external_ports() as f64
    }
}

fn run_clos_suite(smoke: bool, repeat: usize) -> Vec<ClosBenchEntry> {
    let slots = if smoke {
        CLOS_SLOTS_SMOKE
    } else {
        CLOS_SLOTS_FULL
    };
    let points = clos_suite_points(slots);
    let mut entries: Vec<ClosBenchEntry> = Vec::new();
    for round in 0..repeat.max(1) {
        for (i, scenario) in points.iter().enumerate() {
            let start = Instant::now();
            let report = scenario.run();
            let seconds = start.elapsed().as_secs_f64();
            if round == 0 {
                let transport_ok = match &report.transport {
                    None => true,
                    Some(t) => t.duplicate_deliveries == 0 && report.transport_conservation_holds(),
                };
                entries.push(ClosBenchEntry {
                    scenario: scenario.clone(),
                    slots: report.slots,
                    delivered: report.delivered,
                    zero_loss: report.zero_loss,
                    conserving: report.conservation_holds(),
                    transport_ok,
                    seconds,
                });
            } else {
                let best = &mut entries[i];
                // Deterministic simulation: repeats reproduce the run.
                assert_eq!(
                    (best.slots, best.delivered),
                    (report.slots, report.delivered)
                );
                best.seconds = best.seconds.min(seconds);
            }
        }
    }
    for entry in &entries {
        eprintln!(
            "bench: {:<44} {:>7} slots  clos {:>9.0} slots/s = {:>10.0} port-slots/s  \
             (zero-loss {}, conserving {})",
            entry.key(),
            entry.slots,
            entry.slots_per_sec(),
            entry.port_slots_per_sec(),
            entry.zero_loss,
            entry.conserving,
        );
    }
    entries
}

fn clos_results_json(entries: &[ClosBenchEntry]) -> Value {
    let mut rows = Vec::new();
    for e in entries {
        let s = &e.scenario;
        let mut row = Map::new();
        row.insert("key", Value::String(e.key()));
        row.insert("radix", Value::Number(Number::from_u64(s.radix as u64)));
        row.insert(
            "ingress_switches",
            Value::Number(Number::from_u64(s.ingress_switches as u64)),
        );
        row.insert(
            "middle_switches",
            Value::Number(Number::from_u64(s.middle_switches as u64)),
        );
        row.insert(
            "external_ports",
            Value::Number(Number::from_u64(s.external_ports() as u64)),
        );
        row.insert("design", Value::String(s.design.to_string()));
        row.insert("workload", Value::String(s.workload.to_string()));
        row.insert("dispatch", Value::String(s.dispatch.to_string()));
        row.insert("arbiter", Value::String(s.arbiter.to_string()));
        row.insert(
            "load_percent",
            Value::Number(Number::from_u64(s.load_percent)),
        );
        row.insert("slots", Value::Number(Number::from_u64(e.slots)));
        row.insert("delivered", Value::Number(Number::from_u64(e.delivered)));
        row.insert("zero_loss", Value::Bool(e.zero_loss));
        row.insert("conserving", Value::Bool(e.conserving));
        row.insert("transport", Value::Bool(s.transport.is_some()));
        row.insert("transport_ok", Value::Bool(e.transport_ok));
        row.insert("seconds", number(e.seconds));
        row.insert("slots_per_sec", number(e.slots_per_sec()));
        row.insert("port_slots_per_sec", number(e.port_slots_per_sec()));
        rows.push(Value::Object(row));
    }
    Value::Array(rows)
}

/// Maximum tolerated instrumentation-on overhead on the headline Clos
/// point, percent of the probes-off wall time (a standing gate: the
/// zero-overhead-off contract is tested functionally, this bounds the cost
/// of actually *using* the probes).
const OBS_OVERHEAD_MAX_PCT: f64 = 5.0;

/// The measured cost of arming [`ObsScenario::standard`] (latency +
/// occupancy histograms, series every 64 slots) on the headline Clos bench
/// point, probes-off and probes-on interleaved.
#[derive(Debug, Clone)]
struct ObsOverheadEntry {
    key: String,
    slots: u64,
    delivered: u64,
    off_seconds: f64,
    on_seconds: f64,
    /// Median of the per-round paired on/off ratios, as a percentage. Each
    /// round runs off then on back-to-back, so a pair shares whatever the
    /// machine was doing that instant and its ratio cancels load drift; the
    /// median across rounds then discards spike-hit pairs. A ratio of the
    /// two minima would compare times from different noise epochs and has
    /// been observed to swing ±10% on a busy host — far above the gate.
    overhead_pct: f64,
}

/// Measures the headline Clos point (maximal arbiter at 50% load) with the
/// probes off and with the standard probe set armed, interleaving the pair
/// each round. The minimum per side is reported for throughput; the
/// overhead gate uses the median paired ratio (see
/// [`ObsOverheadEntry::overhead_pct`]).
fn run_obs_overhead(smoke: bool, repeat: usize) -> ObsOverheadEntry {
    let slots = if smoke {
        CLOS_SLOTS_SMOKE
    } else {
        CLOS_SLOTS_FULL
    };
    let off = ClosScenario {
        radix: 8,
        ingress_switches: 8,
        middle_switches: 8,
        arbiter: ArbiterChoice::Maximal,
        load_percent: 50,
        arrival_slots: slots,
        ..ClosScenario::small()
    };
    let armed = ClosScenario {
        obs: Some(ObsScenario::standard()),
        ..off.clone()
    };
    let mut entry: Option<ObsOverheadEntry> = None;
    // A percent-level differential needs more rounds than the throughput
    // suites: always take at least five interleaved pairs.
    let mut ratios = Vec::new();
    for _ in 0..repeat.max(5) {
        let start = Instant::now();
        let off_report = off.run();
        let off_seconds = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let on_report = armed.run();
        let on_seconds = start.elapsed().as_secs_f64();
        // The probes must observe the run, never steer it.
        assert_eq!(off_report.delivered, on_report.delivered);
        assert_eq!(off_report.arrivals, on_report.arrivals);
        assert!(on_report.obs.is_some() && off_report.obs.is_none());
        if off_seconds > 0.0 {
            ratios.push(on_seconds / off_seconds);
        }
        match &mut entry {
            None => {
                entry = Some(ObsOverheadEntry {
                    key: format!(
                        "clos{}x{}x{}-{}/{}+{}@{}+{}",
                        off.ingress_switches,
                        off.middle_switches,
                        off.radix,
                        off.design,
                        off.workload,
                        off.arbiter,
                        off.load_percent,
                        off.dispatch,
                    ),
                    slots: off_report.slots,
                    delivered: off_report.delivered,
                    off_seconds,
                    on_seconds,
                    overhead_pct: 0.0,
                });
            }
            Some(e) => {
                e.off_seconds = e.off_seconds.min(off_seconds);
                e.on_seconds = e.on_seconds.min(on_seconds);
            }
        }
    }
    let mut entry = entry.expect("at least one round ran");
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let median = match ratios.as_slice() {
        [] => 1.0,
        r => {
            let mid = r.len() / 2;
            if r.len() % 2 == 1 {
                r[mid]
            } else {
                (r[mid - 1] + r[mid]) / 2.0
            }
        }
    };
    entry.overhead_pct = (median - 1.0) * 100.0;
    eprintln!(
        "bench: obs overhead on {}: probes off {:.3}s, standard probes {:.3}s \
         (median paired ratio {:+.1}%)",
        entry.key, entry.off_seconds, entry.on_seconds, entry.overhead_pct,
    );
    entry
}

fn obs_overhead_json(e: &ObsOverheadEntry) -> Value {
    let mut row = Map::new();
    row.insert("key", Value::String(e.key.clone()));
    row.insert("slots", Value::Number(Number::from_u64(e.slots)));
    row.insert("delivered", Value::Number(Number::from_u64(e.delivered)));
    row.insert("off_seconds", number(e.off_seconds));
    row.insert("on_seconds", number(e.on_seconds));
    row.insert(
        "off_slots_per_sec",
        number(slots_per_sec(e.slots, e.off_seconds)),
    );
    row.insert(
        "on_slots_per_sec",
        number(slots_per_sec(e.slots, e.on_seconds)),
    );
    row.insert("overhead_pct", number(e.overhead_pct));
    row.insert("max_overhead_pct", number(OBS_OVERHEAD_MAX_PCT));
    Value::Object(row)
}

fn number(v: f64) -> Value {
    Value::Number(Number::from_f64(v).expect("bench numbers are finite"))
}

fn results_json(entries: &[BenchEntry]) -> Value {
    let mut rows = Vec::new();
    for e in entries {
        let mut row = Map::new();
        row.insert("design", Value::String(e.design.to_string()));
        row.insert("workload", Value::String(e.kind.workload_name()));
        row.insert("slots", Value::Number(Number::from_u64(e.slots)));
        row.insert("grants", Value::Number(Number::from_u64(e.grants)));
        row.insert("seconds", number(e.chunked_seconds));
        row.insert("slots_per_sec", number(e.chunked_slots_per_sec()));
        row.insert("per_slot_seconds", number(e.per_slot_seconds));
        row.insert("per_slot_slots_per_sec", number(e.per_slot_slots_per_sec()));
        if e.per_slot_slots_per_sec() > 0.0 {
            row.insert(
                "chunked_speedup",
                number(e.chunked_slots_per_sec() / e.per_slot_slots_per_sec()),
            );
        }
        rows.push(Value::Object(row));
    }
    Value::Array(rows)
}

/// Peak resident set size of this process in bytes (Linux `VmHWM`), or 0 when
/// the information is unavailable.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Reads `<section>[*].<field>` keyed by `design/workload` from a bench
/// artifact value (either the top level or its `"before"` section).
fn per_key_section(value: &Value, section: &str, field: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let Some(results) = value.as_object().and_then(|o| o.get(section)) else {
        return out;
    };
    let Some(rows) = results.as_array() else {
        return out;
    };
    for row in rows {
        let Some(obj) = row.as_object() else { continue };
        let (Some(design), Some(workload)) = (
            obj.get("design").and_then(Value::as_str),
            obj.get("workload").and_then(Value::as_str),
        ) else {
            continue;
        };
        let Some(v) = obj.get(field).and_then(Value::as_f64) else {
            continue;
        };
        out.push((format!("{design}/{workload}"), v));
    }
    out
}

fn slots_per_sec_section(value: &Value, section: &str) -> Vec<(String, f64)> {
    per_key_section(value, section, "slots_per_sec")
}

fn median(mut values: Vec<f64>) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Some(values[values.len() / 2])
}

/// Builds this run's trajectory entry and appends it to whatever history the
/// previous artifact carried (synthesising a seed entry from a pre-trajectory
/// artifact's `results`, tagged `"baseline"`).
fn build_trajectory(
    previous: Option<&Value>,
    entries: &[BenchEntry],
    fabric_entries: &[FabricBenchEntry],
    clos_entries: &[ClosBenchEntry],
    tag: &str,
    rss: u64,
) -> Value {
    let mut history: Vec<Value> = Vec::new();
    if let Some(prev) = previous {
        match prev.as_object().and_then(|o| o.get("trajectory")) {
            Some(Value::Array(existing)) => history.extend(existing.iter().cloned()),
            _ => {
                // Pre-trajectory artifact: its results become the seed entry.
                let seeded = slots_per_sec_section(prev, "results");
                if !seeded.is_empty() {
                    let mut map = Map::new();
                    for (key, sps) in &seeded {
                        map.insert(key.as_str(), number(*sps));
                    }
                    let mut entry = Map::new();
                    entry.insert("tag", Value::String("baseline".to_owned()));
                    entry.insert("slots_per_sec", Value::Object(map));
                    if let Some(prev_rss) = prev
                        .as_object()
                        .and_then(|o| o.get("peak_rss_bytes"))
                        .and_then(Value::as_u64)
                    {
                        entry.insert("peak_rss_bytes", Value::Number(Number::from_u64(prev_rss)));
                    }
                    history.push(Value::Object(entry));
                }
            }
        }
    }

    let mut chunked = Map::new();
    let mut per_slot = Map::new();
    for e in entries {
        chunked.insert(e.key(), number(e.chunked_slots_per_sec()));
        per_slot.insert(e.key(), number(e.per_slot_slots_per_sec()));
    }
    let mut entry = Map::new();
    entry.insert("tag", Value::String(tag.to_owned()));
    entry.insert("slots_per_sec", Value::Object(chunked));
    entry.insert("per_slot_slots_per_sec", Value::Object(per_slot));
    if !fabric_entries.is_empty() {
        let mut fabric = Map::new();
        for e in fabric_entries {
            fabric.insert(e.key(), number(e.slots_per_sec()));
        }
        entry.insert("fabric_slots_per_sec", Value::Object(fabric));
    }
    if !clos_entries.is_empty() {
        // Port-normalised: one Clos slot advances all r·N external ports, so
        // this is the figure comparable across fabric sizes (and the one the
        // PR-7 throughput acceptance gates on).
        let mut clos = Map::new();
        for e in clos_entries {
            clos.insert(e.key(), number(e.port_slots_per_sec()));
        }
        entry.insert("clos_port_slots_per_sec", Value::Object(clos));
    }
    entry.insert("peak_rss_bytes", Value::Number(Number::from_u64(rss)));
    // Median speedup vs the previous trajectory entry, over shared keys.
    if let Some(prev_entry) = history.last() {
        let prev_map = prev_entry
            .as_object()
            .and_then(|o| o.get("slots_per_sec"))
            .and_then(Value::as_object);
        if let Some(prev_map) = prev_map {
            let ratios: Vec<f64> = entries
                .iter()
                .filter_map(|e| {
                    let prev = prev_map.get(&e.key()).and_then(Value::as_f64)?;
                    (prev > 0.0).then(|| e.chunked_slots_per_sec() / prev)
                })
                .collect();
            if let Some(m) = median(ratios) {
                eprintln!(
                    "bench: trajectory {tag}: suite-median speedup {m:.2}x vs previous entry"
                );
                entry.insert("median_speedup_vs_prev", number(m));
            }
        }
    }
    history.push(Value::Object(entry));
    Value::Array(history)
}

/// Runs the suite and handles artifacts/comparisons per `options`.
///
/// Returns `Ok(true)` on success, `Ok(false)` when a regression check failed
/// (either `--compare` or the standing chunked-vs-per-slot gate), and `Err`
/// for operational problems (unreadable files, …).
///
/// # Errors
///
/// Returns a message when the baseline files cannot be read or parsed, or the
/// output artifact cannot be written.
pub fn run_bench(options: &BenchOptions) -> Result<bool, String> {
    /// Median throughput ratio below this fails the cross-run gate outright:
    /// a uniform slowdown, not per-point noise.
    const GLOBAL_FLOOR: f64 = 0.5;
    if options.tag.is_some() && options.smoke {
        // Smoke-scale numbers amortise setup differently and would corrupt
        // the full-scale trajectory history (and its median-vs-previous).
        return Err("--tag records the full-scale trajectory; drop --smoke".to_owned());
    }
    // Resolve the previous artifact up front so a duplicate --tag refuses
    // *before* the (minutes-long) full-scale suite runs.
    let previous_for_tag = match &options.tag {
        Some(_) => {
            let path = options.before.clone().or_else(|| {
                options
                    .out
                    .clone()
                    .filter(|p| std::path::Path::new(p).exists())
            });
            match path {
                Some(path) => Some(load_artifact(&path)?),
                None => None,
            }
        }
        None => None,
    };
    if let Some(tag) = &options.tag {
        guard_fresh_tag(previous_for_tag.as_ref(), tag, options.force)?;
    }
    let tolerance = options.max_regression_pct.unwrap_or(15.0);
    let entries = run_suite(options.smoke, options.repeat.unwrap_or(1));
    let fabric_entries = run_fabric_suite(options.smoke, options.repeat.unwrap_or(1));
    let clos_entries = run_clos_suite(options.smoke, options.repeat.unwrap_or(1));
    // A recorded full artifact also carries a smoke-mode section: the short
    // CI runs amortise fixed per-run setup far less than the 1M-slot runs,
    // so `--smoke --compare` must check against smoke-mode numbers.
    let smoke_entries = if !options.smoke && options.out.is_some() {
        eprintln!("bench: recording the smoke-mode baseline section");
        Some(run_suite(true, options.repeat.unwrap_or(1)))
    } else {
        None
    };
    let fabric_smoke_entries = if !options.smoke && options.out.is_some() {
        Some(run_fabric_suite(true, options.repeat.unwrap_or(1)))
    } else {
        None
    };
    let clos_smoke_entries = if !options.smoke && options.out.is_some() {
        Some(run_clos_suite(true, options.repeat.unwrap_or(1)))
    } else {
        None
    };
    let obs_overhead = run_obs_overhead(options.smoke, options.repeat.unwrap_or(3));
    let rss = peak_rss_bytes();
    eprintln!("bench: peak RSS {:.1} MiB", rss as f64 / (1024.0 * 1024.0));

    let mut ok = true;
    // Standing gate: batching must never pessimise. The chunked engine has
    // to match or beat the per-slot engine on every suite point, within a
    // small *fixed* noise floor — deliberately decoupled from the cross-run
    // `--max-regression` tolerance, which accounts for machine drift that a
    // same-run comparison does not suffer from.
    for entry in &entries {
        let chunked = entry.chunked_slots_per_sec();
        let per_slot = entry.per_slot_slots_per_sec();
        if chunked < per_slot * (1.0 - CHUNKED_GATE_NOISE_PCT / 100.0) {
            eprintln!(
                "bench: REGRESSION {}: chunked engine ({chunked:.0}/s) is more than \
                 {CHUNKED_GATE_NOISE_PCT}% slower than the per-slot engine ({per_slot:.0}/s)",
                entry.key()
            );
            ok = false;
        }
    }
    if ok {
        eprintln!(
            "bench: chunked engine >= per-slot engine on every suite point \
             (within the {CHUNKED_GATE_NOISE_PCT}% noise floor)"
        );
    }
    // Standing gate: every fabric bench point sits inside the documented
    // zero-loss envelope, so a lost cell is a functional regression, not a
    // performance one.
    for entry in &fabric_entries {
        if !entry.zero_loss {
            eprintln!("bench: REGRESSION {}: fabric run lost cells", entry.key());
            ok = false;
        }
    }
    // Standing gate: the RADS Clos points sit inside the zero-loss envelope
    // and every Clos point — including the drop-by-design DRAM-only baseline
    // — must conserve cells fabric-wide (arrivals = delivered + resident +
    // accounted losses; nothing vanishes in an inter-stage link).
    for entry in &clos_entries {
        if clos_point_expects_zero_loss(&entry.scenario) && !entry.zero_loss {
            eprintln!("bench: REGRESSION {}: clos run lost cells", entry.key());
            ok = false;
        }
        if !entry.conserving {
            eprintln!(
                "bench: REGRESSION {}: clos run broke cell conservation",
                entry.key()
            );
            ok = false;
        }
        if !entry.transport_ok {
            eprintln!(
                "bench: REGRESSION {}: clos transport run broke exactly-once \
                 delivery or end-to-end conservation",
                entry.key()
            );
            ok = false;
        }
    }
    // Standing gate: arming the standard probe set must stay cheap. The
    // off-path is free by construction (the byte-identity tests prove it);
    // this bounds the cost of the probes people actually turn on.
    if obs_overhead.overhead_pct > OBS_OVERHEAD_MAX_PCT {
        eprintln!(
            "bench: REGRESSION {}: standard obs probes cost {:.1}% \
             (budget {OBS_OVERHEAD_MAX_PCT}%)",
            obs_overhead.key, obs_overhead.overhead_pct,
        );
        ok = false;
    }

    let mut root = Map::new();
    root.insert("schema", Value::Number(Number::from_u64(BENCH_SCHEMA)));
    root.insert(
        "mode",
        Value::String(if options.smoke { "smoke" } else { "full" }.to_owned()),
    );
    let mut config = Map::new();
    config.insert(
        "num_queues",
        Value::Number(Number::from_u64(SUITE_QUEUES as u64)),
    );
    config.insert("granularity", Value::Number(Number::from_u64(4)));
    config.insert("rads_granularity", Value::Number(Number::from_u64(16)));
    config.insert("num_banks", Value::Number(Number::from_u64(64)));
    config.insert(
        "arrival_slots",
        Value::Number(Number::from_u64(slots_for(options.smoke))),
    );
    root.insert("config", Value::Object(config));
    root.insert("peak_rss_bytes", Value::Number(Number::from_u64(rss)));
    root.insert(
        "repeat",
        Value::Number(Number::from_u64(options.repeat.unwrap_or(1) as u64)),
    );
    root.insert("results", results_json(&entries));
    root.insert("fabric_results", fabric_results_json(&fabric_entries));
    if let Some(smoke_entries) = &smoke_entries {
        root.insert("smoke_results", results_json(smoke_entries));
    }
    if let Some(fabric_smoke_entries) = &fabric_smoke_entries {
        root.insert(
            "fabric_smoke_results",
            fabric_results_json(fabric_smoke_entries),
        );
    }
    root.insert("clos_results", clos_results_json(&clos_entries));
    if let Some(clos_smoke_entries) = &clos_smoke_entries {
        root.insert("clos_smoke_results", clos_results_json(clos_smoke_entries));
    }
    root.insert("obs_overhead", obs_overhead_json(&obs_overhead));

    // Trajectory: carry the previous artifact's history forward (loaded —
    // and its tag checked for collision — before the suites ran).
    if let Some(tag) = &options.tag {
        root.insert(
            "trajectory",
            build_trajectory(
                previous_for_tag.as_ref(),
                &entries,
                &fabric_entries,
                &clos_entries,
                tag,
                rss,
            ),
        );
    }

    // Notes: free-form measurement history (noise-floor investigations,
    // machine-drift observations) carried in the artifact; re-recording must
    // not drop them.
    if let Some(Value::Array(notes)) = previous_for_tag
        .as_ref()
        .and_then(|p| p.as_object())
        .and_then(|o| o.get("notes"))
    {
        root.insert("notes", Value::Array(notes.clone()));
    }

    if let Some(before_path) = &options.before {
        let before = load_artifact(before_path)?;
        let before_map = slots_per_sec_section(&before, "results");
        let mut speedups = Map::new();
        let mut ratios = Vec::new();
        for entry in &entries {
            let key = entry.key();
            if let Some((_, before_sps)) = before_map.iter().find(|(k, _)| *k == key) {
                if *before_sps > 0.0 {
                    let ratio = entry.chunked_slots_per_sec() / before_sps;
                    speedups.insert(key.clone(), number(ratio));
                    ratios.push(ratio);
                }
            }
        }
        if let Some(headline) = speedups.get(BENCH_HEADLINE).and_then(Value::as_f64) {
            eprintln!("bench: headline speedup ({BENCH_HEADLINE}): {headline:.2}x");
        }
        if let Some(m) = median(ratios) {
            eprintln!("bench: suite-median speedup vs before: {m:.2}x");
            root.insert("median_speedup_vs_before", number(m));
        }
        root.insert("speedup_vs_before", Value::Object(speedups));
        root.insert("before", before);
    }

    if let Some(compare_path) = &options.compare {
        let baseline = load_artifact(compare_path)?;
        // Match measurement modes: a smoke run checks against the baseline's
        // smoke section when one was recorded.
        let mut baseline_map = if options.smoke {
            slots_per_sec_section(&baseline, "smoke_results")
        } else {
            Vec::new()
        };
        if baseline_map.is_empty() {
            baseline_map = slots_per_sec_section(&baseline, "results");
        }
        if baseline_map.is_empty() {
            return Err(format!("{compare_path:?} contains no bench results"));
        }
        // Absolute slots/sec depend on the machine (and its frequency
        // scaling), so the per-entry gate is *relative*: normalise each
        // fresh/baseline ratio by the median ratio across the suite — a
        // uniform machine-speed difference cancels out, while a real code
        // regression shows up as one or more entries falling more than
        // `tolerance` percent below the rest. A separate coarse floor on the
        // median itself still catches a uniform pessimisation.
        let mut ratios: Vec<(String, f64)> = Vec::new();
        for entry in &entries {
            // Jitter-dominated measurements are excluded from the cross-run
            // gate: the showcase points by construction, and any point whose
            // chunked run finished in a few milliseconds (fast-forward makes
            // several smoke points that quick). They stay covered by the
            // same-run chunked-vs-per-slot gate above.
            if !matches!(entry.kind, PointKind::Live(_)) {
                continue;
            }
            if entry.chunked_seconds < MIN_COMPARE_SECONDS {
                eprintln!(
                    "bench: note: {} finished in {:.1} ms — too fast for the \
                     cross-run gate, skipping it there",
                    entry.key(),
                    entry.chunked_seconds * 1e3,
                );
                continue;
            }
            let key = entry.key();
            let Some((_, base_sps)) = baseline_map.iter().find(|(k, _)| *k == key) else {
                continue;
            };
            if *base_sps > 0.0 {
                ratios.push((key, entry.chunked_slots_per_sec() / base_sps));
            }
        }
        if ratios.is_empty() {
            return Err(format!(
                "{compare_path:?} shares no entries with this suite"
            ));
        }
        let suite_median =
            median(ratios.iter().map(|(_, r)| *r).collect()).expect("ratios nonempty");
        if suite_median < GLOBAL_FLOOR {
            eprintln!(
                "bench: REGRESSION: median throughput ratio {suite_median:.2} vs {compare_path} \
                 is below the global floor {GLOBAL_FLOOR} — uniform slowdown"
            );
            ok = false;
        }
        let mut compare_ok = true;
        for (key, ratio) in &ratios {
            let floor = suite_median * (1.0 - tolerance / 100.0);
            if *ratio < floor {
                eprintln!(
                    "bench: REGRESSION {key}: ratio {ratio:.3} vs baseline is more than \
                     {tolerance}% below the suite median {suite_median:.3}"
                );
                compare_ok = false;
            }
        }
        if compare_ok {
            eprintln!(
                "bench: no entry regressed more than {tolerance}% vs {compare_path} \
                 (median ratio {suite_median:.2})"
            );
        }
        ok = ok && compare_ok;
    }

    if let Some(out) = &options.out {
        let text = Value::Object(root).to_json_string_pretty();
        std::fs::write(out, text + "\n")
            .map_err(|e| format!("cannot write bench artifact to {out:?}: {e}"))?;
        eprintln!("wrote bench artifact to {out}");
    }
    Ok(ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key_workload: Workload, chunked: f64, per_slot: f64) -> BenchEntry {
        BenchEntry {
            design: DesignKind::Cfds,
            kind: PointKind::Live(key_workload),
            slots: 1000,
            grants: 900,
            chunked_seconds: 1000.0 / chunked,
            per_slot_seconds: 1000.0 / per_slot,
        }
    }

    #[test]
    fn artifact_maps_round_trip() {
        let entries = vec![entry(Workload::AdversarialRoundRobin, 2000.0, 1000.0)];
        assert_eq!(entries[0].key(), BENCH_HEADLINE);
        assert!((entries[0].chunked_slots_per_sec() - 2000.0).abs() < 1e-9);
        let mut root = Map::new();
        root.insert("results", results_json(&entries));
        let value = Value::Object(root);
        let text = value.to_json_string_pretty();
        let parsed: Value = serde_json::from_str(&text).unwrap();
        let map = slots_per_sec_section(&parsed, "results");
        assert_eq!(map.len(), 1);
        assert_eq!(map[0].0, BENCH_HEADLINE);
        assert!((map[0].1 - 2000.0).abs() < 1e-9);
        let per_slot = per_key_section(&parsed, "results", "per_slot_slots_per_sec");
        assert!((per_slot[0].1 - 1000.0).abs() < 1e-9);
        let speedup = per_key_section(&parsed, "results", "chunked_speedup");
        assert!((speedup[0].1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn trajectory_seeds_from_pre_trajectory_artifacts_and_appends() {
        // A v1-style artifact: results only, no trajectory.
        let old = serde_json::from_str::<Value>(
            "{\"results\":[{\"design\":\"CFDS\",\
             \"workload\":\"adversarial-round-robin\",\"slots_per_sec\":1000.0}],\
             \"peak_rss_bytes\":42}",
        )
        .unwrap();
        let entries = vec![entry(Workload::AdversarialRoundRobin, 2000.0, 1400.0)];
        let trajectory = build_trajectory(Some(&old), &entries, &[], &[], "PR-4", 7);
        let rows = trajectory.as_array().unwrap();
        assert_eq!(rows.len(), 2);
        let seed = rows[0].as_object().unwrap();
        assert_eq!(seed.get("tag").and_then(Value::as_str), Some("baseline"));
        let new = rows[1].as_object().unwrap();
        assert_eq!(new.get("tag").and_then(Value::as_str), Some("PR-4"));
        let m = new
            .get("median_speedup_vs_prev")
            .and_then(Value::as_f64)
            .unwrap();
        assert!((m - 2.0).abs() < 1e-9, "median speedup {m}");
        // Appending again keeps history.
        let mut root = Map::new();
        root.insert("trajectory", trajectory);
        let with_history = Value::Object(root);
        let again = build_trajectory(Some(&with_history), &entries, &[], &[], "PR-5", 7);
        assert_eq!(again.as_array().unwrap().len(), 3);
    }

    #[test]
    fn duplicate_trajectory_tags_are_detected() {
        use crate::cli::trajectory_has_tag;
        let entries = vec![entry(Workload::AdversarialRoundRobin, 2000.0, 1400.0)];
        let trajectory = build_trajectory(None, &entries, &[], &[], "PR-5", 7);
        let mut root = Map::new();
        root.insert("trajectory", trajectory);
        let artifact = Value::Object(root);
        assert!(trajectory_has_tag(&artifact, "PR-5"));
        assert!(!trajectory_has_tag(&artifact, "PR-6"));
        assert!(guard_fresh_tag(Some(&artifact), "PR-5", false).is_err());
        assert!(guard_fresh_tag(Some(&artifact), "PR-5", true).is_ok());
        // An artifact without a trajectory section has no tags.
        assert!(!trajectory_has_tag(
            &serde_json::from_str::<Value>("{}").unwrap(),
            "PR-5"
        ));
    }

    #[test]
    fn fabric_points_cover_the_axes_and_serialize() {
        let points = fabric_suite_points(1_000);
        assert!(
            points.len() >= 4,
            "the trajectory records >= 4 fabric points"
        );
        assert!(points.iter().any(|p| p.ports == 16));
        assert!(points.iter().any(|p| p.design == FabricDesign::Mixed));
        assert!(points.iter().any(|p| p.workload == FabricWorkload::Incast));
        assert!(points.iter().any(|p| p.arbiter == ArbiterChoice::Maximal));
        for p in &points {
            assert!(p.validate().is_ok(), "{p:?}");
        }
        let entries: Vec<FabricBenchEntry> = points
            .iter()
            .map(|scenario| FabricBenchEntry {
                scenario: *scenario,
                slots: 1_000,
                transmitted: 900,
                zero_loss: true,
                seconds: 0.5,
            })
            .collect();
        assert_eq!(entries[0].key(), "fabric8x8-CFDS/uniform+islip");
        let json = fabric_results_json(&entries);
        let rows = json.as_array().unwrap();
        assert_eq!(rows.len(), entries.len());
        assert_eq!(
            rows[2]
                .as_object()
                .unwrap()
                .get("workload")
                .and_then(Value::as_str),
            Some("incast")
        );
        // Keys are unique (the trajectory map would silently collapse dups).
        let mut keys: Vec<String> = entries.iter().map(FabricBenchEntry::key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), entries.len());
    }

    #[test]
    fn clos_points_cover_the_axes_and_serialize() {
        let points = clos_suite_points(1_000);
        assert!(points.len() >= 4, "the trajectory records >= 4 clos points");
        // All points run the 64-port-equivalent fabric of the acceptance
        // criteria: r = m = N = 8.
        for p in &points {
            assert_eq!(p.external_ports(), 64, "{p:?}");
            assert!(p.validate().is_ok(), "{p:?}");
        }
        assert!(points.iter().any(|p| p.arbiter == ArbiterChoice::Islip));
        assert!(points.iter().any(|p| p.arbiter == ArbiterChoice::Maximal));
        // The headline point: maximal matching at moderate load, the
        // zero-loss configuration whose port-slots/sec the PR-7 acceptance
        // criteria gate on.
        assert!(points
            .iter()
            .any(|p| p.arbiter == ArbiterChoice::Maximal && p.load_percent == 50));
        // The DRAM-only motivation baseline is present and loss-exempt; the
        // RADS points are not.
        assert!(points.iter().any(|p| !clos_point_expects_zero_loss(p)));
        assert!(points.iter().any(clos_point_expects_zero_loss));
        let entries: Vec<ClosBenchEntry> = points
            .iter()
            .map(|scenario| ClosBenchEntry {
                scenario: scenario.clone(),
                slots: 1_000,
                delivered: 900,
                zero_loss: true,
                conserving: true,
                transport_ok: true,
                seconds: 0.5,
            })
            .collect();
        assert_eq!(entries[0].key(), "clos8x8x8-RADS/uniform+islip@85+spray");
        // The transport point rides the suite under its own key suffix, on a
        // cut-through buffer (closed-loop sources need granularity 1).
        let transport: Vec<&ClosBenchEntry> = entries
            .iter()
            .filter(|e| e.scenario.transport.is_some())
            .collect();
        assert_eq!(transport.len(), 1);
        assert!(transport[0].key().ends_with("+transport"));
        assert_eq!(transport[0].scenario.rads_granularity, 1);
        // Port normalisation: one slot advances all 64 external ports.
        assert!((entries[0].port_slots_per_sec() - 2_000.0 * 64.0).abs() < 1e-6);
        let json = clos_results_json(&entries);
        let rows = json.as_array().unwrap();
        assert_eq!(rows.len(), entries.len());
        let first = rows[0].as_object().unwrap();
        assert_eq!(
            first.get("external_ports").and_then(Value::as_u64),
            Some(64)
        );
        assert!(first
            .get("port_slots_per_sec")
            .and_then(Value::as_f64)
            .is_some());
        // Keys are unique (the trajectory map would silently collapse dups).
        let mut keys: Vec<String> = entries.iter().map(ClosBenchEntry::key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), entries.len());
    }

    #[test]
    fn suite_covers_matrix_and_showcase_points() {
        let points = suite_points();
        assert_eq!(points.len(), 3 * 5 + 3 * 2);
        let keys: Vec<String> = points
            .iter()
            .map(|(d, k)| format!("{d}/{}", k.workload_name()))
            .collect();
        assert!(keys.contains(&"CFDS/adversarial-drain".to_owned()));
        assert!(keys.contains(&"RADS/bursty-idle".to_owned()));
        // No duplicate keys.
        let mut sorted = keys.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len());
    }

    #[test]
    fn rss_probe_does_not_panic() {
        // On Linux this returns a positive number; elsewhere it degrades to 0.
        let _ = peak_rss_bytes();
    }
}
