//! The hot-path benchmark suite behind `pktbuf-lab bench`.
//!
//! Runs a fixed paper-scale workload matrix (every design × every workload)
//! through the public [`Scenario`] API, measures wall-clock slots/sec and the
//! process peak RSS, and writes a `BENCH_hotpath.json` artifact so that every
//! future change has a recorded performance trajectory to compare against.
//!
//! Two auxiliary modes close the loop:
//!
//! * `--before FILE` embeds a previously recorded run as the `"before"`
//!   section and computes per-entry speedups (used once per optimisation PR
//!   to pin the before/after pair into the committed artifact);
//! * `--compare FILE` checks the fresh run against a committed artifact and
//!   fails when any entry regressed by more than `--max-regression` percent
//!   (used by CI with `--smoke`).

use serde_json::{Map, Number, Value};
use sim::scenario::{DesignKind, Scenario, Workload};
use std::time::Instant;

/// Version tag of the JSON artifact layout.
pub const BENCH_SCHEMA: u64 = 1;

/// Default artifact path, relative to the invocation directory.
pub const BENCH_DEFAULT_OUT: &str = "BENCH_hotpath.json";

/// The headline entry the acceptance criteria gate on.
pub const BENCH_HEADLINE: &str = "CFDS/adversarial-round-robin";

/// Options of one `pktbuf-lab bench` invocation.
#[derive(Debug, Clone, Default)]
pub struct BenchOptions {
    /// Short runs (CI): fewer slots per run, same matrix.
    pub smoke: bool,
    /// Where to write the JSON artifact (`None` = don't write).
    pub out: Option<String>,
    /// Previously recorded artifact to embed as the `"before"` section.
    pub before: Option<String>,
    /// Committed artifact to regression-check the fresh run against.
    pub compare: Option<String>,
    /// Maximum tolerated slots/sec regression, in percent (default 15).
    pub max_regression_pct: Option<f64>,
    /// Repeat the whole matrix this many times and keep each entry's best
    /// (minimum-time) measurement — the standard throughput estimator under
    /// scheduler noise. Defaults to 1; the committed artifact uses 3.
    pub repeat: Option<usize>,
}

/// One measured run of the suite.
#[derive(Debug, Clone)]
struct BenchEntry {
    design: DesignKind,
    workload: Workload,
    slots: u64,
    seconds: f64,
    grants: u64,
}

impl BenchEntry {
    fn key(&self) -> String {
        format!("{}/{}", self.design, self.workload)
    }

    fn slots_per_sec(&self) -> f64 {
        if self.seconds <= 0.0 {
            0.0
        } else {
            self.slots as f64 / self.seconds
        }
    }
}

/// The fixed suite configuration: the §7 validation design point, scaled to
/// 64 queues so a full run finishes in minutes while still exercising the
/// renaming and scheduling layers at depth.
fn suite_scenario(design: DesignKind, workload: Workload, slots: u64) -> Scenario {
    Scenario {
        design,
        workload,
        num_queues: 64,
        granularity: 4,
        rads_granularity: 16,
        num_banks: 64,
        preload_cells_per_queue: 0,
        arrival_slots: slots,
        seed: 1,
        ..Scenario::small_cfds()
    }
}

/// Active slots per run: ≥ 1M at full scale, a fast smoke subset for CI.
/// Smoke runs still need tens of milliseconds per entry — much shorter and
/// fixed setup cost plus scheduler jitter dominate the measurement.
fn slots_for(smoke: bool) -> u64 {
    if smoke {
        250_000
    } else {
        1_000_000
    }
}

/// Peak resident set size of this process in bytes (Linux `VmHWM`), or 0 when
/// the information is unavailable.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn run_suite(smoke: bool, repeat: usize) -> Vec<BenchEntry> {
    let slots = slots_for(smoke);
    let mut entries: Vec<BenchEntry> = Vec::new();
    for round in 0..repeat.max(1) {
        for (i, (design, workload)) in DesignKind::all()
            .into_iter()
            .flat_map(|d| Workload::all().into_iter().map(move |w| (d, w)))
            .enumerate()
        {
            let scenario = suite_scenario(design, workload, slots);
            let start = Instant::now();
            let report = scenario.run();
            let seconds = start.elapsed().as_secs_f64();
            let entry = BenchEntry {
                design,
                workload,
                slots: report.slots,
                seconds,
                grants: report.stats.grants,
            };
            if round == 0 {
                entries.push(entry);
            } else {
                // Simulation is deterministic: repeats must reproduce the
                // run exactly, only the wall time may differ. Keep the best.
                let best = &mut entries[i];
                assert_eq!((best.slots, best.grants), (entry.slots, entry.grants));
                if entry.seconds < best.seconds {
                    best.seconds = entry.seconds;
                }
            }
        }
    }
    for entry in &entries {
        eprintln!(
            "bench: {:<30} {:>9} slots in {:>7.3} s = {:>12.0} slots/s",
            entry.key(),
            entry.slots,
            entry.seconds,
            entry.slots_per_sec()
        );
    }
    entries
}

fn number(v: f64) -> Value {
    Value::Number(Number::from_f64(v).expect("bench numbers are finite"))
}

fn results_json(entries: &[BenchEntry]) -> Value {
    let mut rows = Vec::new();
    for e in entries {
        let mut row = Map::new();
        row.insert("design", Value::String(e.design.to_string()));
        row.insert("workload", Value::String(e.workload.to_string()));
        row.insert("slots", Value::Number(Number::from_u64(e.slots)));
        row.insert("grants", Value::Number(Number::from_u64(e.grants)));
        row.insert("seconds", number(e.seconds));
        row.insert("slots_per_sec", number(e.slots_per_sec()));
        rows.push(Value::Object(row));
    }
    Value::Array(rows)
}

/// Reads `<section>[*].slots_per_sec` keyed by `design/workload` from a bench
/// artifact value (either the top level or its `"before"` section).
fn slots_per_sec_section(value: &Value, section: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let Some(results) = value.as_object().and_then(|o| o.get(section)) else {
        return out;
    };
    let Some(rows) = results.as_array() else {
        return out;
    };
    for row in rows {
        let Some(obj) = row.as_object() else { continue };
        let (Some(design), Some(workload)) = (
            obj.get("design").and_then(Value::as_str),
            obj.get("workload").and_then(Value::as_str),
        ) else {
            continue;
        };
        let Some(sps) = obj.get("slots_per_sec").and_then(Value::as_f64) else {
            continue;
        };
        out.push((format!("{design}/{workload}"), sps));
    }
    out
}

fn load_artifact(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path:?}: {e}"))
}

/// Runs the suite and handles artifacts/comparisons per `options`.
///
/// Returns `Ok(true)` on success, `Ok(false)` when a `--compare` regression
/// check failed, and `Err` for operational problems (unreadable files, …).
///
/// # Errors
///
/// Returns a message when the baseline files cannot be read or parsed, or the
/// output artifact cannot be written.
pub fn run_bench(options: &BenchOptions) -> Result<bool, String> {
    let entries = run_suite(options.smoke, options.repeat.unwrap_or(1));
    // A recorded full artifact also carries a smoke-mode section: the short
    // CI runs amortise fixed per-run setup far less than the 1M-slot runs,
    // so `--smoke --compare` must check against smoke-mode numbers.
    let smoke_entries = if !options.smoke && options.out.is_some() {
        eprintln!("bench: recording the smoke-mode baseline section");
        Some(run_suite(true, options.repeat.unwrap_or(1)))
    } else {
        None
    };
    let rss = peak_rss_bytes();
    eprintln!("bench: peak RSS {:.1} MiB", rss as f64 / (1024.0 * 1024.0));

    let mut root = Map::new();
    root.insert("schema", Value::Number(Number::from_u64(BENCH_SCHEMA)));
    root.insert(
        "mode",
        Value::String(if options.smoke { "smoke" } else { "full" }.to_owned()),
    );
    let mut config = Map::new();
    config.insert("num_queues", Value::Number(Number::from_u64(64)));
    config.insert("granularity", Value::Number(Number::from_u64(4)));
    config.insert("rads_granularity", Value::Number(Number::from_u64(16)));
    config.insert("num_banks", Value::Number(Number::from_u64(64)));
    config.insert(
        "arrival_slots",
        Value::Number(Number::from_u64(slots_for(options.smoke))),
    );
    root.insert("config", Value::Object(config));
    root.insert("peak_rss_bytes", Value::Number(Number::from_u64(rss)));
    root.insert(
        "repeat",
        Value::Number(Number::from_u64(options.repeat.unwrap_or(1) as u64)),
    );
    root.insert("results", results_json(&entries));
    if let Some(smoke_entries) = &smoke_entries {
        root.insert("smoke_results", results_json(smoke_entries));
    }

    if let Some(before_path) = &options.before {
        let before = load_artifact(before_path)?;
        let before_map = slots_per_sec_section(&before, "results");
        let mut speedups = Map::new();
        for entry in &entries {
            let key = entry.key();
            if let Some((_, before_sps)) = before_map.iter().find(|(k, _)| *k == key) {
                if *before_sps > 0.0 {
                    speedups.insert(key.clone(), number(entry.slots_per_sec() / before_sps));
                }
            }
        }
        if let Some(headline) = speedups.get(BENCH_HEADLINE).and_then(Value::as_f64) {
            eprintln!("bench: headline speedup ({BENCH_HEADLINE}): {headline:.2}x");
        }
        root.insert("speedup_vs_before", Value::Object(speedups));
        root.insert("before", before);
    }

    let mut ok = true;
    if let Some(compare_path) = &options.compare {
        let tolerance = options.max_regression_pct.unwrap_or(15.0);
        let baseline = load_artifact(compare_path)?;
        // Match measurement modes: a smoke run checks against the baseline's
        // smoke section when one was recorded.
        let mut baseline_map = if options.smoke {
            slots_per_sec_section(&baseline, "smoke_results")
        } else {
            Vec::new()
        };
        if baseline_map.is_empty() {
            baseline_map = slots_per_sec_section(&baseline, "results");
        }
        if baseline_map.is_empty() {
            return Err(format!("{compare_path:?} contains no bench results"));
        }
        // Absolute slots/sec depend on the machine (and its frequency
        // scaling), so the per-entry gate is *relative*: normalise each
        // fresh/baseline ratio by the median ratio across the suite — a
        // uniform machine-speed difference cancels out, while a real code
        // regression shows up as one or more entries falling more than
        // `tolerance` percent below the rest. A separate coarse floor on the
        // median itself still catches a uniform pessimisation.
        let mut ratios: Vec<(String, f64)> = Vec::new();
        for entry in &entries {
            let key = entry.key();
            let Some((_, base_sps)) = baseline_map.iter().find(|(k, _)| *k == key) else {
                continue;
            };
            if *base_sps > 0.0 {
                ratios.push((key, entry.slots_per_sec() / base_sps));
            }
        }
        if ratios.is_empty() {
            return Err(format!(
                "{compare_path:?} shares no entries with this suite"
            ));
        }
        let mut sorted: Vec<f64> = ratios.iter().map(|(_, r)| *r).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
        let median = sorted[sorted.len() / 2];
        const GLOBAL_FLOOR: f64 = 0.5;
        if median < GLOBAL_FLOOR {
            eprintln!(
                "bench: REGRESSION: median throughput ratio {median:.2} vs {compare_path} \
                 is below the global floor {GLOBAL_FLOOR} — uniform slowdown"
            );
            ok = false;
        }
        for (key, ratio) in &ratios {
            let floor = median * (1.0 - tolerance / 100.0);
            if *ratio < floor {
                eprintln!(
                    "bench: REGRESSION {key}: ratio {ratio:.3} vs baseline is more than \
                     {tolerance}% below the suite median {median:.3}"
                );
                ok = false;
            }
        }
        if ok {
            eprintln!(
                "bench: no entry regressed more than {tolerance}% vs {compare_path} \
                 (median ratio {median:.2})"
            );
        }
    }

    if let Some(out) = &options.out {
        let text = Value::Object(root).to_json_string_pretty();
        std::fs::write(out, text + "\n")
            .map_err(|e| format!("cannot write bench artifact to {out:?}: {e}"))?;
        eprintln!("wrote bench artifact to {out}");
    }
    Ok(ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_maps_round_trip() {
        let entries = vec![BenchEntry {
            design: DesignKind::Cfds,
            workload: Workload::AdversarialRoundRobin,
            slots: 1000,
            seconds: 0.5,
            grants: 900,
        }];
        assert_eq!(entries[0].key(), BENCH_HEADLINE);
        assert_eq!(entries[0].slots_per_sec(), 2000.0);
        let mut root = Map::new();
        root.insert("results", results_json(&entries));
        let value = Value::Object(root);
        let text = value.to_json_string_pretty();
        let parsed: Value = serde_json::from_str(&text).unwrap();
        let map = slots_per_sec_section(&parsed, "results");
        assert_eq!(map.len(), 1);
        assert_eq!(map[0].0, BENCH_HEADLINE);
        assert!((map[0].1 - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn rss_probe_does_not_panic() {
        // On Linux this returns a positive number; elsewhere it degrades to 0.
        let _ = peak_rss_bytes();
    }
}
