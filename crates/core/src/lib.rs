//! `pktbuf`: hybrid SRAM/DRAM packet buffers with worst-case bandwidth
//! guarantees.
//!
//! This is the core library of the reproduction of *"Design and Implementation
//! of High-Performance Memory Systems for Future Packet Buffers"* (García,
//! Corbal, Cerdà, Valero — MICRO 2003). It assembles the substrate crates into
//! three complete, slot-synchronous packet-buffer designs behind one trait:
//!
//! * [`DramOnlyBuffer`] — the introduction's baseline; shows why DRAM alone
//!   cannot give worst-case guarantees at high line rates.
//! * [`RadsBuffer`] — the Random Access DRAM System of §3 (the hybrid
//!   SRAM/DRAM baseline of Iyer, Kompella, McKeown): ECQF-managed head and
//!   tail SRAMs around a DRAM accessed with granularity `B`.
//! * [`CfdsBuffer`] — the paper's Conflict-Free DRAM System: the same MMA
//!   structure at granularity `b < B`, a banked DRAM with block-cyclic
//!   interleaving, an issue-queue-like DRAM scheduler that guarantees no bank
//!   conflicts, a latency register that restores in-order delivery, and queue
//!   renaming that defeats DRAM fragmentation.
//!
//! Every buffer continuously checks its own worst-case guarantees (zero miss,
//! zero drop, FIFO order, zero bank conflicts) through [`BufferStats`] and the
//! built-in [`DeliveryVerifier`].
//!
//! The slot loop of every buffer is allocation-free in steady state: the tail
//! SRAM is an intrusive fixed-slab cell arena, in-flight DRAM requests live in
//! dense index-addressed tables, and block buffers are recycled through a
//! pool — see the [`hotpath`] module for the building blocks and the layout
//! rationale.
//!
//! # Quickstart
//!
//! ```
//! use pktbuf::{CfdsBuffer, PacketBuffer};
//! use pktbuf_model::{Cell, CfdsConfig, LineRate, LogicalQueueId};
//!
//! // A small CFDS instance: 8 queues, b = 2, B = 8, 16 banks.
//! let cfg = CfdsConfig::builder()
//!     .line_rate(LineRate::Oc3072)
//!     .num_queues(8)
//!     .granularity(2)
//!     .rads_granularity(8)
//!     .num_banks(16)
//!     .build()?;
//! let mut buf = CfdsBuffer::new(cfg);
//!
//! // Preload a backlog and drain it round-robin, checking worst-case
//! // behaviour as we go.
//! for q in 0..8u32 {
//!     let queue = LogicalQueueId::new(q);
//!     let cells = (0..16).map(|s| Cell::new(queue, s, 0)).collect();
//!     buf.preload_dram(queue, cells);
//! }
//! let mut granted = 0;
//! for t in 0..(8 * 16 + buf.pipeline_delay_slots() as u64 + 64) {
//!     let queue = LogicalQueueId::new((t % 8) as u32);
//!     let request = (buf.requestable_cells(queue) > 0).then_some(queue);
//!     let outcome = buf.step(None, request);
//!     assert!(outcome.miss.is_none());
//!     if outcome.granted.is_some() {
//!         granted += 1;
//!     }
//! }
//! assert_eq!(granted, 8 * 16);
//! assert!(buf.stats().is_loss_free());
//! # Ok::<(), pktbuf_model::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cfds_buffer;
mod dram_only;
pub mod hotpath;
mod hsram;
mod rads;
mod stats;
mod traits;
mod verify;

pub use cfds_buffer::{CfdsBuffer, CfdsBufferOptions};
pub use dram_only::DramOnlyBuffer;
pub use hsram::HeadSramKind;
pub use rads::RadsBuffer;
pub use stats::BufferStats;
pub use traits::{BatchReport, GrantSink, PacketBuffer, RequestSource, SlotOutcome};
pub use verify::DeliveryVerifier;
