//! Aggregate statistics of a packet-buffer run.

use serde::{Deserialize, Serialize, Serializer};

/// Counters accumulated by a packet buffer over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Deserialize)]
pub struct BufferStats {
    /// Slots simulated.
    pub slots: u64,
    /// Cells accepted from the transmission line.
    pub arrivals: u64,
    /// Cells dropped at the tail SRAM.
    pub drops: u64,
    /// Requests accepted from the arbiter.
    pub requests: u64,
    /// Cells granted to the arbiter.
    pub grants: u64,
    /// Requests that became due with no cell in the head SRAM.
    pub misses: u64,
    /// Grants whose cell violated per-queue FIFO order.
    pub order_violations: u64,
    /// DRAM read accesses performed.
    pub dram_reads: u64,
    /// DRAM write accesses performed.
    pub dram_writes: u64,
    /// Bank conflicts detected (must stay zero for CFDS).
    pub bank_conflicts: u64,
    /// DSS issue opportunities wasted with a non-empty requests register.
    pub dss_stalls: u64,
    /// Replenishments selected by the MMA that found no block in DRAM.
    pub unfulfilled_replenishments: u64,
    /// Writebacks blocked because the DRAM group (and renaming) had no room.
    pub blocked_writebacks: u64,
    /// Highest head-SRAM occupancy observed (cells).
    pub peak_head_sram_cells: u64,
    /// Highest tail-SRAM occupancy observed (cells).
    pub peak_tail_sram_cells: u64,
    /// Highest requests-register occupancy observed (entries).
    pub peak_rr_entries: u64,
    /// Largest DSS queueing delay observed (slots).
    pub max_dss_delay_slots: u64,
}

// Hand-written so that reports really encode (the vendored serde derive only
// type-checks). Field order matches the declaration; keep the two in sync.
impl Serialize for BufferStats {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct as _;
        let mut st = serializer.serialize_struct("BufferStats", 18)?;
        st.serialize_field("slots", &self.slots)?;
        st.serialize_field("arrivals", &self.arrivals)?;
        st.serialize_field("drops", &self.drops)?;
        st.serialize_field("requests", &self.requests)?;
        st.serialize_field("grants", &self.grants)?;
        st.serialize_field("misses", &self.misses)?;
        st.serialize_field("order_violations", &self.order_violations)?;
        st.serialize_field("dram_reads", &self.dram_reads)?;
        st.serialize_field("dram_writes", &self.dram_writes)?;
        st.serialize_field("bank_conflicts", &self.bank_conflicts)?;
        st.serialize_field("dss_stalls", &self.dss_stalls)?;
        st.serialize_field(
            "unfulfilled_replenishments",
            &self.unfulfilled_replenishments,
        )?;
        st.serialize_field("blocked_writebacks", &self.blocked_writebacks)?;
        st.serialize_field("peak_head_sram_cells", &self.peak_head_sram_cells)?;
        st.serialize_field("peak_tail_sram_cells", &self.peak_tail_sram_cells)?;
        st.serialize_field("peak_rr_entries", &self.peak_rr_entries)?;
        st.serialize_field("max_dss_delay_slots", &self.max_dss_delay_slots)?;
        st.serialize_field("loss_free", &self.is_loss_free())?;
        st.end()
    }
}

impl BufferStats {
    /// Fraction of accepted requests that missed.
    pub fn miss_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.misses as f64 / self.requests as f64
        }
    }

    /// Fraction of offered cells that were dropped at the tail.
    pub fn drop_rate(&self) -> f64 {
        let offered = self.arrivals + self.drops;
        if offered == 0 {
            0.0
        } else {
            self.drops as f64 / offered as f64
        }
    }

    /// Whether the run upheld the worst-case guarantees the paper requires:
    /// no miss, no drop, no FIFO violation and no bank conflict.
    pub fn is_loss_free(&self) -> bool {
        self.misses == 0
            && self.drops == 0
            && self.order_violations == 0
            && self.bank_conflicts == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let s = BufferStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.drop_rate(), 0.0);
        assert!(s.is_loss_free());
    }

    #[test]
    fn rates_compute_fractions() {
        let s = BufferStats {
            requests: 100,
            misses: 5,
            arrivals: 90,
            drops: 10,
            ..BufferStats::default()
        };
        assert!((s.miss_rate() - 0.05).abs() < 1e-12);
        assert!((s.drop_rate() - 0.1).abs() < 1e-12);
        assert!(!s.is_loss_free());
    }

    #[test]
    fn loss_free_requires_all_four_conditions() {
        for field in 0..4 {
            let mut s = BufferStats::default();
            match field {
                0 => s.misses = 1,
                1 => s.drops = 1,
                2 => s.order_violations = 1,
                _ => s.bank_conflicts = 1,
            }
            assert!(!s.is_loss_free());
        }
    }
}
