//! Preallocated, index-addressed building blocks of the allocation-free slot
//! loop.
//!
//! Every structure here replaces a heap-churning collection that previously
//! sat on the per-slot (or per-granularity-period) path of the buffer front
//! ends:
//!
//! * [`TailCellArena`] — the tail SRAM as a fixed slab of cell records with
//!   intrusive per-queue FIFO chains and an incrementally maintained
//!   occupancy array, replacing `Vec<VecDeque<Cell>>` plus the per-period
//!   occupancy `collect()`. Slots are stored record-contiguous: every access
//!   is full-record, so one cache line per cell beats the
//!   one-line-per-column cost of a columnar split.
//! * [`BlockPool`] — a free list of `b`-cell block buffers so the
//!   tail → DRAM → head-SRAM block cycle recycles the same allocations
//!   forever instead of allocating and dropping a `Vec<Cell>` per transfer.
//! * [`PendingTable`] — a dense `(queue, ordinal)`-indexed table for
//!   in-flight DRAM requests, replacing `HashMap<(u32, u64), _>`. In-flight
//!   ordinals per queue form a narrow moving window, so `ordinal mod ways`
//!   with a stored tag resolves the entry in O(1) without hashing; the table
//!   rehashes (a warm-up cost) in the rare case two live ordinals collide.
//!
//! All three are sized (or grow to a high-water mark) during warm-up; in
//! steady state none of their operations touches the heap, which the
//! `alloc_free_steady_state` integration test pins down with a counting
//! allocator.

use pktbuf_model::{Cell, CellPayload, LogicalQueueId};

const NIL: u32 = u32::MAX;

/// Fast-forwards a period countdown by `slots` steps. The per-slot update is
/// `if u == 0 { u = period; /* period ops */ } u -= 1`, i.e. a cyclic
/// decrement over `[0, period)`; `slots` such steps land on
/// `(u - slots) mod period`.
pub(crate) fn countdown_after(until_period: u64, slots: u64, period: u64) -> u64 {
    debug_assert!(until_period < period);
    (until_period + period - (slots % period)) % period
}

/// How many of the next `slots` steps of the countdown above start with
/// `u == 0` — i.e. how many granularity-period boundaries the fast-forward
/// crosses. The first boundary is `until_period` steps away, then one every
/// `period`.
pub(crate) fn periods_crossed(until_period: u64, slots: u64, period: u64) -> u64 {
    debug_assert!(until_period < period);
    if slots > until_period {
        (slots - until_period - 1) / period + 1
    } else {
        0
    }
}

/// One arena slot: a cell's fields plus its intrusive chain link, stored
/// contiguously so a push or pop touches one cache line of cell state
/// instead of one line per column. (The arena is accessed exclusively
/// full-record — there is no columnar scan that would favour a
/// structure-of-arrays split.)
#[derive(Debug)]
struct ArenaSlot {
    /// Next slot in the same queue's FIFO chain (or the free list).
    next: u32,
    queue: u32,
    seq: u64,
    arrival: u64,
    payload: CellPayload,
}

/// The tail SRAM as a fixed-capacity slab of cell records.
///
/// Cells are chained into per-queue FIFOs through the intrusive `next` link;
/// free slots form an intrusive free list. Capacity equals the tail-SRAM
/// capacity in cells, so the arena never grows after construction.
#[derive(Debug)]
pub struct TailCellArena {
    slots: Vec<ArenaSlot>,
    /// Per-queue FIFO head slot.
    head: Vec<u32>,
    /// Per-queue FIFO tail slot.
    tail: Vec<u32>,
    /// Per-queue occupancy in cells, maintained on push/pop — the tail MMA
    /// reads this directly instead of collecting queue lengths every period.
    occupancy: Vec<usize>,
    /// Writeback batch size: a queue is *eligible* once it holds a full
    /// batch.
    threshold: usize,
    /// Number of queues whose occupancy is at or above the threshold,
    /// maintained on threshold crossings so the per-period MMA scan can be
    /// skipped entirely when no queue has a full batch.
    eligible: usize,
    /// Bitmask of eligible queues (bit `q % 64` of word `q / 64`), kept in
    /// lockstep with `eligible`. The tail MMA visits only set bits instead
    /// of scanning every queue's occupancy.
    eligible_mask: Vec<u64>,
    free_head: u32,
    len: usize,
}

impl TailCellArena {
    /// Creates an arena of `capacity` cell slots shared by `num_queues`
    /// queues; `threshold` is the writeback batch size used for the eligible
    /// count.
    pub fn new(num_queues: usize, capacity: usize, threshold: usize) -> Self {
        let capacity = capacity.min(NIL as usize - 1);
        let slots = (0..capacity)
            .map(|i| ArenaSlot {
                next: if i + 1 < capacity { i as u32 + 1 } else { NIL },
                queue: 0,
                seq: 0,
                arrival: 0,
                payload: CellPayload::empty(),
            })
            .collect();
        TailCellArena {
            slots,
            head: vec![NIL; num_queues],
            tail: vec![NIL; num_queues],
            occupancy: vec![0; num_queues],
            threshold: threshold.max(1),
            eligible: 0,
            eligible_mask: vec![0; num_queues.div_ceil(64)],
            free_head: if capacity == 0 { NIL } else { 0 },
            len: 0,
        }
    }

    /// Total cells currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the arena holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether every slot is occupied.
    pub fn is_full(&self) -> bool {
        self.free_head == NIL
    }

    /// Per-queue occupancy in cells (index = queue index).
    pub fn occupancies(&self) -> &[usize] {
        &self.occupancy
    }

    /// Whether any queue currently holds at least one full writeback batch.
    /// O(1) — maintained on threshold crossings.
    pub fn any_eligible(&self) -> bool {
        self.eligible > 0
    }

    /// Bitmask of queues holding at least one full batch (bit `q % 64` of
    /// word `q / 64`). Feed to
    /// [`mma::ThresholdTailMma::select_masked`] so selection touches only
    /// eligible queues.
    pub fn eligible_words(&self) -> &[u64] {
        &self.eligible_mask
    }

    /// Appends `cell` to its queue's FIFO.
    ///
    /// # Panics
    ///
    /// Panics if the arena is full or the cell's queue is out of range — the
    /// owning buffer checks capacity before pushing.
    pub fn push(&mut self, cell: Cell) {
        let slot = self.free_head;
        assert!(slot != NIL, "tail arena overflow");
        let (queue, seq, arrival, payload) = cell.into_parts();
        let qi = queue.as_usize();
        let entry = &mut self.slots[slot as usize];
        self.free_head = entry.next;
        entry.queue = queue.index();
        entry.seq = seq;
        entry.arrival = arrival;
        entry.payload = payload;
        entry.next = NIL;
        if self.tail[qi] == NIL {
            self.head[qi] = slot;
        } else {
            self.slots[self.tail[qi] as usize].next = slot;
        }
        self.tail[qi] = slot;
        self.occupancy[qi] += 1;
        if self.occupancy[qi] == self.threshold {
            self.eligible += 1;
            self.eligible_mask[qi / 64] |= 1 << (qi % 64);
        }
        self.len += 1;
    }

    /// Removes and returns the oldest cell of `queue`.
    pub fn pop_front(&mut self, queue: LogicalQueueId) -> Option<Cell> {
        let qi = queue.as_usize();
        let slot = self.head[qi];
        if slot == NIL {
            return None;
        }
        let entry = &mut self.slots[slot as usize];
        self.head[qi] = entry.next;
        if self.head[qi] == NIL {
            self.tail[qi] = NIL;
        }
        let payload = std::mem::take(&mut entry.payload);
        let cell = Cell::with_payload(
            LogicalQueueId::new(entry.queue),
            entry.seq,
            entry.arrival,
            payload,
        );
        entry.next = self.free_head;
        self.free_head = slot;
        if self.occupancy[qi] == self.threshold {
            self.eligible -= 1;
            self.eligible_mask[qi / 64] &= !(1 << (qi % 64));
        }
        self.occupancy[qi] -= 1;
        self.len -= 1;
        Some(cell)
    }

    /// Moves the `count` oldest cells of `queue` into `out` (appended in FIFO
    /// order). `out` is a reusable scratch/pooled buffer; nothing is
    /// allocated when its capacity suffices.
    ///
    /// # Panics
    ///
    /// Panics if the queue holds fewer than `count` cells — the tail MMA only
    /// selects queues with a full batch.
    pub fn pop_block_into(&mut self, queue: LogicalQueueId, count: usize, out: &mut Vec<Cell>) {
        for _ in 0..count {
            let cell = self
                .pop_front(queue)
                .expect("tail MMA selected a queue with a full batch"); // analyze: allow(panic-freedom) — documented # Panics contract: the tail MMA selects only queues holding a full batch
            out.push(cell);
        }
    }
}

/// A free list of recycled block buffers (`Vec<Cell>`).
///
/// Blocks travel tail SRAM → pending write → DRAM → pending delivery → head
/// SRAM; the pool closes that cycle so the same handful of `Vec`s circulate
/// for the whole run.
#[derive(Debug, Default)]
pub struct BlockPool {
    free: Vec<Vec<Cell>>,
}

impl BlockPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        BlockPool::default()
    }

    /// Takes a cleared buffer with room for at least `cells` cells.
    pub fn take(&mut self, cells: usize) -> Vec<Cell> {
        match self.free.pop() {
            Some(mut buf) => {
                buf.reserve(cells);
                buf
            }
            None => Vec::with_capacity(cells), // analyze: allow(hotpath-alloc) — pool-miss path: allocates only until the circulating block set is built during warmup
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub fn put(&mut self, mut buf: Vec<Cell>) {
        buf.clear();
        self.free.push(buf);
    }

    /// Buffers currently parked in the pool.
    pub fn parked(&self) -> usize {
        self.free.len()
    }
}

/// One slot of a [`PendingTable`] way set.
type PendingSlot<T> = Option<(u64, T)>;

/// A dense map from `(queue, block ordinal)` to an in-flight payload.
///
/// Layout: `ways` slots per queue, entry for ordinal `o` lives at
/// `queue * ways + (o % ways)` tagged with the full ordinal. Because a
/// queue's in-flight ordinals form a contiguous moving window bounded by the
/// Requests-Register residency, a small power-of-two `ways` almost never
/// collides; when two live ordinals do map to the same slot the table doubles
/// `ways` and reinserts (amortised warm-up, after which lookups are
/// allocation- and hash-free).
#[derive(Debug)]
pub struct PendingTable<T> {
    slots: Vec<PendingSlot<T>>,
    num_queues: usize,
    ways: usize,
    len: usize,
}

impl<T> PendingTable<T> {
    /// Creates a table for `num_queues` queues with a small initial way count.
    pub fn new(num_queues: usize) -> Self {
        let ways = 4;
        PendingTable {
            slots: std::iter::repeat_with(|| None)
                .take(num_queues * ways)
                .collect(),
            num_queues,
            ways,
            len: 0,
        }
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current way count (for diagnostics/tests).
    pub fn ways(&self) -> usize {
        self.ways
    }

    fn index(&self, queue: u32, ordinal: u64) -> usize {
        queue as usize * self.ways + (ordinal & (self.ways as u64 - 1)) as usize
    }

    /// Inserts the payload for `(queue, ordinal)`.
    ///
    /// # Panics
    ///
    /// Panics if an entry for the same `(queue, ordinal)` is already present
    /// (in-flight ordinals are unique by construction).
    pub fn insert(&mut self, queue: u32, ordinal: u64, value: T) {
        debug_assert!((queue as usize) < self.num_queues, "queue out of range");
        loop {
            let idx = self.index(queue, ordinal);
            match &self.slots[idx] {
                None => {
                    self.slots[idx] = Some((ordinal, value));
                    self.len += 1;
                    return;
                }
                Some((tag, _)) if *tag == ordinal => {
                    // analyze: allow(panic-freedom) — corruption guard: a duplicate in-flight ordinal breaks the one-outstanding-access contract
                    panic!("duplicate in-flight entry for queue {queue}, ordinal {ordinal}")
                }
                // Two live ordinals of this queue collide: widen the window.
                Some(_) => self.grow(),
            }
        }
    }

    /// Removes and returns the payload for `(queue, ordinal)`, if present.
    pub fn remove(&mut self, queue: u32, ordinal: u64) -> Option<T> {
        let idx = self.index(queue, ordinal);
        if self.slots[idx]
            .as_ref()
            .is_some_and(|(tag, _)| *tag == ordinal)
        {
            let (_, value) = self.slots[idx].take()?;
            self.len -= 1;
            return Some(value);
        }
        None
    }

    fn grow(&mut self) {
        let old_ways = self.ways;
        // Find the smallest doubled way count whose rehash is collision-free
        // (doubling once is not always enough: ordinals that differ by a
        // multiple of the new way count still collide).
        let mut new_ways = old_ways * 2;
        loop {
            let mut used = vec![false; self.num_queues * new_ways]; // analyze: allow(hotpath-alloc) — rare rehash when two live ordinals collide; the window settles during warmup
            let collision = self.slots.iter().enumerate().any(|(old_idx, slot)| {
                let Some((ordinal, _)) = slot else {
                    return false;
                };
                let queue = old_idx / old_ways;
                let idx = queue * new_ways + (*ordinal & (new_ways as u64 - 1)) as usize;
                std::mem::replace(&mut used[idx], true)
            });
            if !collision {
                break;
            }
            new_ways *= 2;
        }
        self.ways = new_ways;
        let mut slots: Vec<PendingSlot<T>> = std::iter::repeat_with(|| None)
            .take(self.num_queues * new_ways)
            .collect(); // analyze: allow(hotpath-alloc) — rare rehash when two live ordinals collide; the window settles during warmup
        for (old_idx, slot) in self.slots.drain(..).enumerate() {
            let Some((ordinal, value)) = slot else {
                continue;
            };
            let queue = old_idx / old_ways;
            let new_idx = queue * new_ways + (ordinal & (new_ways as u64 - 1)) as usize;
            slots[new_idx] = Some((ordinal, value));
        }
        self.slots = slots;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lq(i: u32) -> LogicalQueueId {
        LogicalQueueId::new(i)
    }

    #[test]
    fn countdown_helpers_match_the_stepped_loop() {
        for period in [1u64, 2, 4, 7] {
            for start in 0..period {
                let mut u = start;
                let mut crossings = 0;
                for n in 0..=3 * period + 2 {
                    assert_eq!(
                        countdown_after(start, n, period),
                        u,
                        "countdown start={start} n={n} period={period}"
                    );
                    assert_eq!(
                        periods_crossed(start, n, period),
                        crossings,
                        "crossings start={start} n={n} period={period}"
                    );
                    if u == 0 {
                        u = period;
                        crossings += 1;
                    }
                    u -= 1;
                }
            }
        }
    }

    #[test]
    fn arena_is_fifo_per_queue() {
        let mut arena = TailCellArena::new(2, 8, 2);
        for i in 0..3u64 {
            arena.push(Cell::new(lq(0), i, i));
            arena.push(Cell::new(lq(1), i, i + 10));
        }
        assert_eq!(arena.len(), 6);
        assert_eq!(arena.occupancies(), &[3, 3]);
        for i in 0..3u64 {
            let c = arena.pop_front(lq(0)).unwrap();
            assert_eq!((c.queue(), c.seq()), (lq(0), i));
        }
        assert_eq!(arena.pop_front(lq(0)), None);
        assert_eq!(arena.occupancies(), &[0, 3]);
        assert!(!arena.is_empty());
    }

    #[test]
    fn arena_recycles_slots_at_capacity() {
        let mut arena = TailCellArena::new(1, 4, 4);
        for round in 0..10u64 {
            for i in 0..4u64 {
                arena.push(Cell::new(lq(0), round * 4 + i, 0));
            }
            assert!(arena.is_full());
            let mut out = Vec::new();
            arena.pop_block_into(lq(0), 4, &mut out);
            assert_eq!(out.len(), 4);
            assert_eq!(out[0].seq(), round * 4);
            assert!(arena.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "tail arena overflow")]
    fn arena_overflow_panics() {
        let mut arena = TailCellArena::new(1, 2, 2);
        for i in 0..3 {
            arena.push(Cell::new(lq(0), i, 0));
        }
    }

    #[test]
    fn arena_preserves_payloads() {
        let mut arena = TailCellArena::new(1, 2, 2);
        let payload = pktbuf_model::CellPayload::from_slice(b"data");
        arena.push(Cell::with_payload(lq(0), 0, 7, payload.clone()));
        let cell = arena.pop_front(lq(0)).unwrap();
        assert_eq!(cell.payload(), &payload);
        assert_eq!(cell.arrival_slot(), 7);
    }

    #[test]
    fn pool_recycles_buffers() {
        let mut pool = BlockPool::new();
        let mut a = pool.take(4);
        a.push(Cell::new(lq(0), 0, 0));
        pool.put(a);
        assert_eq!(pool.parked(), 1);
        let b = pool.take(4);
        assert!(b.is_empty());
        assert!(b.capacity() >= 4);
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn pending_table_round_trips() {
        let mut t: PendingTable<&'static str> = PendingTable::new(3);
        t.insert(1, 0, "a");
        t.insert(1, 1, "b");
        t.insert(2, 0, "c");
        assert_eq!(t.len(), 3);
        assert_eq!(t.remove(1, 0), Some("a"));
        assert_eq!(t.remove(1, 0), None);
        assert_eq!(t.remove(1, 1), Some("b"));
        assert_eq!(t.remove(2, 0), Some("c"));
        assert!(t.is_empty());
    }

    #[test]
    fn pending_table_grows_on_collision() {
        let mut t: PendingTable<u64> = PendingTable::new(1);
        let start_ways = t.ways();
        // Ordinals 0 and `ways` collide in the same slot → the table widens.
        t.insert(0, 0, 100);
        t.insert(0, start_ways as u64, 200);
        assert!(t.ways() > start_ways);
        assert_eq!(t.remove(0, 0), Some(100));
        assert_eq!(t.remove(0, start_ways as u64), Some(200));
    }

    #[test]
    fn pending_table_growth_handles_repeat_collisions() {
        let mut t: PendingTable<u64> = PendingTable::new(2);
        let w = t.ways() as u64;
        // 0 and 2w collide at w ways *and* at 2w ways: growth must continue
        // doubling until the rehash is collision-free.
        t.insert(1, 0, 1);
        t.insert(1, 2 * w, 2);
        t.insert(1, 1, 3);
        assert_eq!(t.remove(1, 0), Some(1));
        assert_eq!(t.remove(1, 2 * w), Some(2));
        assert_eq!(t.remove(1, 1), Some(3));
    }

    #[test]
    #[should_panic(expected = "duplicate in-flight entry")]
    fn pending_table_rejects_duplicates() {
        let mut t: PendingTable<u64> = PendingTable::new(1);
        t.insert(0, 5, 1);
        t.insert(0, 5, 2);
    }
}
