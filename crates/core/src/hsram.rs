//! Selection of the head-SRAM organisation used by a buffer front end.

use serde::{Deserialize, Serialize};
use sram_buf::{GlobalCamBuffer, SharedBuffer, UnifiedLinkedListBuffer};

/// Which functional head-SRAM organisation a buffer instantiates.
///
/// Both uphold the same [`SharedBuffer`] contract; they differ in how they
/// locate cells internally (and, physically, in area and access time — see the
/// `cacti-lite` crate and the Figure 8/10 experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum HeadSramKind {
    /// Fully associative (queue, order)-tagged store. Robust to arbitrary
    /// out-of-order block arrival, which CFDS with renaming requires.
    #[default]
    GlobalCam,
    /// Direct-mapped linked lists with one lane per bank of a group. Assumes
    /// same-lane blocks arrive in order (true for RADS and for CFDS without
    /// renaming).
    UnifiedLinkedList,
}

impl HeadSramKind {
    /// Builds the functional buffer: `lanes` is `B/b` (1 for RADS) and
    /// `cells_per_block` is the DRAM transfer granularity.
    pub fn build(
        self,
        num_queues: usize,
        capacity_cells: usize,
        lanes: usize,
        cells_per_block: usize,
    ) -> Box<dyn SharedBuffer + Send> {
        match self {
            HeadSramKind::GlobalCam => Box::new(GlobalCamBuffer::with_block_size(
                num_queues,
                capacity_cells,
                cells_per_block,
            )),
            HeadSramKind::UnifiedLinkedList => Box::new(UnifiedLinkedListBuffer::with_lanes(
                num_queues,
                // The linked list is a direct-mapped array and must be
                // allocated up front; cap the functional capacity at 2^20
                // cells (far above any analytical bound used in practice).
                capacity_cells.min(1 << 20),
                lanes,
                cells_per_block,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pktbuf_model::{Cell, LogicalQueueId};

    #[test]
    fn both_kinds_build_working_buffers() {
        for kind in [HeadSramKind::GlobalCam, HeadSramKind::UnifiedLinkedList] {
            let mut b = kind.build(2, 64, 2, 4);
            let q = LogicalQueueId::new(1);
            b.insert_block(q, 0, (0..4).map(|i| Cell::new(q, i, 0)).collect())
                .unwrap();
            assert_eq!(b.pop_front(q).unwrap().seq(), 0);
            assert_eq!(b.capacity(), 64);
        }
        assert_eq!(HeadSramKind::default(), HeadSramKind::GlobalCam);
    }
}
